//! A tour of the paper's annotation API (§5.2) on a toy licensing server.
//!
//! Shows how an operator uses `mark_accept` / `mark_reject` / `drop_path`,
//! function over-approximation (Figure 9's `function_start` /
//! `return_symbolic` pattern), and field masks to keep the analysis away
//! from cryptographic checks.
//!
//! ```text
//! cargo run --release -p achilles-examples --example annotations_tour
//! ```

use std::sync::Arc;

use achilles::{Achilles, AchillesConfig, FieldMask};
use achilles_solver::Width;
use achilles_symvm::{MessageLayout, PathResult, SymEnv, SymMessage};

fn layout() -> Arc<MessageLayout> {
    MessageLayout::builder("lic")
        .field("user", Width::W16)
        .field("tier", Width::W8)
        .field("signature", Width::W32)
        .build()
}

/// The client library: `getPeerID()` is over-approximated exactly like the
/// paper's Figure 9 — a symbolic value constrained to [0, 10] replaces the
/// function body.
fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
    // function_start(); toRet = makeSymbolic(); drop_path if out of range;
    // return_symbolic(toRet); function_end();
    let user = env.sym_in_range("getPeerID", Width::W16, 0, 10)?;

    // The user picks a tier; the client only offers 1..=3.
    let tier = env.sym("tier", Width::W8);
    let one = env.constant(1, Width::W8);
    let three = env.constant(3, Width::W8);
    if env.if_ult(tier, one)? {
        // Annotation: abandon uninteresting paths outright.
        return env.drop_path();
    }
    if env.if_ult(three, tier)? {
        return env.drop_path();
    }

    // The signature is produced by a crypto routine — masked from the
    // analysis (§5.2), so its value here is an unconstrained placeholder.
    let signature = env.sym("sign(user, tier)", Width::W32);
    env.send(SymMessage::new(layout(), vec![user, tier, signature]));
    Ok(())
}

/// The server validates the user id but trusts the tier byte blindly.
fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
    let msg = env.recv(&layout())?;
    let max_user = env.constant(10, Width::W16);
    if !env.if_ule(msg.field("user"), max_user)? {
        env.mark_reject(); // explicit marker (would also be the default)
        return Ok(());
    }
    // BUG: no tier validation — tiers 0 and 4..=255 are accepted.
    // (The signature check would live here; the operator placed the accept
    // marker before it, as §5.1 suggests for encrypted replies.)
    env.note("grant license");
    env.mark_accept();
    Ok(())
}

fn main() {
    let mut achilles = Achilles::new();
    let l = layout();
    let config = AchillesConfig {
        mask: FieldMask::by_names(&l, &["signature"]),
        ..AchillesConfig::verified()
    };
    let report = achilles.run(&client, &server, &l, &config);

    println!("client paths: {}", report.client.len());
    println!("trojans: {}", report.trojans.len());
    for t in &report.trojans {
        println!(
            "  witness: user={} tier={} — a tier no client build offers",
            t.witness_fields[0], t.witness_fields[1]
        );
        assert!(
            t.witness_fields[1] < 1 || t.witness_fields[1] > 3,
            "the Trojan tier must be outside the client's 1..=3 menu"
        );
    }
    assert_eq!(report.trojans.len(), 1);
    println!(
        "\nThe annotations kept the analysis crisp: the signature was masked, \
         getPeerID() was over-approximated, and the invalid-tier Trojan surfaced."
    );
}
