//! Session Trojans: multi-message analysis (extension beyond the paper).
//!
//! The paper analyzes one message per server activation and leaves message
//! ordering to future work (§7). This example analyzes a two-message
//! *session* — handshake, then command — where the handshake validation is
//! the weak link: the server accepts session tokens twice as large as any
//! correct client produces.
//!
//! ```text
//! cargo run --release -p achilles-examples --example session_trojans
//! ```
//!
//! This example drives `analyze_sequence` by hand to show the machinery;
//! protocols normally *declare* their sessions on the `TargetSpec`
//! (`TargetSpec::sessions`) and get discovery + fault-scheduled replay
//! through `AchillesSession::run_sessions` — see `examples/quickstart.rs`
//! ("Declaring a session") and the FSP/twopc crates.

use std::sync::Arc;

use achilles::{analyze_sequence, prepare_client, ClientPredicate, FieldMask, Optimizations};
use achilles_solver::{Solver, TermPool, Width};
use achilles_symvm::{Executor, ExploreConfig, MessageLayout, PathResult, SymEnv, SymMessage};

fn hs_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("handshake")
        .field("token", Width::W16)
        .build()
}

fn cmd_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("command")
        .field("op", Width::W8)
        .field("arg", Width::W16)
        .build()
}

/// Slot 1: the connecting client requests a session token below 100.
fn handshake_client(env: &mut SymEnv<'_>) -> PathResult<()> {
    let token = env.sym("token", Width::W16);
    let cap = env.constant(100, Width::W16);
    if !env.if_ult(token, cap)? {
        return Ok(());
    }
    env.send(SymMessage::new(hs_layout(), vec![token]));
    Ok(())
}

/// Slot 2: the established client sends op 1/2 with a validated argument.
fn command_client(env: &mut SymEnv<'_>) -> PathResult<()> {
    let which = env.sym("which", Width::BOOL);
    let arg = env.sym("arg", Width::W16);
    let cap = env.constant(50, Width::W16);
    if !env.if_ult(arg, cap)? {
        return Ok(());
    }
    let op = if env.branch(which)? {
        env.constant(1, Width::W8)
    } else {
        env.constant(2, Width::W8)
    };
    env.send(SymMessage::new(cmd_layout(), vec![op, arg]));
    Ok(())
}

/// The session server: the handshake check is too lax (tokens < 200 pass,
/// clients only produce < 100); the command slot is validated correctly.
fn session_server(env: &mut SymEnv<'_>) -> PathResult<()> {
    let hs = env.recv(&hs_layout())?;
    let tcap = env.constant(200, Width::W16); // BUG: double the client bound
    if !env.if_ult(hs.field("token"), tcap)? {
        return Ok(());
    }
    let cmd = env.recv(&cmd_layout())?;
    let one = env.constant(1, Width::W8);
    let two = env.constant(2, Width::W8);
    let is1 = env.if_eq(cmd.field("op"), one)?;
    if !is1 && !env.if_eq(cmd.field("op"), two)? {
        return Ok(());
    }
    let acap = env.constant(50, Width::W16);
    if !env.if_ult(cmd.field("arg"), acap)? {
        return Ok(());
    }
    env.mark_accept();
    Ok(())
}

fn main() {
    let mut pool = TermPool::new();
    let mut solver = Solver::new();

    // One client predicate per session slot.
    let hs_pred = {
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        ClientPredicate::from_exploration(&exec.explore(&handshake_client))
    };
    let cmd_pred = {
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        ClientPredicate::from_exploration(&exec.explore(&command_client))
    };
    println!(
        "slot 0 (handshake): {} client path(s); slot 1 (command): {} client path(s)",
        hs_pred.len(),
        cmd_pred.len()
    );

    let hs_msg = SymMessage::fresh(&mut pool, &hs_layout(), "hs");
    let cmd_msg = SymMessage::fresh(&mut pool, &cmd_layout(), "cmd");
    let hs_prep = prepare_client(
        &mut pool,
        &mut solver,
        hs_pred,
        hs_msg,
        FieldMask::none(),
        Optimizations::default(),
    );
    let cmd_prep = prepare_client(
        &mut pool,
        &mut solver,
        cmd_pred,
        cmd_msg,
        FieldMask::none(),
        Optimizations::default(),
    );

    let (reports, slots, server_paths) = analyze_sequence(
        &mut pool,
        &mut solver,
        &session_server,
        vec![&hs_prep, &cmd_prep],
        Optimizations::default(),
        1,
    );

    println!("server paths completed: {server_paths}");
    println!("session Trojans: {}", reports.len());
    for (r, s) in reports.iter().zip(&slots) {
        println!(
            "  path {}: Trojan slot(s) {:?}; witness session = token={} then op={} arg={}",
            r.server_path_id, s, r.witness_fields[0], r.witness_fields[1], r.witness_fields[2]
        );
        assert_eq!(s, &vec![0], "the handshake slot is the weak link");
        assert!((100..200).contains(&r.witness_fields[0]));
    }
    assert_eq!(
        reports.len(),
        2,
        "both command variants host the handshake Trojan"
    );
    println!(
        "\nThe handshake accepts tokens in [100, 200) that no correct client \
         requests — a session-level Trojan invisible to single-message analysis \
         of the command slot alone."
    );
}
