//! The FSP wildcard Trojan, end to end (§6.3).
//!
//! 1. Achilles analyzes the FSP client utilities (with glob expansion
//!    modeled) against the server and reports, among others, Trojan
//!    messages whose file path contains a literal `*`.
//! 2. The discovered witness is injected into a concretely deployed FSP
//!    server — creating a file named `f*`.
//! 3. A correct user then tries to delete exactly that file and cannot:
//!    every pattern that matches `f*` also matches innocent files, and FSP
//!    globbing has no escape character.
//!
//! ```text
//! cargo run --release -p achilles-examples --example fsp_wildcard
//! ```

use achilles_fsp::{
    classify, run_analysis, run_utility, Command, FspAnalysisConfig, FspMessage, FspServerConfig,
    FspServerRuntime, TrojanFamily, UtilityOutcome,
};
use achilles_netsim::{Addr, Network, SimFs};

fn main() {
    // ---- Phase 1: find the Trojans -------------------------------------
    println!("== Achilles analysis (glob expansion modeled) ==");
    let config = FspAnalysisConfig::wildcard().with_commands(2);
    let result = run_analysis(&config);
    println!(
        "client predicates: {}, Trojans: {} ({} length-mismatch, {} wildcard)",
        result.client.len(),
        result.trojans.len(),
        result.length_mismatches(),
        result.wildcards(),
    );
    let wildcard_witness = result
        .trojans
        .iter()
        .zip(&result.families)
        .find(|(_, f)| matches!(f, TrojanFamily::Wildcard { .. }))
        .map(|(t, _)| FspMessage::from_field_values(&t.witness_fields))
        .expect("a wildcard Trojan is always found");
    println!(
        "wildcard witness: cmd={:#x} path={:?}",
        wildcard_witness.cmd,
        String::from_utf8_lossy(wildcard_witness.path_as_server_sees_it()),
    );

    // ---- Phase 2: inject into a live deployment ------------------------
    println!("\n== concrete deployment ==");
    let mut fs = SimFs::new();
    fs.write("/f1", b"holiday photos").unwrap();
    fs.write("/f2", b"bank accounts").unwrap();
    let mut net = Network::new();
    let server_addr = Addr::new("fspd");
    net.register(server_addr.clone());
    net.register(Addr::new("attacker"));
    net.register(Addr::new("alice"));
    let mut server = FspServerRuntime::new(server_addr, fs, FspServerConfig::default());

    // The attacker (or a single bit flip: 'j' ^ 0x40 == '*') injects a raw
    // message no correct client can produce: create the literal file 'f*'.
    let trojan = FspMessage::request(Command::Install, b"f*");
    net.send(
        Addr::new("attacker"),
        server.addr().clone(),
        trojan.to_wire(),
    );
    server.poll(&mut net);
    println!(
        "server files after injection: {:?}",
        server.fs().list("/").unwrap()
    );
    assert!(server.fs().exists("/f*"));

    // ---- Phase 3: the victim cannot clean up ---------------------------
    println!("\n== Alice tries to remove exactly 'f*' ==");
    let out = run_utility(
        &mut net,
        Addr::new("alice"),
        &mut server,
        Command::DelFile,
        "f*",
    );
    println!("client expanded 'f*' to: {out:?}");
    let remaining = server.fs().list("/").unwrap();
    println!("server files afterwards: {remaining:?}");
    match out {
        UtilityOutcome::Sent(paths) => {
            assert!(paths.len() > 1, "the pattern matched innocent files too");
        }
        UtilityOutcome::NothingToDo => unreachable!(),
    }
    assert!(
        remaining.is_empty(),
        "collateral damage: every f-file was deleted"
    );
    println!(
        "\nExactly the paper's scenario: removing 'f*' also removed Alice's \
         'f1' and 'f2' — there is no way to name only the Trojan file."
    );

    // Classification sanity: the witness really is the wildcard family.
    let family = classify(
        &result
            .trojans
            .iter()
            .zip(&result.families)
            .find(|(_, f)| matches!(f, TrojanFamily::Wildcard { .. }))
            .map(|(t, _)| t.clone())
            .unwrap(),
    );
    assert!(matches!(family, TrojanFamily::Wildcard { .. }));
}
