//! A tour of the replay subsystem: discover → concretize → inject →
//! triage → minimize → persist.
//!
//! The paper validated every symbolically discovered Trojan by injecting
//! it into a real deployment (§6.3); this example does the same against
//! the concrete FSP server in wildcard mode, then shows what the replay
//! engine adds on top of raw injection: crash-signature triage, ddmin
//! witness minimization, fault-plan variations, and the persistent corpus
//! that makes re-analysis incremental.
//!
//! ```text
//! cargo run --release -p achilles-examples --example replay_triage
//! ```

use achilles_fsp::{run_analysis, FspAnalysisConfig, FspMessage, FspTarget};
use achilles_replay::{
    minimize, replay, validate_trojans, FaultPlan, ReplayCorpus, ValidateConfig,
};

fn main() {
    // 1. Discover: one utility in wildcard mode — both Trojan families.
    let config = FspAnalysisConfig::wildcard().with_commands(1);
    let result = run_analysis(&config);
    println!(
        "discovered {} Trojans ({} length-mismatch, {} wildcard)",
        result.trojans.len(),
        result.length_mismatches(),
        result.wildcards()
    );

    // 2. Validate: replay every witness against the concrete deployment,
    //    minimizing the first witness of each crash signature.
    let target = FspTarget::new(config.server.clone(), config.client.glob_expansion);
    let mut corpus = ReplayCorpus::new();
    let validate_config = ValidateConfig {
        minimize: true,
        ..ValidateConfig::default()
    };
    let summary = validate_trojans(&target, &result.trojans, &mut corpus, &validate_config);
    println!(
        "replayed {} witnesses: {} confirmed ({:.0}%), {} distinct crash signatures",
        summary.replayed,
        summary.confirmed,
        summary.confirmation_rate() * 100.0,
        corpus.distinct_signatures()
    );
    assert_eq!(summary.confirmed, summary.replayed, "all witnesses confirm");

    // 3. Triage: signatures group witnesses into bug classes.
    println!("\ncrash signatures (first three):");
    for sig in summary.confirmed_signatures.iter().take(3) {
        println!("  {sig}");
    }

    // 4. Minimize: a multi-field witness shrinks to its essential fields.
    let shrunk = summary
        .minimized
        .iter()
        .find(|m| m.strictly_shrunk())
        .expect("some witness carries incidental solver junk");
    let msg = FspMessage::from_field_values(&shrunk.witness.fields);
    println!(
        "\nminimized witness: {} of {} differing fields essential ({} replays)",
        shrunk.essential.len(),
        shrunk.original_delta.len(),
        shrunk.replays
    );
    println!(
        "  reduced message: cmd={:#x} bb_len={} buf={:?}",
        msg.cmd, msg.bb_len, msg.buf
    );

    // 5. Fault plans: the same witness under network faults. A single
    //    bit-flip (the paper's S3 motivator) can arm or disarm a Trojan.
    let witness = &summary.results[0].witness;
    for (label, faults) in [
        ("fault-free", FaultPlan::none()),
        (
            "duplicated",
            FaultPlan {
                duplicate: true,
                ..FaultPlan::none()
            },
        ),
        (
            "dropped",
            FaultPlan {
                drop: true,
                ..FaultPlan::none()
            },
        ),
    ] {
        let r = replay(&target, witness, &faults);
        println!("  witness 0 under {label}: {:?}", r.verdict);
    }

    // 6. Persist: the corpus round-trips through its text form, and a
    //    second validation pass skips every known witness.
    let reloaded = ReplayCorpus::from_text(&corpus.to_text()).expect("a saved corpus parses back");
    assert_eq!(reloaded.len(), corpus.len());
    let second = validate_trojans(&target, &result.trojans, &mut corpus, &validate_config);
    println!(
        "\nre-analysis: {} witnesses skipped (known bytes), {} replayed",
        second.skipped_known, second.replayed
    );
    assert_eq!(second.replayed, 0, "nothing new to validate");

    // Bonus: minimization is itself deterministic — re-minimizing the same
    // witness replays the same signature.
    let again = minimize(
        &target,
        &summary.minimized[0].witness,
        &FaultPlan::none(),
        &summary.minimized[0].signature,
    );
    assert_eq!(again.essential, summary.minimized[0].essential);
    println!("\nEvery symbolic Trojan reproduced as a concrete failure; triage is incremental.");
}
