//! The PBFT MAC attack, end to end (§6.3).
//!
//! 1. Achilles analyzes the PBFT client against the (primary) replica and
//!    reports a single Trojan type: requests whose authenticator no correct
//!    client can produce, accepted because the primary never verifies MACs.
//! 2. The cluster simulation quantifies the impact: a single client
//!    submitting corrupted-MAC requests forces expensive recoveries and
//!    collapses everyone's throughput.
//!
//! ```text
//! cargo run --release -p achilles-examples --example pbft_mac_attack
//! ```

use achilles_pbft::{
    run_analysis, run_workload, ClusterConfig, PbftAnalysisConfig, PbftRequest, PbftTrojanFamily,
};

fn main() {
    println!("== Achilles analysis of the PBFT replica ==");
    let result = run_analysis(&PbftAnalysisConfig::paper());
    println!(
        "client predicates: {}, Trojan reports: {}, distinct types: {}",
        result.client.len(),
        result.trojans.len(),
        result.distinct_families()
    );
    for (t, f) in result.trojans.iter().zip(&result.families) {
        let req = PbftRequest::from_field_values(&t.witness_fields);
        println!(
            "  [{:?}] witness: cid={} rid={} macs={:08x?} ({})",
            f,
            req.cid,
            req.rid,
            req.macs,
            t.notes.join("/")
        );
        assert_eq!(*f, PbftTrojanFamily::MacAttack);
    }
    println!(
        "analysis time: {:?} (the paper: \"a few seconds\")",
        result.total_time
    );

    println!("\n== impact: 4-replica cluster, 10,000 requests ==");
    let healthy = run_workload(ClusterConfig::default(), 10_000, 0);
    let attacked = run_workload(ClusterConfig::default(), 10_000, 10);
    println!(
        "healthy:             {:>8.0} req/s ({} recoveries)",
        healthy.throughput(),
        healthy.stats().recoveries
    );
    println!(
        "10% corrupted MACs:  {:>8.0} req/s ({} recoveries)",
        attacked.throughput(),
        attacked.stats().recoveries
    );
    let slowdown = healthy.throughput() / attacked.throughput();
    println!("slowdown: {slowdown:.1}x");
    assert!(slowdown > 10.0);

    println!("\n== with the fix of Clement et al. [10] ==");
    let patched = run_workload(
        ClusterConfig {
            primary_verifies_macs: true,
            ..ClusterConfig::default()
        },
        10_000,
        10,
    );
    println!(
        "patched:             {:>8.0} req/s ({} recoveries, {} requests dropped at the primary)",
        patched.throughput(),
        patched.stats().recoveries,
        patched.stats().dropped
    );
    assert_eq!(patched.stats().recoveries, 0);
    println!(
        "\nA node with a corrupted key — or a malicious client — can no longer \
         degrade the whole cluster."
    );
}
