//! The three local-state modes (§3.4), demonstrated on Paxos.
//!
//! The deployment scenario: an acceptor has promised ballot 5 and the
//! proposer enters phase 2. Which `Accept` messages are Trojan depends on
//! the *state*, not the code — like the Amazon S3 gossip message that was
//! only Trojan "in the concrete scenario in which it occurred" (§1, §3.4).
//!
//! ```text
//! cargo run --release -p achilles-examples --example paxos_local_state
//! ```

use achilles_paxos::{
    analyze_local_state, Acceptor, AcceptorMode, Proposer, ProposerMode, MAX_PROPOSABLE_VALUE,
};

fn analyze(proposer: ProposerMode, acceptor: AcceptorMode) -> Vec<achilles::TrojanReport> {
    analyze_local_state(proposer, acceptor, 1).1
}

fn main() {
    // Build the scenario concretely first: a real Paxos round reaching
    // phase 2 with value 7 at ballot 5 (Concrete Local State is "run the
    // system up to the point of interest").
    let mut acceptors = vec![Acceptor::new(); 3];
    let mut proposer = Proposer::new(5, 7);
    let chosen = proposer.run(&mut acceptors);
    println!("concrete Paxos round chose: {chosen:?}");
    assert_eq!(chosen, Some(7));

    println!("\n== mode 1: Concrete Local State ==");
    println!("(deployment proposed value 7 at ballot 5; re-run Achilles per scenario)");
    let reports = analyze(ProposerMode::Concrete(5, 7), AcceptorMode::Concrete(5));
    for r in &reports {
        println!(
            "  Trojan: kind={} ballot={} value={} — only (5, 7) is correct here",
            r.witness_fields[0], r.witness_fields[1], r.witness_fields[2]
        );
        assert!(r.witness_fields[1] != 5 || r.witness_fields[2] != 7);
    }
    assert_eq!(reports.len(), 1);

    println!("\n== mode 2: Constructed Symbolic Local State ==");
    println!("(proposed value symbolic in 0..={MAX_PROPOSABLE_VALUE}; ONE analysis covers all scenarios)");
    let reports = analyze(ProposerMode::Constructed(5), AcceptorMode::Concrete(5));
    for r in &reports {
        println!(
            "  Trojan: ballot={} value={} — outside every proposable scenario",
            r.witness_fields[1], r.witness_fields[2]
        );
        assert!(r.witness_fields[2] > MAX_PROPOSABLE_VALUE || r.witness_fields[1] != 5);
    }
    assert_eq!(reports.len(), 1);

    println!("\n== mode 3: Over-approximate Symbolic Local State ==");
    println!("(acceptor's promised ballot replaced by an annotated symbolic value in [0, 20])");
    let reports = analyze(
        ProposerMode::Constructed(5),
        AcceptorMode::OverApproximate { max: 20 },
    );
    for r in &reports {
        println!(
            "  Trojan: ballot={} value={} — robust across all promised-state values",
            r.witness_fields[1], r.witness_fields[2]
        );
    }
    assert_eq!(reports.len(), 1);

    println!("\nAll three §3.4 modes found scenario-specific Trojans.");
}
