//! Quickstart: the paper's working example (§2, Figures 2–6), ported to
//! the protocol-agnostic `TargetSpec` API.
//!
//! A tiny read/write server whose READ handler forgets the `address < 0`
//! check. Correct clients validate the address before sending, so READ
//! messages with negative addresses are Trojan messages — accepted by the
//! server, producible by no correct client.
//!
//! This example is the "porting a protocol" guide made runnable. One type,
//! `QuickstartSpec`, bundles everything the pipeline needs — the client
//! and server node programs, the wire layout, the CRC field mask, and a
//! concrete deployment for replay — and everything downstream is generic:
//!
//! 1. register the spec in a [`TargetRegistry`] and select it *by name*;
//! 2. run discovery with an [`AchillesSession`];
//! 3. concretely confirm every finding with
//!    [`achilles_replay::validate_spec`];
//! 4. declare a multi-message *session* (`hello` → request) and drive the
//!    stateful analysis + fault-scheduled replay through the same spec —
//!    the "Declaring a session" guide made runnable;
//! 5. sweep the session witness's fault-schedule space with
//!    `achilles_sweep` and triage which delivery faults arm or disarm the
//!    Trojan — the "Sweeping fault schedules" guide made runnable. The
//!    session deployment replicates onto a *backup* node that enforces the
//!    correct hello check, so the forged hello leaves the two replicas
//!    with different state roots: the sweep triages those cells as
//!    `Diverged` — the "Exposing a state root" guide (step 9) made
//!    runnable.
//!
//! ```text
//! cargo run --release -p achilles-examples --example quickstart
//! ```

use std::sync::Arc;

use achilles::{
    AchillesSession, Delivery, DivergenceProbe, FieldMask, InjectionOutcome, ReplayTarget,
    RootHasher, SessionSlot, SessionSpec, SnapshotReplayTarget, StateRoot, TargetRegistry,
    TargetSnapshot, TargetSpec,
};
use achilles_replay::{
    validate_spec, validate_spec_sessions, ReplayCorpus, ReplayVerdict, SessionValidateConfig,
    ValidateConfig,
};
use achilles_solver::{render_conjunction, Width};
use achilles_symvm::{MessageLayout, NodeProgram, PathResult, SymEnv, SymMessage};

const DATASIZE: u64 = 100;
const READ: u64 = 1;
const WRITE: u64 = 2;
const MAX_PEER: u64 = 10;

fn layout() -> Arc<MessageLayout> {
    MessageLayout::builder("msg")
        .field("sender", Width::W16)
        .field("request", Width::W8)
        .field("address", Width::W32)
        .field("value", Width::W32)
        .field("crc", Width::W16)
        .build()
}

/// The CRC the client library computes (also used by the concrete
/// generability oracle — one definition for both worlds).
fn crc16(args: &[u64]) -> u64 {
    args.iter()
        .fold(0xFFFFu64, |acc, &v| (acc ^ v).rotate_left(5) & 0xFFFF)
}

/// Figure 3: the client validates `0 <= address < DATASIZE`, then builds a
/// READ or WRITE message with a CRC over the other fields.
fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
    let crc_fun = env.pool_mut().register_fun("crc16", Width::W16, crc16);

    let sender = env.sym_in_range("symb_PeerID", Width::W16, 0, MAX_PEER)?;
    let op = env.sym("operationType", Width::W8);
    let address = env.sym("symb_Address", Width::W32);

    // if (address >= DATASIZE) exit(1);
    let datasize = env.constant(DATASIZE, Width::W32);
    if !env.if_slt(address, datasize)? {
        return Ok(());
    }
    // if (address < 0) exit(1);
    let zero = env.constant(0, Width::W32);
    if env.if_slt(address, zero)? {
        return Ok(());
    }

    let read = env.constant(READ, Width::W8);
    if env.if_eq(op, read)? {
        let request = env.constant(READ, Width::W8);
        // READ messages carry no value on the wire; the fixed-layout slot is
        // uninitialized buffer memory — unconstrained symbolic, exactly how
        // Figure 5 shows the READ path predicate without a value conjunct.
        let value = env.sym("uninitialized_value", Width::W32);
        let crc = env
            .pool_mut()
            .apply(crc_fun, vec![sender, request, address]);
        env.send(SymMessage::new(
            layout(),
            vec![sender, request, address, value, crc],
        ));
    } else {
        let request = env.constant(WRITE, Width::W8);
        let value = env.sym("symb_Value", Width::W32);
        let crc = env
            .pool_mut()
            .apply(crc_fun, vec![sender, request, address, value]);
        env.send(SymMessage::new(
            layout(),
            vec![sender, request, address, value, crc],
        ));
    }
    Ok(())
}

/// Figure 2: the server — READ forgets the `address < 0` check.
fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
    let msg = env.recv(&layout())?;
    // isInSet(msg.sender, peers): the configured peer group is ids 0..=10.
    let max_peer = env.constant(MAX_PEER, Width::W16);
    if !env.if_ule(msg.field("sender"), max_peer)? {
        return Ok(()); // continue: rejecting
    }
    let datasize = env.constant(DATASIZE, Width::W32);
    let read = env.constant(READ, Width::W8);
    let write = env.constant(WRITE, Width::W8);
    if env.if_eq(msg.field("request"), read)? {
        if !env.if_slt(msg.field("address"), datasize)? {
            return Ok(());
        }
        // Security vulnerability: forgot to check address < 0.
        env.note("sendMessage(REPLY, data[msg.address])");
        env.mark_accept();
        return Ok(());
    }
    if env.if_eq(msg.field("request"), write)? {
        if !env.if_slt(msg.field("address"), datasize)? {
            return Ok(());
        }
        let zero = env.constant(0, Width::W32);
        if env.if_slt(msg.field("address"), zero)? {
            return Ok(());
        }
        env.note("data[msg.address] = msg.value; sendMessage(ACK)");
        env.mark_accept();
        return Ok(());
    }
    Ok(()) // default: discard
}

// ---------------------------------------------------------------------------
// Declaring a session: hello → request
// ---------------------------------------------------------------------------

/// Nonce window the *client* library requests from (exclusive).
const HELLO_CLIENT_NONCE_CAP: u64 = 100;
/// Nonce window the *server* accepts (exclusive) — the session S-bug.
const HELLO_SERVER_NONCE_CAP: u64 = 1000;

fn hello_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("hello")
        .field("peer", Width::W16)
        .field("nonce", Width::W16)
        .build()
}

/// Slot-0 client: a peer announces itself with a validated nonce.
fn hello_client(env: &mut SymEnv<'_>) -> PathResult<()> {
    let peer = env.sym_in_range("hello_peer", Width::W16, 0, MAX_PEER)?;
    let nonce = env.sym_in_range("hello_nonce", Width::W16, 0, HELLO_CLIENT_NONCE_CAP - 1)?;
    env.send(SymMessage::new(hello_layout(), vec![peer, nonce]));
    Ok(())
}

/// The session server: a lax hello gate (nonces 10× the client window pass
/// — the stateful S-bug), then the ordinary request handler. One
/// activation, two `recv`s, in declared slot order.
fn session_server(env: &mut SymEnv<'_>) -> PathResult<()> {
    let hello = env.recv(&hello_layout())?;
    let max_peer = env.constant(MAX_PEER, Width::W16);
    if !env.if_ule(hello.field("peer"), max_peer)? {
        return Ok(());
    }
    let cap = env.constant(HELLO_SERVER_NONCE_CAP, Width::W16); // BUG: 10× the client cap
    if !env.if_ult(hello.field("nonce"), cap)? {
        return Ok(());
    }
    server(env)
}

/// The concrete §2 server, bootable per injection: the same checks as the
/// symbolic program, acting on a real data array.
struct QuickstartTarget;

impl ReplayTarget for QuickstartTarget {
    fn name(&self) -> &'static str {
        "quickstart"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        let (sender, request, address) = (1, READ, 5);
        vec![
            sender,
            request,
            address,
            0,
            crc16(&[sender, request, address]),
        ]
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        let [sender, request, address, value, crc] = fields else {
            return false;
        };
        let addr = Width::W32.to_signed(*address);
        if *sender > MAX_PEER || !(0..DATASIZE as i64).contains(&addr) {
            return false;
        }
        match *request {
            READ => *crc == crc16(&[*sender, READ, *address]),
            WRITE => *crc == crc16(&[*sender, WRITE, *address, *value]),
            _ => false,
        }
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut data = vec![0u32; DATASIZE as usize];
        let mut outcome = InjectionOutcome::default();
        for (wire, _) in deliveries {
            let Ok(fields) = achilles::wire_to_fields(&layout(), wire) else {
                outcome.accepted_each.push(false);
                outcome.effects.push("malformed".to_string());
                continue;
            };
            let (sender, request, address, value) = (fields[0], fields[1], fields[2], fields[3]);
            let addr = Width::W32.to_signed(address);
            // The buggy dispatch, concretely.
            let accepted = sender <= MAX_PEER
                && match request {
                    READ => addr < DATASIZE as i64, // missing addr >= 0!
                    WRITE => (0..DATASIZE as i64).contains(&addr),
                    _ => false,
                };
            outcome.accepted_each.push(accepted);
            if !accepted {
                outcome.effects.push("rejected".to_string());
            } else if request == READ && addr < 0 {
                // data[addr] reads *before* the array: the privacy leak.
                outcome.effects.push("leak:out-of-bounds-read".to_string());
            } else if request == WRITE {
                data[addr as usize] = value as u32;
                outcome.effects.push("write:ack".to_string());
            } else {
                outcome.effects.push("read:reply".to_string());
            }
        }
        outcome
    }
}

/// The concrete session deployment: a hello gate in front of the §2
/// server. Deliveries parse by wire length (hello = 4 bytes).
struct QuickstartSessionTarget;

impl ReplayTarget for QuickstartSessionTarget {
    fn name(&self) -> &'static str {
        "quickstart"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        QuickstartTarget.benign_fields()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        QuickstartTarget.client_generable(fields)
    }

    fn slot_layouts(&self) -> Vec<Arc<MessageLayout>> {
        vec![hello_layout(), layout()]
    }

    fn slot_benign_fields(&self, slot: usize) -> Vec<u64> {
        if slot == 0 {
            vec![1, 7]
        } else {
            QuickstartTarget.benign_fields()
        }
    }

    fn slot_generable(&self, slot: usize, fields: &[u64]) -> bool {
        if slot == 0 {
            let [peer, nonce] = fields else { return false };
            *peer <= MAX_PEER && *nonce < HELLO_CLIENT_NONCE_CAP
        } else {
            QuickstartTarget.client_generable(fields)
        }
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = QuickstartSessionFork::default();
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    // Step 7 of the porting guide: expose the live session as a
    // snapshottable deployment, and the sweep's fork-server resumes
    // prefix-sharing schedules from snapshots instead of cold-booting.
    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(QuickstartSessionFork::default()))
    }

    // Step 9 of the porting guide: the session deployment observes
    // per-node state roots, so the sweep can triage silent replica splits
    // as `Diverged` instead of lumping them in with armed cells.
    fn reports_state_roots(&self) -> bool {
        true
    }
}

/// One replica of the session deployment: the hello registration plus the
/// replicated data array, digestible into a [`StateRoot`].
#[derive(Clone, Default)]
struct QuickstartReplica {
    greeted: bool,
    nonce: u64,
    data: Vec<(u64, u32)>, // written (address, value) pairs, insert order
}

impl QuickstartReplica {
    fn write(&mut self, address: u64, value: u32) {
        if let Some(slot) = self.data.iter_mut().find(|(a, _)| *a == address) {
            slot.1 = value;
        } else {
            self.data.push((address, value));
        }
    }

    fn root(&self, node: &str) -> StateRoot {
        let mut hasher = RootHasher::new();
        hasher.write_u64(u64::from(self.greeted));
        if self.greeted {
            hasher.write_u64(self.nonce);
        }
        let mut writes = self.data.clone();
        writes.sort_unstable();
        for (address, value) in writes {
            hasher.write_u64(address).write_u64(u64::from(value));
        }
        StateRoot::new(node, hasher.finish())
    }
}

/// The live session state behind [`QuickstartSessionTarget`]: the hello
/// gate plus the accumulated request prefix on the *primary*, mirrored
/// onto a *backup* replica that enforces the correct (client-window)
/// hello check — so a forged hello registers on the primary only, its
/// writes replicate nowhere, and the state roots silently split.
#[derive(Clone, Default)]
struct QuickstartSessionFork {
    greeted: bool,
    // Request state is replayed through the inner (pure) target: every
    // new request re-injects the accumulated prefix, and only the
    // effects past the previous call's count are new.
    requests: Vec<Delivery>,
    prior_effects: usize,
    primary: QuickstartReplica,
    backup: QuickstartReplica,
    probe: DivergenceProbe,
}

impl QuickstartSessionFork {
    fn roots(&self) -> Vec<StateRoot> {
        vec![self.primary.root("primary"), self.backup.root("backup")]
    }
}

impl SnapshotReplayTarget for QuickstartSessionFork {
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome) {
        let (wire, is_witness) = delivery;
        if wire.len() == 4 {
            let Ok(fields) = achilles::wire_to_fields(&hello_layout(), wire) else {
                outcome.accepted_each.push(false);
                self.probe.observe(&self.roots());
                return;
            };
            let accepted = fields[0] <= MAX_PEER && fields[1] < HELLO_SERVER_NONCE_CAP;
            outcome.accepted_each.push(accepted);
            if accepted {
                self.greeted = true;
                self.primary.greeted = true;
                self.primary.nonce = fields[1];
                // The backup validates the nonce against the *client*
                // window — the check the primary should have had. Forged
                // hellos register on the primary alone: delivery 0 is
                // where the replicas first disagree.
                if fields[1] < HELLO_CLIENT_NONCE_CAP {
                    self.backup.greeted = true;
                    self.backup.nonce = fields[1];
                }
                outcome.effects.push("hello:ok".to_string());
                if fields[1] >= HELLO_CLIENT_NONCE_CAP {
                    outcome.effects.push("family:forged-hello".to_string());
                }
            } else {
                outcome.effects.push("hello:rejected".to_string());
            }
            self.probe.observe(&self.roots());
            return;
        }
        if !self.greeted {
            outcome.accepted_each.push(false);
            outcome.effects.push("rejected:no-hello".to_string());
            self.probe.observe(&self.roots());
            return;
        }
        self.requests.push((wire.clone(), *is_witness));
        let request_outcome = QuickstartTarget.inject(&self.requests);
        let accepted = *request_outcome.accepted_each.last().expect("just pushed");
        outcome.accepted_each.push(accepted);
        let total_effects = request_outcome.effects.len();
        outcome
            .effects
            .extend(request_outcome.effects.into_iter().skip(self.prior_effects));
        self.prior_effects = total_effects;
        // Replicate accepted writes: the primary applies them for its
        // registered session; the backup applies them only for sessions
        // *it* registered.
        if accepted {
            if let Ok(fields) = achilles::wire_to_fields(&layout(), wire) {
                let (address, value) = (fields[2], fields[3] as u32);
                let addr = Width::W32.to_signed(address);
                if fields[1] == WRITE && (0..DATASIZE as i64).contains(&addr) {
                    self.primary.write(address, value);
                    if self.backup.greeted {
                        self.backup.write(address, value);
                    }
                }
            }
        }
        self.probe.observe(&self.roots());
    }

    fn snapshot(&self) -> TargetSnapshot {
        TargetSnapshot::of(self.clone())
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) {
        *self = snapshot
            .get::<QuickstartSessionFork>()
            .expect("a quickstart fork session restores quickstart snapshots")
            .clone();
    }

    fn finish(&mut self, outcome: &mut InjectionOutcome) {
        outcome.effects.extend(self.probe.finish(&self.roots()));
    }

    fn state_roots(&self) -> Option<Vec<StateRoot>> {
        Some(self.roots())
    }
}

/// The §2 protocol as a `TargetSpec` — the complete porting surface.
struct QuickstartSpec;

impl TargetSpec for QuickstartSpec {
    fn name(&self) -> &'static str {
        "quickstart"
    }

    fn description(&self) -> &'static str {
        "the paper's §2 read/write server (missing negative-address check)"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        vec![Box::new(client)]
    }

    fn server(&self) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(server)
    }

    fn mask(&self) -> FieldMask {
        // The CRC field is masked, as §5.2 recommends for checksums (the
        // client computes a real expression over symbolic inputs; the
        // negate operator would otherwise have to reason through it).
        FieldMask::by_names(&layout(), &["crc"])
    }

    fn expected_trojans(&self) -> Option<usize> {
        Some(1) // exactly the READ path carries Trojans
    }

    fn replay_target(&self) -> Box<dyn ReplayTarget> {
        Box::new(QuickstartTarget)
    }

    // --- Declaring a session (step 5 of the porting guide). ---------------
    // An ordered slot list: each slot names its wire layout and which
    // session clients can legally fill it (indices into
    // `session_clients`). The session server consumes one `recv` per slot;
    // the session replay target replays whole sequences.

    fn sessions(&self) -> Vec<SessionSpec> {
        vec![SessionSpec::new(
            "hello-request",
            vec![
                SessionSlot::new("hello", hello_layout(), vec![0]),
                SessionSlot::new("request", layout(), vec![1]),
            ],
        )
        // Both accepting paths (READ and WRITE) host the forged-hello
        // Trojan; READ additionally hosts the negative-address one.
        .expecting(2)]
    }

    fn session_clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        vec![Box::new(hello_client), Box::new(client)]
    }

    fn session_server(&self, _name: &str) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(session_server)
    }

    fn session_replay_target(&self, _name: &str) -> Box<dyn ReplayTarget> {
        Box::new(QuickstartSessionTarget)
    }
}

fn main() {
    // 0. Trust the pruning (porting-guide step 10): install the
    //    independent certificate checker, so every Unsat verdict the
    //    discovery uses to discard a path is validated on the spot. A
    //    rejection would panic — the quiet run below *is* the audit
    //    passing. And instrument the run (step 11): arm span tracing so
    //    every phase below records into the Chrome trace written at the
    //    end — tracing is observation-only, nothing downstream changes.
    achilles_proofcheck::install_audit();
    achilles_obs::set_tracing(true);

    // 1. Register, then select by name — exactly how the bench bins and
    //    the conformance suite drive the shipped protocols.
    let mut registry = TargetRegistry::new();
    registry.register(Arc::new(QuickstartSpec));
    let spec = registry.get("quickstart").expect("just registered");

    // 2. Discover.
    let mut session = AchillesSession::new(&**spec);
    let report = session.run();

    println!("== client predicate P_C (Figure 5) ==");
    print!("{}", report.client.render(&session.engine().pool));

    println!("\n== server accepting paths (Figure 6) ==");
    println!("(constraints of each accepting path, as discovered)");

    println!("\n== Trojan messages (T = S \\ C) ==");
    for t in &report.trojans {
        println!(
            "path {} [{}]: witness sender={} request={} address={} (signed: {})",
            t.server_path_id,
            t.notes.join("; "),
            t.witness_fields[0],
            t.witness_fields[1],
            t.witness_fields[2],
            Width::W32.to_signed(t.witness_fields[2]),
        );
        println!(
            "{}",
            render_conjunction(&session.engine().pool, &t.constraints)
        );
    }

    assert_eq!(
        Some(report.trojans.len()),
        spec.expected_trojans(),
        "exactly the READ path carries Trojans"
    );
    let trojan = &report.trojans[0];
    let addr = Width::W32.to_signed(trojan.witness_fields[2]);
    assert!(
        addr < 0,
        "the Trojan reads a negative offset — the privacy leak of §2.1"
    );

    // 3. Concretely confirm: the same registry entry supplies the
    //    deployment, so validation is one generic call.
    let mut corpus = ReplayCorpus::new();
    let summary = validate_spec(
        &**spec,
        &report.trojans,
        &mut corpus,
        &ValidateConfig::default(),
    );
    assert_eq!(summary.confirmed, report.trojans.len());
    assert!(summary
        .results
        .iter()
        .all(|r| r.verdict == ReplayVerdict::ConfirmedTrojan));
    println!(
        "\nreplayed {} witness(es) against the concrete server: {} confirmed, signature {}",
        summary.replayed,
        summary.confirmed,
        summary.confirmed_signatures[0].to_line(),
    );

    println!(
        "\nAchilles found the paper's Trojan: a READ for negative address {addr} \
         (reads outside the data array — e.g. the server's peer list)."
    );

    // 4. Sessions: the same spec declares a hello → request session whose
    //    hello gate accepts nonces no client requests. The registry-driven
    //    session analysis finds the stateful Trojan and attributes it to
    //    the hello slot; session replay confirms it concretely.
    println!("\n== session Trojans (hello → request) ==");
    let reports = AchillesSession::new(&**spec).run_sessions();
    let session_report = &reports[0];
    assert_eq!(
        Some(session_report.trojans.len()),
        session_report.expected_trojans
    );
    for (t, slots) in session_report
        .trojans
        .iter()
        .zip(&session_report.trojan_slots)
    {
        let parts = session_report.split_fields(&t.witness_fields);
        println!(
            "path {}: Trojan slot(s) {slots:?}; hello peer={} nonce={} then request={}",
            t.server_path_id, parts[0][0], parts[0][1], parts[1][1],
        );
        assert!(slots.contains(&0), "the hello gate is the weak link");
        assert!(
            (HELLO_CLIENT_NONCE_CAP..HELLO_SERVER_NONCE_CAP).contains(&parts[0][1]),
            "the forged nonce sits in the server-only window"
        );
    }
    let mut session_corpus = ReplayCorpus::new();
    let session_summary = validate_spec_sessions(
        &**spec,
        session_report,
        &mut session_corpus,
        &SessionValidateConfig::default(),
    );
    assert_eq!(session_summary.confirmed, session_report.trojans.len());
    println!(
        "replayed {} session witness(es): {} confirmed, e.g. signature {}",
        session_summary.replayed,
        session_summary.confirmed,
        session_summary.confirmed_signatures[0].to_line(),
    );
    println!(
        "\nThe hello slot accepts nonces in [{HELLO_CLIENT_NONCE_CAP}, \
         {HELLO_SERVER_NONCE_CAP}) that no correct client requests — a \
         session-level Trojan invisible to single-message analysis of the \
         request slot alone."
    );

    // 5. Mini-sweep (step 6 of the porting guide): which delivery faults
    //    arm or disarm the session Trojan? Plan a reduced schedule space
    //    for the first witness, replay every schedule, and diff each
    //    outcome's crash signature against the fault-free baseline.
    println!("\n== fault-schedule sensitivity (mini-sweep) ==");
    let target = spec.session_replay_target(&session_report.session);
    let witness = achilles_replay::session_from_report(
        &session_report.layouts,
        0,
        &session_report.trojans[0],
    )
    .expect("session layouts are wire-encodable");
    let planner = achilles_sweep::SchedulePlanner::new(achilles_sweep::SweepConfig::quick());
    let mut sweep_cache = achilles_sweep::SweepCache::new();
    let (matrix, sweep_stats) = achilles_sweep::sweep_witness(
        &*target,
        "quickstart/hello-request",
        &witness,
        &planner,
        1,
        true, // through the fork-server (step 7 of the porting guide)
        &mut sweep_cache,
    );
    assert_eq!(
        matrix.baseline_verdict,
        ReplayVerdict::ConfirmedTrojan,
        "the witness confirms fault-free — that is the baseline"
    );
    for cell in &matrix.cells {
        println!(
            "  {:<24} {}",
            achilles_sweep::schedule_token(&cell.schedule),
            cell.class
        );
    }
    // The forged hello registers on the primary but not the backup, so the
    // fault-free baseline itself leaves the replicas with different state
    // roots — the sweep triages exact reproductions of that split as
    // `Diverged`, the silent-split refinement of `Armed`.
    use achilles_sweep::ScheduleClass;
    assert!(
        matrix.baseline_signature.diverged(),
        "the forged hello splits the replicas even fault-free"
    );
    assert!(
        matrix.count(ScheduleClass::Diverged) >= 1,
        "some schedule must reproduce the silent split"
    );
    // Dropping the hello (the arming slot) disarms the Trojan — and with
    // no registration anywhere, the replicas agree again.
    assert!(
        matrix
            .disarmed()
            .any(|s| achilles_sweep::schedule_token(s) == "drop@s0"),
        "dropping the arming hello slot disarms"
    );
    println!(
        "\n{} of {} schedules leave the Trojan armed and the replicas \
         silently split (diverged); {} more leave it armed; {} disarm it \
         (e.g. dropping the forged hello — agreement restored), {} mask \
         the question, {} change the failure into a new signature.",
        matrix.count(ScheduleClass::Diverged),
        matrix.cells.len(),
        matrix.count(ScheduleClass::Armed),
        matrix.count(ScheduleClass::Disarmed),
        matrix.count(ScheduleClass::Masked),
        matrix.count(ScheduleClass::NewSignature),
    );
    if let Some(divergence) = matrix.baseline_signature.divergence() {
        println!(
            "baseline divergence: first split at delivery {}, roots {}",
            divergence.first_split,
            divergence
                .roots
                .iter()
                .map(|r| format!("{}={:016x}", r.node, r.digest))
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    // The schedules share delivery prefixes, so the fork-server booted
    // far fewer sessions than it replayed cells.
    assert!(
        sweep_stats.fork.boots_saved() > 0,
        "prefix-sharing schedules must save boots"
    );
    println!(
        "fork-server: {} cells on {} boots — {} boots saved, {} snapshot \
         restores, mean shared prefix depth {:.2}.",
        sweep_stats.fork.plans,
        sweep_stats.fork.boots,
        sweep_stats.fork.boots_saved(),
        sweep_stats.fork.snapshot_restores,
        sweep_stats.fork.mean_shared_prefix_depth(),
    );

    // 6. Serving campaigns (step 8 of the porting guide): the same spec,
    //    unchanged, behind the resident fleetd service. Ingest the
    //    witness's *record* (the export form the corpus files use) over
    //    the line protocol, drain, and query — the served matrix must be
    //    bit-identical to the mini-sweep's, and a re-ingest is a no-op.
    println!("\n== serving campaigns (fleetd, in-process) ==");
    let mut service_registry = TargetRegistry::new();
    service_registry.register(Arc::new(QuickstartSpec));
    let service = achilles_fleetd::Fleetd::start(
        service_registry,
        achilles_fleetd::FleetdConfig::default().quick(),
    )
    .expect("service starts");
    assert!(service
        .handle_line("REGISTER quickstart")
        .starts_with("OK "));
    let record = achilles::export::session_witness_record(&witness.fields);
    let reply = service.handle_line(&format!("INGEST quickstart/hello-request {record}"));
    println!("INGEST quickstart/hello-request {record}\n  -> {reply}");
    assert!(reply.starts_with("OK "));
    assert_eq!(service.handle_line("DRAIN"), "OK drained");
    let served = service
        .query_text("quickstart", None, None)
        .expect("query answers");
    assert_eq!(
        served.lines().collect::<Vec<_>>(),
        matrix.to_text().lines().collect::<Vec<_>>(),
        "served matrix is bit-identical to the batch mini-sweep"
    );
    assert_eq!(service.stats().replays, sweep_stats.replayed);
    let again = service.handle_line(&format!("INGEST quickstart/hello-request {record}"));
    assert!(again.contains("dup"), "{again}");
    assert_eq!(
        service.stats().replays,
        sweep_stats.replayed,
        "re-ingesting a known witness replays nothing"
    );
    println!(
        "QUERY quickstart -> {} matrix line(s), bit-identical to the \
         mini-sweep; re-ingest -> {again} with zero new replays.",
        served.lines().count(),
    );

    // 7. Trusting the pruning (step 10): every Unsat verdict behind the
    //    discoveries above carried a certificate, and the checker
    //    installed at the top validated each one as it was produced.
    let (checked, wall) = achilles_solver::proof_audit_stats();
    assert!(
        checked > 0,
        "the discovery pruned paths, so certificates were checked"
    );
    println!(
        "\n== certificates (proof audit) ==\n{checked} unsat certificate(s) \
         independently checked in {:.3}s — every pruned path carries a \
         validated refutation.",
        wall.as_secs_f64(),
    );

    // 8. Instrumenting the run (step 11): everything above — discovery,
    //    mini-sweep, fork-server, service requests — recorded spans and
    //    counters through `achilles-obs`. Print a one-screen metrics
    //    snapshot, ask the service for its live METRICS, and write the
    //    Chrome trace.
    println!("\n== observability (metrics + trace) ==");
    let snapshot = achilles_obs::global().render();
    let one_screen = [
        "achilles_solver_queries_total",
        "achilles_solver_sat_total",
        "achilles_solver_unsat_total",
        "achilles_solver_cache_hits_total",
        "achilles_solver_core_subsumption_hits_total",
        "achilles_explore_runs_total",
        "achilles_explore_completed_total",
        "achilles_fork_",
        "achilles_sweep_",
    ];
    for line in snapshot.lines() {
        if line.starts_with('#') || one_screen.iter().any(|p| line.starts_with(p)) {
            println!("  {line}");
        }
    }
    let metrics_reply = service.handle_line("METRICS");
    assert!(metrics_reply.starts_with("OK "), "{metrics_reply}");
    println!(
        "fleetd METRICS -> {} line(s) (the same counters, served live).",
        metrics_reply.lines().count() - 1,
    );
    drop(service); // joins the executors, flushing their span buffers
    achilles_obs::drain_thread();
    let trace_path = std::env::temp_dir().join("achilles_quickstart_trace.json");
    achilles_obs::write_chrome_trace(&trace_path).expect("write quickstart trace");
    println!(
        "trace: {} — load it in Perfetto or chrome://tracing.",
        trace_path.display(),
    );
}
