//! Quickstart: the paper's working example (§2, Figures 2–6).
//!
//! A tiny read/write server whose READ handler forgets the `address < 0`
//! check. Correct clients validate the address before sending, so READ
//! messages with negative addresses are Trojan messages — accepted by the
//! server, producible by no correct client. This example runs the full
//! Achilles pipeline and prints the extracted predicates (Figures 5 and 6)
//! and the discovered Trojan.
//!
//! ```text
//! cargo run --release -p achilles-examples --example quickstart
//! ```
//!
//! Discovery is only half of the paper's pipeline: every candidate was then
//! *validated* by injecting the concrete message into a real deployment.
//! The opt-in `validate` phase reproduces that step — `achilles-replay`
//! concretizes each report into wire bytes, fires them at the concrete
//! FSP/PBFT/Paxos runtimes (optionally under network faults), dedups the
//! confirmed failures by crash signature, and ddmin-minimizes the
//! witnesses; the replay wall clock lands in
//! [`achilles::PhaseTimes::validate`]. See the `replay_triage` example for
//! the full tour.

use std::sync::Arc;

use achilles::{Achilles, AchillesConfig};
use achilles_solver::{render_conjunction, Width};
use achilles_symvm::{MessageLayout, PathResult, SymEnv, SymMessage};

const DATASIZE: u64 = 100;
const READ: u64 = 1;
const WRITE: u64 = 2;

fn layout() -> Arc<MessageLayout> {
    MessageLayout::builder("msg")
        .field("sender", Width::W16)
        .field("request", Width::W8)
        .field("address", Width::W32)
        .field("value", Width::W32)
        .field("crc", Width::W16)
        .build()
}

/// Figure 3: the client validates `0 <= address < DATASIZE`, then builds a
/// READ or WRITE message with a CRC over the other fields.
fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
    let crc_fun = env.pool_mut().register_fun("crc16", Width::W16, |args| {
        args.iter()
            .fold(0xFFFFu64, |acc, &v| (acc ^ v).rotate_left(5) & 0xFFFF)
    });

    let sender = env.sym_in_range("symb_PeerID", Width::W16, 0, 10)?;
    let op = env.sym("operationType", Width::W8);
    let address = env.sym("symb_Address", Width::W32);

    // if (address >= DATASIZE) exit(1);
    let datasize = env.constant(DATASIZE, Width::W32);
    if !env.if_slt(address, datasize)? {
        return Ok(());
    }
    // if (address < 0) exit(1);
    let zero = env.constant(0, Width::W32);
    if env.if_slt(address, zero)? {
        return Ok(());
    }

    let read = env.constant(READ, Width::W8);
    if env.if_eq(op, read)? {
        let request = env.constant(READ, Width::W8);
        // READ messages carry no value on the wire; the fixed-layout slot is
        // uninitialized buffer memory — unconstrained symbolic, exactly how
        // Figure 5 shows the READ path predicate without a value conjunct.
        let value = env.sym("uninitialized_value", Width::W32);
        let crc = env
            .pool_mut()
            .apply(crc_fun, vec![sender, request, address]);
        env.send(SymMessage::new(
            layout(),
            vec![sender, request, address, value, crc],
        ));
    } else {
        let request = env.constant(WRITE, Width::W8);
        let value = env.sym("symb_Value", Width::W32);
        let crc = env
            .pool_mut()
            .apply(crc_fun, vec![sender, request, address, value]);
        env.send(SymMessage::new(
            layout(),
            vec![sender, request, address, value, crc],
        ));
    }
    Ok(())
}

/// Figure 2: the server — READ forgets the `address < 0` check.
fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
    let msg = env.recv(&layout())?;
    // isInSet(msg.sender, peers): the configured peer group is ids 0..=10.
    let max_peer = env.constant(10, Width::W16);
    if !env.if_ule(msg.field("sender"), max_peer)? {
        return Ok(()); // continue: rejecting
    }
    let datasize = env.constant(DATASIZE, Width::W32);
    let read = env.constant(READ, Width::W8);
    let write = env.constant(WRITE, Width::W8);
    if env.if_eq(msg.field("request"), read)? {
        if !env.if_slt(msg.field("address"), datasize)? {
            return Ok(());
        }
        // Security vulnerability: forgot to check address < 0.
        env.note("sendMessage(REPLY, data[msg.address])");
        env.mark_accept();
        return Ok(());
    }
    if env.if_eq(msg.field("request"), write)? {
        if !env.if_slt(msg.field("address"), datasize)? {
            return Ok(());
        }
        let zero = env.constant(0, Width::W32);
        if env.if_slt(msg.field("address"), zero)? {
            return Ok(());
        }
        env.note("data[msg.address] = msg.value; sendMessage(ACK)");
        env.mark_accept();
        return Ok(());
    }
    Ok(()) // default: discard
}

fn main() {
    let mut achilles = Achilles::new();
    // The CRC field is masked, as §5.2 recommends for checksums (the client
    // computes a real expression over symbolic inputs; the negate operator
    // would otherwise have to reason through it).
    let l = layout();
    let config = AchillesConfig {
        mask: achilles::FieldMask::by_names(&l, &["crc"]),
        ..AchillesConfig::verified()
    };
    let report = achilles.run(&client, &server, &l, &config);

    println!("== client predicate P_C (Figure 5) ==");
    print!("{}", report.client.render(&achilles.pool));

    println!("\n== server accepting paths (Figure 6) ==");
    println!("(constraints of each accepting path, as discovered)");

    println!("\n== Trojan messages (T = S \\ C) ==");
    for t in &report.trojans {
        println!(
            "path {} [{}]: witness sender={} request={} address={} (signed: {})",
            t.server_path_id,
            t.notes.join("; "),
            t.witness_fields[0],
            t.witness_fields[1],
            t.witness_fields[2],
            Width::W32.to_signed(t.witness_fields[2]),
        );
        println!("{}", render_conjunction(&achilles.pool, &t.constraints));
    }

    assert_eq!(
        report.trojans.len(),
        1,
        "exactly the READ path carries Trojans"
    );
    let trojan = &report.trojans[0];
    let addr = Width::W32.to_signed(trojan.witness_fields[2]);
    assert!(
        addr < 0,
        "the Trojan reads a negative offset — the privacy leak of §2.1"
    );
    println!(
        "\nAchilles found the paper's Trojan: a READ for negative address {addr} \
         (reads outside the data array — e.g. the server's peer list)."
    );
}
