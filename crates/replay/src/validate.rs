//! The opt-in `validate` pipeline phase: replay every discovered Trojan.
//!
//! The paper's pipeline does not stop at symbolic discovery — every
//! candidate was validated by injecting the concrete message into a real
//! deployment and observing the failure. This module closes that loop for
//! the reproduction: [`validate_trojans`] concretizes each report, fires
//! it at a [`ReplayTarget`] (fanning out over
//! [`achilles_symvm::parallel_map`] when `workers > 1` — replay is a pure
//! function of the witness, so results are identical for every worker
//! count), dedups confirmed failures by [`CrashSignature`], and optionally
//! consults/extends a persistent [`ReplayCorpus`].

use std::time::{Duration, Instant};

use achilles::{AchillesReport, SessionReport, TrojanReport};
use achilles_symvm::parallel_map;

use crate::corpus::{CorpusEntry, ReplayCorpus};
use crate::minimize::{minimize, minimize_session, MinimizedSessionWitness};
use crate::signature::CrashSignature;
use crate::target::{
    replay, replay_session, FaultPlan, FaultSchedule, ReplayResult, ReplayTarget, ReplayVerdict,
    SessionReplayResult,
};
use crate::witness::{from_report, session_from_report};

/// Configuration of one validation run.
#[derive(Clone, Copy, Debug)]
pub struct ValidateConfig {
    /// Worker threads for the witness fan-out (1 = inline).
    pub workers: usize,
    /// Network faults applied to every injection.
    pub faults: FaultPlan,
    /// ddmin-minimize each confirmed witness that is the first of its
    /// signature (minimization costs `O(delta²)` replays per witness).
    pub minimize: bool,
}

impl Default for ValidateConfig {
    fn default() -> ValidateConfig {
        ValidateConfig {
            workers: 1,
            faults: FaultPlan::none(),
            minimize: false,
        }
    }
}

impl ValidateConfig {
    /// Fan the replay out over `n` threads.
    pub fn with_workers(mut self, n: usize) -> ValidateConfig {
        self.workers = n.max(1);
        self
    }
}

/// Everything one validation pass produces.
#[derive(Debug)]
pub struct ValidationSummary {
    /// Per-witness replay results, in report order (skipped witnesses are
    /// absent).
    pub results: Vec<ReplayResult>,
    /// Distinct confirmed crash signatures, in first-seen order.
    pub confirmed_signatures: Vec<CrashSignature>,
    /// Minimized witnesses (parallel to `confirmed_signatures` when
    /// minimization is on; empty otherwise).
    pub minimized: Vec<crate::minimize::MinimizedWitness>,
    /// Witnesses replayed.
    pub replayed: usize,
    /// Witnesses skipped because the corpus already knew their exact bytes.
    pub skipped_known: usize,
    /// Replays that confirmed a Trojan (accepted and ungenerable).
    pub confirmed: usize,
    /// Wall-clock time of the whole pass.
    pub elapsed: Duration,
}

impl ValidationSummary {
    /// Fraction of replayed witnesses that confirmed, in `[0, 1]`.
    pub fn confirmation_rate(&self) -> f64 {
        if self.replayed == 0 {
            return 1.0;
        }
        self.confirmed as f64 / self.replayed as f64
    }

    /// Witnesses per second of the replay phase.
    pub fn witnesses_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.replayed as f64 / secs
    }
}

/// Replays `reports` against `target`, updating `corpus` with newly
/// confirmed Trojans.
///
/// Witnesses whose exact field values the corpus already contains are
/// skipped (re-analysis of an unchanged system re-validates nothing);
/// fresh witnesses of *known* signatures replay but do not re-enter the
/// corpus or the minimization queue.
pub fn validate_trojans(
    target: &dyn ReplayTarget,
    reports: &[TrojanReport],
    corpus: &mut ReplayCorpus,
    config: &ValidateConfig,
) -> ValidationSummary {
    let started = Instant::now();
    let layout = target.layout();

    let mut skipped_known = 0usize;
    let witnesses: Vec<_> = reports
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            if corpus.knows_witness(&r.witness_fields) {
                skipped_known += 1;
                return None;
            }
            Some(from_report(&layout, i, r).expect("analysis layouts are wire-encodable"))
        })
        .collect();

    let results: Vec<ReplayResult> = parallel_map(config.workers, &witnesses, |_, w| {
        replay(target, w, &config.faults)
    });

    let mut summary = ValidationSummary {
        results: Vec::with_capacity(results.len()),
        confirmed_signatures: Vec::new(),
        minimized: Vec::new(),
        replayed: results.len(),
        skipped_known,
        confirmed: 0,
        elapsed: Duration::ZERO,
    };
    for result in results {
        if result.verdict == ReplayVerdict::ConfirmedTrojan {
            summary.confirmed += 1;
            let first_of_signature = !corpus.knows_signature(&result.signature);
            if first_of_signature {
                summary.confirmed_signatures.push(result.signature.clone());
            }
            // Every confirmed witness enters the corpus (so re-analysis
            // skips its exact bytes); only the first witness of a signature
            // is worth the O(delta²) minimization.
            let essential = if config.minimize && first_of_signature {
                let min = minimize(target, &result.witness, &config.faults, &result.signature);
                let essential = min.essential.clone();
                summary.minimized.push(min);
                essential
            } else {
                Vec::new()
            };
            corpus.insert(CorpusEntry::single(
                result.signature.clone(),
                result.witness.fields.clone(),
                essential,
            ));
        }
        summary.results.push(result);
    }
    summary.elapsed = started.elapsed();
    summary
}

/// Runs validation as a pipeline phase over a full [`AchillesReport`],
/// charging the wall-clock to [`PhaseTimes::validate`].
///
/// [`PhaseTimes::validate`]: achilles::PhaseTimes
pub fn validate_pipeline_report(
    target: &dyn ReplayTarget,
    report: &mut AchillesReport,
    corpus: &mut ReplayCorpus,
    config: &ValidateConfig,
) -> ValidationSummary {
    let summary = validate_trojans(target, &report.trojans, corpus, config);
    report.phase_times.validate = summary.elapsed;
    summary
}

/// Replays `reports` against the concrete deployment of a
/// [`TargetSpec`](achilles::TargetSpec) — the registry-driven form of
/// [`validate_trojans`]: the spec's
/// [`replay_target`](achilles::TargetSpec::replay_target) factory supplies
/// the deployment, so callers never name a protocol.
pub fn validate_spec(
    spec: &dyn achilles::TargetSpec,
    reports: &[TrojanReport],
    corpus: &mut ReplayCorpus,
    config: &ValidateConfig,
) -> ValidationSummary {
    let target = spec.replay_target();
    validate_trojans(&*target, reports, corpus, config)
}

// ---------------------------------------------------------------------------
// Session (multi-message) validation
// ---------------------------------------------------------------------------

/// Configuration of one session-validation run.
#[derive(Clone, Debug, Default)]
pub struct SessionValidateConfig {
    /// Worker threads for the witness fan-out (0/1 = inline).
    pub workers: usize,
    /// Per-delivery fault schedule applied to every injection.
    pub schedule: FaultSchedule,
    /// ddmin-minimize (over slots × fields) each confirmed witness that is
    /// the first of its signature.
    pub minimize: bool,
}

impl SessionValidateConfig {
    /// Fan the replay out over `n` threads.
    pub fn with_workers(mut self, n: usize) -> SessionValidateConfig {
        self.workers = n.max(1);
        self
    }
}

/// Everything one session-validation pass produces.
#[derive(Debug)]
pub struct SessionValidationSummary {
    /// Per-witness replay results, in report order (skipped witnesses are
    /// absent).
    pub results: Vec<SessionReplayResult>,
    /// Distinct confirmed crash signatures, in first-seen order.
    pub confirmed_signatures: Vec<CrashSignature>,
    /// Minimized witnesses (first witness of each new signature, when
    /// minimization is on).
    pub minimized: Vec<MinimizedSessionWitness>,
    /// Witnesses replayed.
    pub replayed: usize,
    /// Witnesses skipped because the corpus already knew their exact
    /// per-slot bytes.
    pub skipped_known: usize,
    /// Replays that confirmed a session Trojan.
    pub confirmed: usize,
    /// Wall-clock time of the whole pass.
    pub elapsed: Duration,
}

impl SessionValidationSummary {
    /// Fraction of replayed witnesses that confirmed, in `[0, 1]`.
    pub fn confirmation_rate(&self) -> f64 {
        if self.replayed == 0 {
            return 1.0;
        }
        self.confirmed as f64 / self.replayed as f64
    }
}

/// Replays a [`SessionReport`]'s Trojans against `target` under a fault
/// schedule, updating `corpus` with newly confirmed session witnesses —
/// the session analogue of [`validate_trojans`], with the same corpus
/// incrementality (known per-slot byte sequences are skipped) and the same
/// worker-count-invariant [`parallel_map`] fan-out.
pub fn validate_session_trojans(
    target: &dyn ReplayTarget,
    session: &SessionReport,
    corpus: &mut ReplayCorpus,
    config: &SessionValidateConfig,
) -> SessionValidationSummary {
    let started = Instant::now();

    let mut skipped_known = 0usize;
    let witnesses: Vec<_> = session
        .trojans
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            let slot_fields = session.split_fields(&r.witness_fields);
            if corpus.knows_session_witness(&slot_fields) {
                skipped_known += 1;
                return None;
            }
            Some(
                session_from_report(&session.layouts, i, r)
                    .expect("session layouts are wire-encodable"),
            )
        })
        .collect();

    let results: Vec<SessionReplayResult> =
        parallel_map(config.workers.max(1), &witnesses, |_, w| {
            replay_session(target, w, &config.schedule)
        });

    let mut summary = SessionValidationSummary {
        results: Vec::with_capacity(results.len()),
        confirmed_signatures: Vec::new(),
        minimized: Vec::new(),
        replayed: results.len(),
        skipped_known,
        confirmed: 0,
        elapsed: Duration::ZERO,
    };
    for result in results {
        if result.verdict == ReplayVerdict::ConfirmedTrojan {
            summary.confirmed += 1;
            let first_of_signature = !corpus.knows_signature(&result.signature);
            if first_of_signature {
                summary.confirmed_signatures.push(result.signature.clone());
            }
            let essential: Vec<(usize, usize)> = if config.minimize && first_of_signature {
                let min =
                    minimize_session(target, &result.witness, &config.schedule, &result.signature);
                let essential = min.essential.clone();
                summary.minimized.push(min);
                essential
            } else {
                Vec::new()
            };
            corpus.insert(CorpusEntry::session(
                result.signature.clone(),
                &result.witness.fields,
                &essential,
            ));
        }
        summary.results.push(result);
    }
    summary.elapsed = started.elapsed();
    summary
}

/// Replays a [`SessionReport`] against the session deployment of its
/// [`TargetSpec`](achilles::TargetSpec) — the registry-driven form of
/// [`validate_session_trojans`]: the spec's
/// [`session_replay_target`](achilles::TargetSpec::session_replay_target)
/// factory supplies the deployment, so callers never name a protocol.
pub fn validate_spec_sessions(
    spec: &dyn achilles::TargetSpec,
    session: &SessionReport,
    corpus: &mut ReplayCorpus,
    config: &SessionValidateConfig,
) -> SessionValidationSummary {
    let target = spec.session_replay_target(&session.session);
    validate_session_trojans(&*target, session, corpus, config)
}

/// [`validate_spec`] over a full pipeline report, charging the wall-clock
/// to [`PhaseTimes::validate`](achilles::PhaseTimes) — the natural tail of
/// an [`AchillesSession`](achilles::AchillesSession) run.
pub fn validate_session(
    spec: &dyn achilles::TargetSpec,
    report: &mut AchillesReport,
    corpus: &mut ReplayCorpus,
    config: &ValidateConfig,
) -> ValidationSummary {
    let summary = validate_spec(spec, &report.trojans, corpus, config);
    report.phase_times.validate = summary.elapsed;
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_fsp::{Command, FspMessage, FspServerConfig, FspTarget};
    use std::time::Duration;

    fn report(msg: &FspMessage) -> TrojanReport {
        TrojanReport {
            server_path_id: 0,
            constraints: vec![],
            witness_fields: msg.field_values(),
            active_clients: 0,
            verified: true,
            found_at: Duration::ZERO,
            notes: vec![],
        }
    }

    fn length_trojan(cmd: Command, reported: u16, nul_at: usize) -> TrojanReport {
        let mut msg = FspMessage::request(cmd, b"abc");
        msg.bb_len = reported;
        msg.buf[nul_at] = 0;
        report(&msg)
    }

    #[test]
    fn confirms_dedups_and_skips() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let reports = vec![
            length_trojan(Command::Stat, 3, 1),
            length_trojan(Command::Stat, 3, 2), // different class
            length_trojan(Command::DelFile, 3, 1),
        ];
        let mut corpus = ReplayCorpus::new();
        let summary = validate_trojans(&target, &reports, &mut corpus, &ValidateConfig::default());
        assert_eq!(summary.replayed, 3);
        assert_eq!(summary.confirmed, 3);
        assert!((summary.confirmation_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(corpus.len(), 3);

        // Second pass over the same reports: everything is known bytes.
        let again = validate_trojans(&target, &reports, &mut corpus, &ValidateConfig::default());
        assert_eq!(again.skipped_known, 3);
        assert_eq!(again.replayed, 0);
    }

    #[test]
    fn worker_counts_agree() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let reports: Vec<TrojanReport> = (1..=3)
            .map(|r| length_trojan(Command::MakeDir, r as u16 + 1, r))
            .collect();
        let collect = |workers| {
            let mut corpus = ReplayCorpus::new();
            let summary = validate_trojans(
                &target,
                &reports,
                &mut corpus,
                &ValidateConfig::default().with_workers(workers),
            );
            summary
                .results
                .iter()
                .map(|r| (r.witness.fields.clone(), r.verdict, r.signature.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(1), collect(4));
    }

    #[test]
    fn minimization_is_recorded_in_the_corpus() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let reports = vec![length_trojan(Command::Stat, 4, 1)];
        let mut corpus = ReplayCorpus::new();
        let config = ValidateConfig {
            minimize: true,
            ..ValidateConfig::default()
        };
        let summary = validate_trojans(&target, &reports, &mut corpus, &config);
        assert_eq!(summary.minimized.len(), 1);
        assert_eq!(
            corpus.entries()[0].essential,
            summary.minimized[0].essential
        );
    }
}
