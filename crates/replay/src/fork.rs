//! The replay fork-server: prefix-shared execution trees across fault
//! schedules.
//!
//! A sweep campaign replays one [`SessionWitness`] under hundreds of
//! [`FaultSchedule`]s against the same target. Cold replay boots a fresh
//! deployment per cell, yet most cells share long delivery prefixes — a
//! bit-flip at slot 3 of a 4-slot session re-executes slots 0–2
//! identically. [`replay_session_forked`] exploits that: it expands every
//! schedule into its [`SessionPlan`], folds the plans into a
//! *delivery-prefix trie* keyed on post-fault-application [`Delivery`]
//! bytes, and walks the trie depth-first over one live
//! [`SnapshotReplayTarget`] session *per worker*, snapshotting at branch
//! points and restoring from the deepest shared ancestor — the boot state
//! at minimum — instead of cold-booting (the AFL fork-server move,
//! transplanted to deterministic replay).
//!
//! Classification reuses [`classify_session`] on the per-plan
//! [`InjectionOutcome`]s, so fork-server results are bit-identical to
//! cold-boot results by construction — the equivalence suite
//! (`tests/fork_server_equivalence.rs`) pins this for every registered
//! target and worker count. Targets without
//! [`ReplayTarget::boot_fork`] support fall back to cold replay
//! transparently.

use achilles::{SnapshotReplayTarget, TargetSnapshot};
use achilles_symvm::{parallel_map, parallel_map_with};

use crate::target::{
    classify_session, plan_session, replay_session, Delivery, FaultSchedule, InjectionOutcome,
    ReplayTarget, SessionPlan, SessionReplayResult,
};
use crate::witness::SessionWitness;

/// Instrumentation from one [`replay_session_forked`] call: how much
/// booting the prefix trie saved.
///
/// `boots` is the only field that may vary with the worker count (each
/// parallel worker keeps one live session); every other field — and every
/// replay result — is worker-count invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForkStats {
    /// Cells (schedules) executed.
    pub plans: usize,
    /// Deployment boots actually performed. Cold replay boots once per
    /// cell; the fork-server boots once per worker session (plus one for
    /// cells whose schedule drops every delivery) and resumes everything
    /// else from snapshots.
    pub boots: usize,
    /// Snapshot restores performed while walking the trie (branch-point
    /// restores and boot-state restores between subtrees alike).
    pub snapshot_restores: usize,
    /// Sum over cells of their shared prefix depth: the number of leading
    /// deliveries of the cell's plan that at least one other cell's plan
    /// shares (0 when the cell diverges at its first delivery).
    /// `sum / plans` is the mean shared prefix depth.
    pub shared_prefix_depth_sum: usize,
    /// Independent subtrees the trie root fans out into — the fork-server's
    /// effective parallelism width.
    pub branches: usize,
}

impl ForkStats {
    /// Stats for a cold (non-forked) run over `plans` cells: one boot per
    /// cell, nothing shared.
    pub fn cold(plans: usize) -> ForkStats {
        ForkStats {
            plans,
            boots: plans,
            snapshot_restores: 0,
            shared_prefix_depth_sum: 0,
            branches: plans,
        }
    }

    /// Deployment boots the prefix trie avoided relative to cold replay.
    pub fn boots_saved(&self) -> usize {
        self.plans.saturating_sub(self.boots)
    }

    /// Mean shared prefix depth over the executed cells (0.0 when nothing
    /// was shared or no cells ran).
    pub fn mean_shared_prefix_depth(&self) -> f64 {
        if self.plans == 0 {
            0.0
        } else {
            self.shared_prefix_depth_sum as f64 / self.plans as f64
        }
    }

    /// Accumulates another call's stats (campaigns sweep many witnesses).
    pub fn absorb(&mut self, other: &ForkStats) {
        self.plans += other.plans;
        self.boots += other.boots;
        self.snapshot_restores += other.snapshot_restores;
        self.shared_prefix_depth_sum += other.shared_prefix_depth_sum;
        self.branches += other.branches;
    }

    /// Mirrors one replay call's stats into the process metrics registry
    /// as `achilles_fork_*` series. Cell/trie-shape counters (`plans`,
    /// `branches`, prefix depth) are fixed by the schedule set and so
    /// [`Deterministic`](achilles_obs::Class::Deterministic); `boots` and
    /// `snapshot_restores` vary with the worker count and claim order and
    /// are [`Wall`](achilles_obs::Class::Wall).
    pub fn record_metrics(&self) {
        use achilles_obs::Class::{Deterministic, Wall};
        let reg = achilles_obs::global();
        reg.add(
            Deterministic,
            "achilles_fork_plans_total",
            &[],
            self.plans as u64,
        );
        reg.add(
            Deterministic,
            "achilles_fork_branches_total",
            &[],
            self.branches as u64,
        );
        reg.add(
            Deterministic,
            "achilles_fork_shared_prefix_depth_sum_total",
            &[],
            self.shared_prefix_depth_sum as u64,
        );
        reg.add(Wall, "achilles_fork_boots_total", &[], self.boots as u64);
        reg.add(
            Wall,
            "achilles_fork_snapshot_restores_total",
            &[],
            self.snapshot_restores as u64,
        );
    }
}

/// One node of the delivery-prefix trie. Children are kept in first-insert
/// order so the DFS walk — and therefore every effect sequence — is
/// deterministic regardless of schedule order hashing.
struct Trie {
    children: Vec<(Delivery, Trie)>,
    /// Plan indices whose delivery sequence ends exactly at this node.
    terminals: Vec<usize>,
    /// Plans whose delivery path passes through (or ends at) this node —
    /// a non-root node with `plans_through >= 2` is a genuinely shared
    /// prefix.
    plans_through: usize,
}

impl Trie {
    fn new() -> Trie {
        Trie {
            children: Vec::new(),
            terminals: Vec::new(),
            plans_through: 0,
        }
    }

    fn insert(&mut self, deliveries: &[Delivery], plan_index: usize) {
        let mut node = self;
        node.plans_through += 1;
        for delivery in deliveries {
            let pos = match node.children.iter().position(|(d, _)| d == delivery) {
                Some(pos) => pos,
                None => {
                    node.children.push((delivery.clone(), Trie::new()));
                    node.children.len() - 1
                }
            };
            node = &mut node.children[pos].1;
            node.plans_through += 1;
        }
        node.terminals.push(plan_index);
    }
}

/// Walks `node`'s subtree on a live session whose state already reflects
/// the path from the root to `node`. Appends `(plan_index, outcome)` pairs
/// for every terminal reached. `outcome` at entry holds the accumulated
/// prefix outcome for this path — it is extended in place and truncated
/// back on backtrack (cheaper than cloning per edge), so only the one
/// per-cell clone the cold path also pays remains. `shared_depth` is the
/// depth of the deepest ancestor (this node included) whose prefix ≥ 2
/// plans share.
fn walk(
    node: &Trie,
    session: &mut dyn SnapshotReplayTarget,
    outcome: &mut InjectionOutcome,
    depth: usize,
    shared_depth: usize,
    out: &mut Vec<(usize, InjectionOutcome)>,
    stats: &mut ForkStats,
) {
    // Terminals: each needs `finish` run on the state *at this node*. All
    // but the last consumer of this state must restore afterwards; when
    // this node is a leaf, the final terminal may finish in place.
    let must_preserve = !node.children.is_empty();
    if !node.terminals.is_empty() {
        let here = (must_preserve || node.terminals.len() > 1).then(|| session.snapshot());
        let mark = (outcome.accepted_each.len(), outcome.effects.len());
        for (i, &plan_index) in node.terminals.iter().enumerate() {
            let last = i + 1 == node.terminals.len();
            session.finish(outcome);
            out.push((plan_index, outcome.clone()));
            outcome.accepted_each.truncate(mark.0);
            outcome.effects.truncate(mark.1);
            stats.shared_prefix_depth_sum += shared_depth;
            if must_preserve || !last {
                let snap = here
                    .as_ref()
                    .expect("snapshot taken when state must survive");
                session.restore(snap);
                stats.snapshot_restores += 1;
            }
        }
    }
    // Children: a single child extends the path in place; siblings fork
    // from a snapshot of this node's state.
    let child_shared = |child: &Trie| {
        if child.plans_through >= 2 {
            depth + 1
        } else {
            shared_depth
        }
    };
    let here = (node.children.len() > 1).then(|| session.snapshot());
    let mark = (outcome.accepted_each.len(), outcome.effects.len());
    for (i, (delivery, child)) in node.children.iter().enumerate() {
        if i > 0 {
            let snap = here.as_ref().expect("snapshot taken for sibling subtrees");
            session.restore(snap);
            stats.snapshot_restores += 1;
            outcome.accepted_each.truncate(mark.0);
            outcome.effects.truncate(mark.1);
        }
        session.deliver(delivery, outcome);
        let shared = child_shared(child);
        walk(child, session, outcome, depth + 1, shared, out, stats);
    }
    if node.children.len() > 1 {
        // Leave the outcome as the caller handed it over (the session
        // state is the caller's responsibility — it restores around us).
        outcome.accepted_each.truncate(mark.0);
        outcome.effects.truncate(mark.1);
    }
}

/// Replays one session witness under every schedule through the
/// delivery-prefix trie, returning per-schedule results in schedule order
/// plus the [`ForkStats`] instrumentation.
///
/// Results are bit-identical to calling [`replay_session`] per schedule:
/// plan expansion and classification are the exact same code, and the trie
/// walk executes the exact same delivery sequence per cell against state
/// rebuilt by snapshot/restore. Targets whose
/// [`ReplayTarget::boot_fork`] returns `None` fall back to per-cell cold
/// replay ([`ForkStats::cold`]).
///
/// Work is parallelized over the trie root's subtrees with the same
/// order-preserving pool the cold path uses; each worker thread keeps
/// **one** live session for its whole run, restoring the boot-state
/// snapshot between subtrees, so the boot count is `min(workers,
/// subtrees)` rather than one per cell. The result vector — and every
/// signature in it — is independent of `workers`.
pub fn replay_session_forked(
    target: &dyn ReplayTarget,
    witness: &SessionWitness,
    schedules: &[&FaultSchedule],
    workers: usize,
) -> (Vec<SessionReplayResult>, ForkStats) {
    if schedules.is_empty() {
        return (Vec::new(), ForkStats::default());
    }
    if target.boot_fork().is_none() {
        let results = parallel_map(workers.max(1), schedules, |_, schedule| {
            replay_session(target, witness, schedule)
        });
        return (results, ForkStats::cold(schedules.len()));
    }
    let plans: Vec<SessionPlan> = schedules
        .iter()
        .map(|schedule| plan_session(target, witness, schedule))
        .collect();
    let mut trie = Trie::new();
    for (index, plan) in plans.iter().enumerate() {
        trie.insert(&plan.deliveries, index);
    }
    let mut stats = ForkStats {
        plans: plans.len(),
        boots: 0,
        snapshot_restores: 0,
        shared_prefix_depth_sum: 0,
        branches: trie
            .children
            .len()
            .max(usize::from(!trie.terminals.is_empty())),
    };
    let mut executed: Vec<Option<InjectionOutcome>> = vec![None; plans.len()];
    // Root terminals (schedules that drop every delivery) run on one boot
    // of their own; each root child is an independent subtree for the
    // worker pool.
    if !trie.terminals.is_empty() {
        let boot_span = achilles_obs::span("fork:boot", "fork");
        let mut session = target
            .boot_fork()
            .expect("boot_fork probed Some above and targets are stateless factories");
        drop(boot_span);
        stats.boots += 1;
        let root = Trie {
            children: Vec::new(),
            terminals: trie.terminals.clone(),
            plans_through: trie.terminals.len(),
        };
        let mut out = Vec::new();
        walk(
            &root,
            session.as_mut(),
            &mut InjectionOutcome::default(),
            0,
            0,
            &mut out,
            &mut stats,
        );
        for (index, outcome) in out {
            executed[index] = Some(outcome);
        }
    }
    if !trie.children.is_empty() {
        // One live session per worker thread: boot, snapshot the boot
        // state, and restore it between the subtrees the worker claims —
        // mirroring `parallel_map_with`'s context behavior (one context
        // inline when sequential, one per spawned worker otherwise).
        let clamped = workers.max(1).min(trie.children.len());
        stats.boots += if clamped <= 1 || trie.children.len() < 2 {
            1
        } else {
            clamped
        };
        let subtree_results = parallel_map_with(
            workers.max(1),
            &trie.children,
            |_| {
                let _span = achilles_obs::span("fork:boot", "fork");
                let session = target
                    .boot_fork()
                    .expect("boot_fork probed Some above and targets are stateless factories");
                let boot = session.snapshot();
                (session, boot, false)
            },
            |(session, boot, used), _, (delivery, child)| {
                let mut worker_stats = ForkStats::default();
                if *used {
                    session.restore(boot);
                    worker_stats.snapshot_restores += 1;
                }
                *used = true;
                let mut outcome = InjectionOutcome::default();
                session.deliver(delivery, &mut outcome);
                let shared = if child.plans_through >= 2 { 1 } else { 0 };
                let mut out = Vec::new();
                walk(
                    child,
                    session.as_mut(),
                    &mut outcome,
                    1,
                    shared,
                    &mut out,
                    &mut worker_stats,
                );
                (out, worker_stats)
            },
        );
        for (out, worker_stats) in subtree_results {
            stats.snapshot_restores += worker_stats.snapshot_restores;
            stats.shared_prefix_depth_sum += worker_stats.shared_prefix_depth_sum;
            for (index, outcome) in out {
                executed[index] = Some(outcome);
            }
        }
    }
    let results = plans
        .into_iter()
        .zip(executed)
        .map(|(plan, outcome)| {
            let outcome = outcome.expect("every plan index reaches exactly one trie terminal");
            classify_session(target, witness, plan, outcome)
        })
        .collect();
    (results, stats)
}

/// One live fork session kept warm across [`ForkServer::replay`] calls.
struct LiveSession<'t> {
    session: Box<dyn SnapshotReplayTarget + 't>,
    /// Snapshot of the freshly-booted state; restored between replays
    /// instead of cold-booting (restore-to-boot ≡ fresh boot is part of
    /// the snapshot equivalence law the conformance suite pins).
    boot: TargetSnapshot,
    /// Whether the session state has diverged from `boot` since the last
    /// restore (a clean session skips the restore entirely).
    dirty: bool,
}

impl std::fmt::Debug for LiveSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveSession")
            .field("dirty", &self.dirty)
            .finish_non_exhaustive()
    }
}

/// A reusable fork-server over one replay target: the unit of *per-target
/// affinity* for long-running campaign services.
///
/// [`replay_session_forked`] amortizes boots across the schedules of one
/// witness; a `ForkServer` amortizes them across *witnesses and campaign
/// rounds*: in **persistent** mode ([`ForkServer::new`]) it boots the
/// deployment once, snapshots the boot state, and serves every subsequent
/// replay — any witness of the same target — by restoring that snapshot,
/// so a service that sweeps a stream of ingested witnesses pays one boot
/// per executor, not one per witness. Results are bit-identical to the
/// batch paths: plan expansion, the trie walk, and classification are the
/// exact same code, and restore-to-boot ≡ fresh-boot is pinned by the
/// snapshot conformance suite.
///
/// **Detached** mode ([`ForkServer::detached`]) reproduces the batch
/// executor's behavior exactly — fresh cells through
/// [`replay_session_forked`] (or cold per-cell boots with `fork` off),
/// baseline through [`replay_session`] — so code written against the
/// server (`achilles_sweep`'s `sweep_witness_on`) serves both the one-shot
/// bins and the daemon without divergence.
///
/// Persistent mode engages when `fork` is on, the target supports
/// [`ReplayTarget::boot_fork`], and `workers <= 1` (one live session is
/// inherently sequential; with more workers the server delegates to the
/// per-witness parallel fork path, which boots per worker).
pub struct ForkServer<'t> {
    target: &'t dyn ReplayTarget,
    workers: usize,
    fork: bool,
    persistent: bool,
    live: Option<LiveSession<'t>>,
    lifetime: ForkStats,
    baselines: usize,
}

impl std::fmt::Debug for ForkServer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForkServer")
            .field("target", &self.target.name())
            .field("workers", &self.workers)
            .field("fork", &self.fork)
            .field("persistent", &self.persistent)
            .field("live", &self.live)
            .field("lifetime", &self.lifetime)
            .field("baselines", &self.baselines)
            .finish()
    }
}

impl<'t> ForkServer<'t> {
    /// A persistent fork-server: one boot serves every replay of `target`
    /// for the server's whole lifetime (sequential; see type docs).
    pub fn new(target: &'t dyn ReplayTarget) -> ForkServer<'t> {
        ForkServer {
            target,
            workers: 1,
            fork: true,
            persistent: true,
            live: None,
            lifetime: ForkStats::default(),
            baselines: 0,
        }
    }

    /// A detached (one-shot-semantics) server reproducing the batch
    /// executor exactly: [`replay_session_forked`] per call when `fork`,
    /// cold per-cell boots otherwise.
    pub fn detached(target: &'t dyn ReplayTarget, workers: usize, fork: bool) -> ForkServer<'t> {
        ForkServer {
            target,
            workers: workers.max(1),
            fork,
            persistent: false,
            live: None,
            lifetime: ForkStats::default(),
            baselines: 0,
        }
    }

    /// The replay target this server fronts.
    pub fn target(&self) -> &'t dyn ReplayTarget {
        self.target
    }

    /// The worker-thread fan-out the delegated batch paths use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether replays are currently served by the persistent live
    /// session (as opposed to the delegated batch paths).
    pub fn is_persistent(&self) -> bool {
        self.persistent && self.fork && self.workers <= 1 && self.target.boot_fork().is_some()
    }

    /// Cumulative [`ForkStats`] over every replay this server performed —
    /// baselines included, so a persistent server's `boots` stays at 1
    /// however many witnesses stream through it.
    pub fn lifetime_stats(&self) -> ForkStats {
        self.lifetime
    }

    /// Fault-free baselines replayed (persistent mode folds their boots
    /// into [`ForkServer::lifetime_stats`]; detached mode cold-boots them
    /// exactly like [`replay_session`], uncounted — the batch contract).
    pub fn baselines(&self) -> usize {
        self.baselines
    }

    /// Replays `witness` under the fault-free schedule — the sweep
    /// baseline. Persistent mode serves it from the live session (one
    /// restore, no boot); detached mode is byte-for-byte
    /// [`replay_session`].
    pub fn replay_baseline(&mut self, witness: &SessionWitness) -> SessionReplayResult {
        let _span = achilles_obs::span("fork:baseline", "fork");
        achilles_obs::global().add(
            achilles_obs::Class::Deterministic,
            "achilles_fork_baselines_total",
            &[],
            1,
        );
        self.baselines += 1;
        let fault_free = FaultSchedule::none();
        if self.is_persistent() {
            let (mut results, stats) = self.replay_persistent(witness, &[&fault_free]);
            self.lifetime.absorb(&stats);
            results.pop().expect("one result per schedule")
        } else {
            replay_session(self.target, witness, &fault_free)
        }
    }

    /// Replays `witness` under every schedule, returning per-schedule
    /// results in schedule order plus this call's [`ForkStats`]. Results
    /// are bit-identical across modes and worker counts.
    pub fn replay(
        &mut self,
        witness: &SessionWitness,
        schedules: &[&FaultSchedule],
    ) -> (Vec<SessionReplayResult>, ForkStats) {
        if schedules.is_empty() {
            return (Vec::new(), ForkStats::default());
        }
        let _span = achilles_obs::span("fork:replay", "fork");
        let (results, stats) = if !self.fork {
            let cold = parallel_map(self.workers.max(1), schedules, |_, schedule| {
                replay_session(self.target, witness, schedule)
            });
            (cold, ForkStats::cold(schedules.len()))
        } else if self.is_persistent() {
            self.replay_persistent(witness, schedules)
        } else {
            replay_session_forked(self.target, witness, schedules, self.workers)
        };
        self.lifetime.absorb(&stats);
        stats.record_metrics();
        (results, stats)
    }

    /// Ensures the live session exists and sits at boot state.
    fn at_boot(&mut self, stats: &mut ForkStats) {
        match &mut self.live {
            None => {
                let boot_span = achilles_obs::span("fork:boot", "fork");
                let session = self
                    .target
                    .boot_fork()
                    .expect("persistent mode requires boot_fork support");
                let boot = session.snapshot();
                drop(boot_span);
                stats.boots += 1;
                self.live = Some(LiveSession {
                    session,
                    boot,
                    dirty: false,
                });
            }
            Some(live) => {
                if live.dirty {
                    let _span = achilles_obs::span("fork:restore", "fork");
                    live.session.restore(&live.boot);
                    stats.snapshot_restores += 1;
                    live.dirty = false;
                }
            }
        }
    }

    /// The persistent execution path: the same trie the parallel fork
    /// path builds, walked sequentially over the one live session.
    fn replay_persistent(
        &mut self,
        witness: &SessionWitness,
        schedules: &[&FaultSchedule],
    ) -> (Vec<SessionReplayResult>, ForkStats) {
        let plans: Vec<SessionPlan> = schedules
            .iter()
            .map(|schedule| plan_session(self.target, witness, schedule))
            .collect();
        let mut trie = Trie::new();
        for (index, plan) in plans.iter().enumerate() {
            trie.insert(&plan.deliveries, index);
        }
        let mut stats = ForkStats {
            plans: plans.len(),
            boots: 0,
            snapshot_restores: 0,
            shared_prefix_depth_sum: 0,
            branches: trie
                .children
                .len()
                .max(usize::from(!trie.terminals.is_empty())),
        };
        let mut executed: Vec<Option<InjectionOutcome>> = vec![None; plans.len()];
        if !trie.terminals.is_empty() {
            let root = Trie {
                children: Vec::new(),
                terminals: trie.terminals.clone(),
                plans_through: trie.terminals.len(),
            };
            self.at_boot(&mut stats);
            let live = self.live.as_mut().expect("at_boot installs the session");
            live.dirty = true;
            let mut out = Vec::new();
            walk(
                &root,
                live.session.as_mut(),
                &mut InjectionOutcome::default(),
                0,
                0,
                &mut out,
                &mut stats,
            );
            for (index, outcome) in out {
                executed[index] = Some(outcome);
            }
        }
        for (delivery, child) in &trie.children {
            self.at_boot(&mut stats);
            let live = self.live.as_mut().expect("at_boot installs the session");
            live.dirty = true;
            let mut outcome = InjectionOutcome::default();
            live.session.deliver(delivery, &mut outcome);
            let shared = if child.plans_through >= 2 { 1 } else { 0 };
            let mut out = Vec::new();
            walk(
                child,
                live.session.as_mut(),
                &mut outcome,
                1,
                shared,
                &mut out,
                &mut stats,
            );
            for (index, outcome) in out {
                executed[index] = Some(outcome);
            }
        }
        let results = plans
            .into_iter()
            .zip(executed)
            .map(|(plan, outcome)| {
                let outcome = outcome.expect("every plan index reaches exactly one trie terminal");
                classify_session(self.target, witness, plan, outcome)
            })
            .collect();
        (results, stats)
    }
}
