//! Deterministic injection targets and the replay harness.
//!
//! A [`ReplayTarget`] boots a fresh concrete deployment per injection —
//! the FSP server over [`Network`]/`SimFs`, the PBFT cluster over
//! `SimClock`, the Paxos acceptor engine — fires a delivery plan of wire
//! datagrams at it, and reports what happened. Booting per injection is
//! what makes replay a pure function of the witness bytes: results are
//! bit-identical across worker counts, runs, and machines.
//!
//! [`replay`] is the harness around a target: it expands a [`FaultPlan`]
//! into the delivery plan (drop, duplicate, reorder with a benign
//! companion, single bit-flip via [`achilles_netsim::flip_bit`] — the
//! paper's S3 motivating fault), classifies the outcome against the
//! client-generability oracle, and folds everything into a
//! [`CrashSignature`] for triage.

use std::sync::Arc;

use achilles_netsim::{flip_bit, Addr, Network, SimFs};
use achilles_symvm::MessageLayout;

use crate::signature::CrashSignature;
use crate::witness::{fields_to_wire, wire_to_fields, ConcreteWitness};

/// Network faults applied to a witness injection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Drop the witness entirely (it never reaches the target).
    pub drop: bool,
    /// Deliver the witness twice (duplicate datagram).
    pub duplicate: bool,
    /// Deliver a benign, correct-client message before the witness
    /// (reordering/interleaving with legitimate traffic).
    pub reorder_with_benign: bool,
    /// Flip one bit (0 = LSB of byte 0) of the witness wire bytes before
    /// delivery.
    pub flip_bit: Option<usize>,
}

impl FaultPlan {
    /// The fault-free plan: deliver the witness once, verbatim.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }
}

/// What one injection run did, per delivery and in aggregate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InjectionOutcome {
    /// Per-delivery acceptance, aligned with the delivery plan.
    pub accepted_each: Vec<bool>,
    /// Structural effect notes (unsorted; [`CrashSignature::new`] sorts).
    pub effects: Vec<String>,
}

/// Classification of one witness replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReplayVerdict {
    /// The deployment accepted a message no correct client generates — the
    /// symbolic finding is concretely confirmed.
    ConfirmedTrojan,
    /// The deployment accepted the message, but a correct client could have
    /// produced it (benign; not a Trojan).
    AcceptedGenerable,
    /// The deployment rejected every delivered copy.
    Rejected,
    /// The fault plan dropped the witness before delivery.
    Dropped,
}

impl ReplayVerdict {
    /// Stable corpus-form name.
    pub fn as_str(self) -> &'static str {
        match self {
            ReplayVerdict::ConfirmedTrojan => "confirmed",
            ReplayVerdict::AcceptedGenerable => "benign-accept",
            ReplayVerdict::Rejected => "rejected",
            ReplayVerdict::Dropped => "dropped",
        }
    }

    /// Parses the [`ReplayVerdict::as_str`] form.
    pub fn parse(s: &str) -> Option<ReplayVerdict> {
        Some(match s {
            "confirmed" => ReplayVerdict::ConfirmedTrojan,
            "benign-accept" => ReplayVerdict::AcceptedGenerable,
            "rejected" => ReplayVerdict::Rejected,
            "dropped" => ReplayVerdict::Dropped,
            _ => return None,
        })
    }
}

/// One delivery of the plan: wire bytes plus whether this copy is the
/// witness (as opposed to a benign companion).
pub type Delivery = (Vec<u8>, bool);

/// A concrete deployment a witness can be fired at.
///
/// Implementations must be pure: `inject` boots fresh state every call and
/// its result is a function of the delivery plan alone.
pub trait ReplayTarget: Sync {
    /// Short system name used in signatures (`"fsp"`, `"pbft"`, `"paxos"`).
    fn name(&self) -> &'static str;

    /// The wire layout witnesses for this target use.
    fn layout(&self) -> Arc<MessageLayout>;

    /// Field values of a benign message a correct client would send
    /// (the ddmin baseline and the reorder-fault companion).
    fn benign_fields(&self) -> Vec<u64>;

    /// Whether a correct client can generate `fields` — the concrete
    /// client-side oracle.
    fn client_generable(&self, fields: &[u64]) -> bool;

    /// Boots a fresh deployment and fires the delivery plan at it.
    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome;
}

/// The full record of one witness replay.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// The injected witness (pre-fault provenance).
    pub witness: ConcreteWitness,
    /// Raw injection outcome.
    pub outcome: InjectionOutcome,
    /// Whether the client-side oracle can generate the *delivered* message
    /// (after any bit-flip fault; equals the witness itself when no fault
    /// rewrote it).
    pub generable: bool,
    /// Final classification.
    pub verdict: ReplayVerdict,
    /// Structural signature for dedup/triage.
    pub signature: CrashSignature,
}

/// Replays one witness against a target under a fault plan.
pub fn replay(
    target: &dyn ReplayTarget,
    witness: &ConcreteWitness,
    faults: &FaultPlan,
) -> ReplayResult {
    let mut wire = witness.wire.clone();
    let mut delivered_fields = witness.fields.clone();
    if let Some(bit) = faults.flip_bit {
        if bit < wire.len() * 8 {
            wire = flip_bit(&wire, bit);
            // The server sees the flipped message; the generability oracle
            // must judge the same bytes, or a benign message armed into a
            // Trojan in flight (the paper's S3 bit-flip) is misclassified.
            delivered_fields = wire_to_fields(&target.layout(), &wire)
                .expect("a flipped copy of an encodable message decodes");
        }
    }
    let mut deliveries: Vec<Delivery> = Vec::new();
    if faults.reorder_with_benign {
        let benign = target.benign_fields();
        let bw = fields_to_wire(&target.layout(), &benign)
            .expect("benign messages encode by construction");
        deliveries.push((bw, false));
    }
    if !faults.drop {
        deliveries.push((wire.clone(), true));
        if faults.duplicate {
            deliveries.push((wire, true));
        }
    }
    let outcome = target.inject(&deliveries);
    debug_assert_eq!(outcome.accepted_each.len(), deliveries.len());
    let witness_delivered = deliveries.iter().any(|(_, w)| *w);
    let witness_accepted = outcome
        .accepted_each
        .iter()
        .zip(&deliveries)
        .any(|(&a, (_, w))| a && *w);
    let generable = target.client_generable(&delivered_fields);
    let verdict = if !witness_delivered {
        ReplayVerdict::Dropped
    } else if witness_accepted && !generable {
        ReplayVerdict::ConfirmedTrojan
    } else if witness_accepted {
        ReplayVerdict::AcceptedGenerable
    } else {
        ReplayVerdict::Rejected
    };
    let signature = CrashSignature::new(target.name(), verdict, outcome.effects.clone());
    ReplayResult {
        witness: witness.clone(),
        outcome,
        generable,
        verdict,
        signature,
    }
}

// ---------------------------------------------------------------------------
// FSP
// ---------------------------------------------------------------------------

use achilles_fsp::{
    classify, client_can_generate, Command, FspMessage, FspServerConfig, FspServerRuntime,
    TrojanFamily,
};

/// The FSP deployment target: a stateful server endpoint over
/// [`Network`]/[`SimFs`].
#[derive(Clone, Debug)]
pub struct FspTarget {
    /// Server configuration (patch toggles must match the analyzed server).
    pub server: FspServerConfig,
    /// Whether client generability models glob expansion.
    pub glob_expansion: bool,
    /// Initial filesystem contents, `(path, data)` pairs.
    pub initial_files: Vec<(String, Vec<u8>)>,
}

impl FspTarget {
    /// A target mirroring an analysis configuration, with a small canned
    /// filesystem so commands have state to act on.
    pub fn new(server: FspServerConfig, glob_expansion: bool) -> FspTarget {
        FspTarget {
            server,
            glob_expansion,
            initial_files: vec![
                ("/f1".to_string(), b"one".to_vec()),
                ("/f2".to_string(), b"two".to_vec()),
            ],
        }
    }

    fn boot(&self) -> (Network, FspServerRuntime, Addr) {
        let mut fs = SimFs::new();
        for (path, data) in &self.initial_files {
            fs.write(path, data).expect("initial file writes succeed");
        }
        let mut net = Network::new();
        let server_addr = Addr::new("fspd");
        let client_addr = Addr::new("replay-cli");
        net.register(server_addr.clone());
        net.register(client_addr.clone());
        let server = FspServerRuntime::new(server_addr, fs, self.server.clone());
        (net, server, client_addr)
    }

    fn family_effect(fields: &[u64]) -> Option<String> {
        let report = achilles::TrojanReport {
            server_path_id: 0,
            constraints: vec![],
            witness_fields: fields.to_vec(),
            active_clients: 0,
            verified: false,
            found_at: std::time::Duration::ZERO,
            notes: vec![],
        };
        match classify(&report) {
            TrojanFamily::LengthMismatch {
                cmd,
                reported,
                actual,
            } => Some(format!(
                "family:len-mismatch:{}:{}>{}",
                cmd.utility_name(),
                reported,
                actual
            )),
            TrojanFamily::Wildcard { cmd } => {
                Some(format!("family:wildcard:{}", cmd.utility_name()))
            }
            TrojanFamily::Other => None,
        }
    }
}

impl ReplayTarget for FspTarget {
    fn name(&self) -> &'static str {
        "fsp"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        achilles_fsp::layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        let cmd = self
            .server
            .commands
            .first()
            .copied()
            .unwrap_or(Command::GetDir);
        FspMessage::request(cmd, b"f1").field_values()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        let msg = FspMessage::from_field_values(fields);
        client_can_generate(&msg, self.glob_expansion)
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let (mut net, mut server, client_addr) = self.boot();
        let before = server.fs().list("/").unwrap_or_default();
        let mut outcome = InjectionOutcome::default();
        for (wire, is_witness) in deliveries {
            let accepted_before = server.accepted;
            net.send(client_addr.clone(), server.addr().clone(), wire.clone());
            server.poll(&mut net);
            outcome
                .accepted_each
                .push(server.accepted > accepted_before);
            while let Some(reply) = net.recv(&client_addr) {
                let code = if reply.payload.first() == Some(&0) {
                    "ok"
                } else {
                    "err"
                };
                outcome.effects.push(format!("reply:{code}"));
            }
            if *is_witness {
                if let Ok(msg) = FspMessage::from_wire(wire) {
                    if let Some(family) = FspTarget::family_effect(&msg.field_values()) {
                        outcome.effects.push(family);
                    }
                }
            }
        }
        let after = server.fs().list("/").unwrap_or_default();
        for name in &after {
            if !before.contains(name) {
                outcome.effects.push(format!("fs:+{name}"));
            }
        }
        for name in &before {
            if !after.contains(name) {
                outcome.effects.push(format!("fs:-{name}"));
            }
        }
        outcome
    }
}

// ---------------------------------------------------------------------------
// PBFT
// ---------------------------------------------------------------------------

use achilles_pbft::{ClusterConfig, PbftCluster, PbftRequest, SubmitOutcome, N_REPLICAS};

/// The PBFT deployment target: the deterministic 4-replica cluster over
/// `SimClock` cost accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct PbftTarget {
    /// Cluster cost model and patch toggle.
    pub cluster: ClusterConfig,
}

impl PbftTarget {
    /// A target over the default cost model (vulnerable primary).
    pub fn new(cluster: ClusterConfig) -> PbftTarget {
        PbftTarget { cluster }
    }
}

impl ReplayTarget for PbftTarget {
    fn name(&self) -> &'static str {
        "pbft"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        achilles_pbft::layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        PbftRequest::correct(0, 1, *b"op__").field_values()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        let req = PbftRequest::from_field_values(fields);
        u64::from(req.tag) == achilles_pbft::REQUEST_TAG
            && u64::from(req.size) == achilles_pbft::MESSAGE_SIZE
            && usize::from(req.command_size) == achilles_pbft::COMMAND_LEN
            && req.extra <= 1
            && usize::from(req.replier) < N_REPLICAS
            && u64::from(req.cid) < achilles_pbft::N_CLIENTS
            && (0..N_REPLICAS).all(|r| req.mac_valid_for(r))
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut cluster = PbftCluster::new(self.cluster);
        let mut outcome = InjectionOutcome::default();
        for (wire, is_witness) in deliveries {
            let Ok(req) = PbftRequest::from_wire(wire) else {
                outcome.accepted_each.push(false);
                outcome.effects.push("malformed".to_string());
                continue;
            };
            let submit = cluster.submit(&req);
            let (accepted, note) = match submit {
                SubmitOutcome::Executed => (true, "outcome:fast-path"),
                SubmitOutcome::RecoveredThenExecuted => (true, "outcome:recovered"),
                SubmitOutcome::DroppedByPrimary => (false, "outcome:dropped-by-primary"),
            };
            outcome.accepted_each.push(accepted);
            outcome.effects.push(note.to_string());
            if *is_witness {
                let bad = (0..N_REPLICAS).filter(|&r| !req.mac_valid_for(r)).count();
                if bad > 0 {
                    outcome.effects.push(format!("bad_macs:{bad}"));
                }
            }
        }
        outcome
    }
}

// ---------------------------------------------------------------------------
// Paxos
// ---------------------------------------------------------------------------

use achilles_paxos::{Acceptor, Ballot, ProposerMode, Value, ACCEPT_KIND, MAX_PROPOSABLE_VALUE};

/// The Paxos deployment target: a single-decree acceptor mid-scenario.
#[derive(Clone, Copy, Debug)]
pub struct PaxosTarget {
    /// The acceptor's promised ballot when the witness arrives.
    pub promised: Ballot,
    /// The proposer scenario defining client generability.
    pub proposer: ProposerMode,
}

impl PaxosTarget {
    /// A target for the acceptor-promised-`promised` scenario with the
    /// given proposer mode.
    pub fn new(promised: Ballot, proposer: ProposerMode) -> PaxosTarget {
        PaxosTarget { promised, proposer }
    }
}

impl ReplayTarget for PaxosTarget {
    fn name(&self) -> &'static str {
        "paxos"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        achilles_paxos::accept_layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        match self.proposer {
            ProposerMode::Concrete(b, v) => vec![ACCEPT_KIND, u64::from(b), u64::from(v)],
            ProposerMode::Constructed(b) => vec![ACCEPT_KIND, u64::from(b), 0],
        }
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        let [kind, ballot, value] = fields else {
            return false;
        };
        if *kind != ACCEPT_KIND {
            return false;
        }
        match self.proposer {
            ProposerMode::Concrete(b, v) => *ballot == u64::from(b) && *value == u64::from(v),
            ProposerMode::Constructed(b) => {
                *ballot == u64::from(b) && *value <= MAX_PROPOSABLE_VALUE
            }
        }
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut acceptor = Acceptor::new();
        acceptor.on_prepare(self.promised);
        let mut outcome = InjectionOutcome::default();
        let layout = self.layout();
        for (wire, is_witness) in deliveries {
            let Ok(fields) = crate::witness::wire_to_fields(&layout, wire) else {
                outcome.accepted_each.push(false);
                outcome.effects.push("malformed".to_string());
                continue;
            };
            let (kind, ballot, value) = (fields[0], fields[1], fields[2]);
            if kind != ACCEPT_KIND {
                outcome.accepted_each.push(false);
                outcome.effects.push("ignored:not-accept".to_string());
                continue;
            }
            let accepted = acceptor.on_accept(ballot as Ballot, value as Value);
            outcome.accepted_each.push(accepted);
            if !accepted {
                outcome.effects.push("rejected:stale-ballot".to_string());
                continue;
            }
            outcome.effects.push("accepted".to_string());
            if *is_witness {
                if u64::from(ballot as Ballot) > u64::from(self.promised) {
                    outcome.effects.push("ballot:hijacks-round".to_string());
                }
                if value > MAX_PROPOSABLE_VALUE {
                    outcome.effects.push("value:out-of-domain".to_string());
                } else if !self.client_generable(&fields) {
                    outcome.effects.push("value:foreign".to_string());
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::from_report;
    use achilles::TrojanReport;
    use std::time::Duration;

    fn fsp_report(msg: &FspMessage) -> TrojanReport {
        TrojanReport {
            server_path_id: 0,
            constraints: vec![],
            witness_fields: msg.field_values(),
            active_clients: 0,
            verified: true,
            found_at: Duration::ZERO,
            notes: vec![],
        }
    }

    fn fsp_witness(msg: &FspMessage) -> ConcreteWitness {
        from_report(&achilles_fsp::layout(), 0, &fsp_report(msg)).unwrap()
    }

    #[test]
    fn fsp_length_mismatch_confirms() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let mut msg = FspMessage::request(Command::Stat, b"a");
        msg.bb_len = 3;
        msg.buf = [b'a', 0, 0x77, 0];
        let result = replay(&target, &fsp_witness(&msg), &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
        assert!(result
            .signature
            .effects
            .iter()
            .any(|e| e.starts_with("family:len-mismatch:fstat")));
    }

    #[test]
    fn fsp_benign_request_is_generable() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let msg = FspMessage::request(Command::DelFile, b"f1");
        let result = replay(&target, &fsp_witness(&msg), &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::AcceptedGenerable);
        assert!(result.signature.effects.contains(&"fs:-f1".to_string()));
    }

    #[test]
    fn fsp_patched_server_rejects_the_witness() {
        let config = FspServerConfig {
            check_actual_length: true,
            ..FspServerConfig::default()
        };
        let target = FspTarget::new(config, false);
        let mut msg = FspMessage::request(Command::Stat, b"a");
        msg.bb_len = 3;
        msg.buf = [b'a', 0, 0x77, 0];
        let result = replay(&target, &fsp_witness(&msg), &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::Rejected);
    }

    #[test]
    fn fault_plan_drop_and_duplicate() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let msg = FspMessage::request(Command::DelFile, b"f1");
        let dropped = replay(
            &target,
            &fsp_witness(&msg),
            &FaultPlan {
                drop: true,
                ..FaultPlan::none()
            },
        );
        assert_eq!(dropped.verdict, ReplayVerdict::Dropped);
        let dup = replay(
            &target,
            &fsp_witness(&msg),
            &FaultPlan {
                duplicate: true,
                ..FaultPlan::none()
            },
        );
        // First copy deletes /f1, the second copy fails on the missing file.
        assert_eq!(dup.outcome.accepted_each, vec![true, true]);
        assert!(dup.signature.effects.contains(&"reply:err".to_string()));
    }

    #[test]
    fn bit_flip_arms_the_wildcard() {
        // 'j' (0x6a) with bit 6 flipped is '*' (0x2a): a benign request for
        // file "j" becomes a wildcard Trojan in flight — the paper's
        // motivating single-bit corruption.
        let target = FspTarget::new(FspServerConfig::default(), true);
        let msg = FspMessage::request(Command::DelFile, b"j");
        let wire = msg.to_wire();
        // First payload byte of `buf` in the wire layout.
        let buf_byte = wire.len() - achilles_fsp::MAX_PATH;
        let result = replay(
            &target,
            &fsp_witness(&msg),
            &FaultPlan {
                flip_bit: Some(buf_byte * 8 + 6),
                ..FaultPlan::none()
            },
        );
        // The *flipped* message is what the server saw — and what the
        // generability oracle must judge: a glob-expanding client can never
        // send a literal '*', so the in-flight corruption armed a Trojan.
        assert!(result
            .signature
            .effects
            .iter()
            .any(|e| e.starts_with("family:wildcard")));
        assert!(!result.generable, "no glob client sends a literal '*'");
        assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
    }

    #[test]
    fn reorder_delivers_benign_companion_first() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let mut msg = FspMessage::request(Command::Stat, b"a");
        msg.bb_len = 2;
        msg.buf = [b'a', 0, 0, 0];
        let result = replay(
            &target,
            &fsp_witness(&msg),
            &FaultPlan {
                reorder_with_benign: true,
                ..FaultPlan::none()
            },
        );
        assert_eq!(result.outcome.accepted_each.len(), 2);
        assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
    }

    #[test]
    fn pbft_witness_triggers_recovery() {
        let target = PbftTarget::new(ClusterConfig::default());
        let req = PbftRequest::correct(0, 1, *b"op__").with_corrupted_mac(1);
        let witness = from_report(
            &achilles_pbft::layout(),
            0,
            &TrojanReport {
                server_path_id: 0,
                constraints: vec![],
                witness_fields: req.field_values(),
                active_clients: 0,
                verified: true,
                found_at: Duration::ZERO,
                notes: vec![],
            },
        )
        .unwrap();
        let result = replay(&target, &witness, &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
        assert!(result
            .signature
            .effects
            .contains(&"outcome:recovered".to_string()));
        assert!(result.signature.effects.contains(&"bad_macs:1".to_string()));
    }

    #[test]
    fn pbft_correct_request_is_benign() {
        let target = PbftTarget::new(ClusterConfig::default());
        let req = PbftRequest::correct(2, 9, *b"op__");
        let witness = from_report(
            &achilles_pbft::layout(),
            0,
            &TrojanReport {
                server_path_id: 0,
                constraints: vec![],
                witness_fields: req.field_values(),
                active_clients: 0,
                verified: true,
                found_at: Duration::ZERO,
                notes: vec![],
            },
        )
        .unwrap();
        let result = replay(&target, &witness, &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::AcceptedGenerable);
        assert!(result
            .signature
            .effects
            .contains(&"outcome:fast-path".to_string()));
    }

    #[test]
    fn paxos_foreign_value_confirms() {
        let target = PaxosTarget::new(5, ProposerMode::Concrete(5, 7));
        let witness = from_report(
            &achilles_paxos::accept_layout(),
            0,
            &TrojanReport {
                server_path_id: 0,
                constraints: vec![],
                witness_fields: vec![ACCEPT_KIND, 5, 99],
                active_clients: 0,
                verified: true,
                found_at: Duration::ZERO,
                notes: vec![],
            },
        )
        .unwrap();
        let result = replay(&target, &witness, &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
        assert!(result
            .signature
            .effects
            .contains(&"value:foreign".to_string()));
    }

    #[test]
    fn paxos_stale_ballot_rejected() {
        let target = PaxosTarget::new(10, ProposerMode::Concrete(10, 7));
        let witness = from_report(
            &achilles_paxos::accept_layout(),
            0,
            &TrojanReport {
                server_path_id: 0,
                constraints: vec![],
                witness_fields: vec![ACCEPT_KIND, 3, 7],
                active_clients: 0,
                verified: true,
                found_at: Duration::ZERO,
                notes: vec![],
            },
        )
        .unwrap();
        let result = replay(&target, &witness, &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::Rejected);
    }
}
