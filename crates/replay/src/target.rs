//! The replay harness around a [`ReplayTarget`].
//!
//! A [`ReplayTarget`] (defined in `achilles-core`, produced by
//! [`TargetSpec::replay_target`](achilles::TargetSpec::replay_target))
//! boots a fresh concrete deployment per injection and fires a delivery
//! plan of wire datagrams at it. Booting per injection is what makes
//! replay a pure function of the witness bytes: results are bit-identical
//! across worker counts, runs, and machines.
//!
//! [`replay`] is the harness around a target: it expands a [`FaultPlan`]
//! into the delivery plan (drop, duplicate, reorder with a benign
//! companion, single bit-flip via [`achilles_netsim::flip_bit`] — the
//! paper's S3 motivating fault), classifies the outcome against the
//! client-generability oracle, and folds everything into a
//! [`CrashSignature`] for triage.
//!
//! The concrete deployments themselves live with their protocols
//! (`achilles_fsp::FspTarget`, `achilles_pbft::PbftTarget`,
//! `achilles_paxos::PaxosTarget`, `achilles_twopc::TwopcTarget`, …): the
//! harness never names a protocol, which is what lets a new protocol crate
//! plug into validation without touching this crate.

pub use achilles::{Delivery, InjectionOutcome, ReplayTarget};
use achilles_netsim::flip_bit;

use crate::signature::CrashSignature;
use crate::witness::{fields_to_wire, wire_to_fields, ConcreteWitness, SessionWitness};

/// Network faults applied to a witness injection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Drop the witness entirely (it never reaches the target).
    pub drop: bool,
    /// Deliver the witness twice (duplicate datagram).
    pub duplicate: bool,
    /// Deliver a benign, correct-client message before the witness
    /// (reordering/interleaving with legitimate traffic).
    pub reorder_with_benign: bool,
    /// Flip one bit (0 = LSB of byte 0) of the witness wire bytes before
    /// delivery.
    pub flip_bit: Option<usize>,
}

impl FaultPlan {
    /// The fault-free plan: deliver the witness once, verbatim.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }
}

/// Network faults applied to *one delivery position* of a session replay.
///
/// The session analogue of [`FaultPlan`]: the same four fault kinds, but
/// addressable at any position of the message sequence through a
/// [`FaultSchedule`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeliveryFault {
    /// Drop this slot's witness message (the session never completes).
    pub drop: bool,
    /// Deliver this slot's witness message twice.
    pub duplicate: bool,
    /// Deliver a benign, correct-client message for this slot *before* the
    /// witness message (a benign interleaving between session slots).
    pub benign_before: bool,
    /// Flip one bit (0 = LSB of byte 0) of this slot's wire bytes before
    /// delivery.
    pub flip_bit: Option<usize>,
}

impl DeliveryFault {
    /// The fault-free delivery.
    pub fn none() -> DeliveryFault {
        DeliveryFault::default()
    }
}

/// A per-delivery fault schedule for a session replay: which fault (if
/// any) hits each slot of the message sequence.
///
/// Positions past the end of `slots` are fault-free, so
/// [`FaultSchedule::none`] is the fault-free schedule for *every* session
/// length.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Per-slot faults, aligned with the session's slot order.
    pub slots: Vec<DeliveryFault>,
}

impl FaultSchedule {
    /// The fault-free schedule: every slot delivered once, verbatim, in
    /// order.
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// A schedule applying `fault` at `slot` (every other position
    /// fault-free).
    pub fn at(slot: usize, fault: DeliveryFault) -> FaultSchedule {
        FaultSchedule::none().with(slot, fault)
    }

    /// Sets the fault at `slot`, extending the schedule as needed.
    pub fn with(mut self, slot: usize, fault: DeliveryFault) -> FaultSchedule {
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, DeliveryFault::none());
        }
        self.slots[slot] = fault;
        self
    }

    /// The fault at `slot` (fault-free past the end).
    pub fn fault_for(&self, slot: usize) -> DeliveryFault {
        self.slots.get(slot).copied().unwrap_or_default()
    }
}

/// Classification of one witness replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReplayVerdict {
    /// The deployment accepted a message no correct client generates — the
    /// symbolic finding is concretely confirmed.
    ConfirmedTrojan,
    /// The deployment accepted the message, but a correct client could have
    /// produced it (benign; not a Trojan).
    AcceptedGenerable,
    /// The deployment rejected every delivered copy.
    Rejected,
    /// The fault plan dropped the witness before delivery.
    Dropped,
}

impl ReplayVerdict {
    /// Stable corpus-form name.
    pub fn as_str(self) -> &'static str {
        match self {
            ReplayVerdict::ConfirmedTrojan => "confirmed",
            ReplayVerdict::AcceptedGenerable => "benign-accept",
            ReplayVerdict::Rejected => "rejected",
            ReplayVerdict::Dropped => "dropped",
        }
    }

    /// Parses the [`ReplayVerdict::as_str`] form.
    pub fn parse(s: &str) -> Option<ReplayVerdict> {
        Some(match s {
            "confirmed" => ReplayVerdict::ConfirmedTrojan,
            "benign-accept" => ReplayVerdict::AcceptedGenerable,
            "rejected" => ReplayVerdict::Rejected,
            "dropped" => ReplayVerdict::Dropped,
            _ => return None,
        })
    }
}

/// The full record of one witness replay.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// The injected witness (pre-fault provenance).
    pub witness: ConcreteWitness,
    /// Raw injection outcome.
    pub outcome: InjectionOutcome,
    /// The faults *actually applied*. Differs from the requested plan
    /// exactly when a fault could not be applied — an out-of-range
    /// `flip_bit` index is recorded here as `None`, so a schedule sweep
    /// never misclassifies an unflipped run as "survives bit-flip".
    pub applied: FaultPlan,
    /// Whether the client-side oracle can generate the *delivered* message
    /// (after any bit-flip fault; equals the witness itself when no fault
    /// rewrote it).
    pub generable: bool,
    /// Final classification.
    pub verdict: ReplayVerdict,
    /// Structural signature for dedup/triage.
    pub signature: CrashSignature,
}

/// Replays one witness against a target under a fault plan.
pub fn replay(
    target: &dyn ReplayTarget,
    witness: &ConcreteWitness,
    faults: &FaultPlan,
) -> ReplayResult {
    let mut applied = *faults;
    let mut wire = witness.wire.clone();
    let mut delivered_fields = witness.fields.clone();
    if faults.drop {
        // Nothing is delivered, so no fault touched a delivered message:
        // the duplicate never happened and the flip never reached a wire.
        applied.duplicate = false;
        applied.flip_bit = None;
    } else if let Some(bit) = faults.flip_bit {
        if bit < wire.len() * 8 {
            wire = flip_bit(&wire, bit);
            // The server sees the flipped message; the generability oracle
            // must judge the same bytes, or a benign message armed into a
            // Trojan in flight (the paper's S3 bit-flip) is misclassified.
            delivered_fields = wire_to_fields(&target.layout(), &wire)
                .expect("a flipped copy of an encodable message decodes");
        } else {
            // The index points past the wire: nothing was flipped, and the
            // result must say so instead of posing as a survived fault.
            applied.flip_bit = None;
        }
    }
    let mut deliveries: Vec<Delivery> = Vec::new();
    if faults.reorder_with_benign {
        let benign = target.benign_fields();
        let bw = fields_to_wire(&target.layout(), &benign)
            .expect("benign messages encode by construction");
        deliveries.push((bw, false));
    }
    if !faults.drop {
        deliveries.push((wire.clone(), true));
        if faults.duplicate {
            deliveries.push((wire, true));
        }
    }
    let outcome = target.inject(&deliveries);
    debug_assert_eq!(outcome.accepted_each.len(), deliveries.len());
    let witness_delivered = deliveries.iter().any(|(_, w)| *w);
    let witness_accepted = outcome
        .accepted_each
        .iter()
        .zip(&deliveries)
        .any(|(&a, (_, w))| a && *w);
    let generable = target.client_generable(&delivered_fields);
    let verdict = if !witness_delivered {
        ReplayVerdict::Dropped
    } else if witness_accepted && !generable {
        ReplayVerdict::ConfirmedTrojan
    } else if witness_accepted {
        ReplayVerdict::AcceptedGenerable
    } else {
        ReplayVerdict::Rejected
    };
    let signature = CrashSignature::new(target.name(), verdict, outcome.effects.clone());
    ReplayResult {
        witness: witness.clone(),
        outcome,
        applied,
        generable,
        verdict,
        signature,
    }
}

/// The full record of one session-witness replay.
#[derive(Clone, Debug)]
pub struct SessionReplayResult {
    /// The injected session witness (pre-fault provenance).
    pub witness: SessionWitness,
    /// Raw injection outcome over the whole delivery sequence.
    pub outcome: InjectionOutcome,
    /// The schedule *actually applied* (out-of-range `flip_bit` entries are
    /// recorded as `None`, like [`ReplayResult::applied`]).
    pub applied: FaultSchedule,
    /// Per-slot generability of the *delivered* (post-fault) message;
    /// `None` for slots the schedule dropped.
    pub generable_slots: Vec<Option<bool>>,
    /// Delivered slots whose message no correct client can produce — the
    /// concrete slot attribution.
    pub trojan_slots: Vec<usize>,
    /// Final classification.
    pub verdict: ReplayVerdict,
    /// Structural signature for dedup/triage (slot-aware).
    pub signature: CrashSignature,
}

/// The expanded delivery plan of one (witness, schedule) cell — the
/// post-fault-application sequence the target actually consumes.
///
/// Built by [`plan_session`], executed either by a cold
/// [`ReplayTarget::inject`] (via [`replay_session`]) or incrementally by
/// the fork-server ([`crate::fork`]), and folded into a
/// [`SessionReplayResult`] by [`classify_session`]. Because the plan is
/// computed *before* execution, two schedules that expand to the same
/// delivery prefix share it byte-for-byte — the property the fork-server's
/// delivery-prefix trie keys on.
#[derive(Clone, Debug)]
pub struct SessionPlan {
    /// The expanded deliveries, in slot order (benign interleavings before
    /// each slot's possibly bit-flipped witness copies; dropped slots
    /// contribute nothing).
    pub deliveries: Vec<Delivery>,
    /// Slot index of each delivery, aligned with `deliveries`.
    pub delivery_slot: Vec<usize>,
    /// The schedule *actually applied* (out-of-range `flip_bit` entries
    /// recorded as `None`).
    pub applied: FaultSchedule,
    /// Per-slot generability of the *delivered* (post-fault) message;
    /// `None` for slots the schedule dropped.
    pub generable_slots: Vec<Option<bool>>,
}

/// Expands a (witness, schedule) cell into its [`SessionPlan`].
///
/// # Panics
///
/// Panics if the witness's slot count differs from the target's
/// [`slot_layouts`](ReplayTarget::slot_layouts).
pub fn plan_session(
    target: &dyn ReplayTarget,
    witness: &SessionWitness,
    schedule: &FaultSchedule,
) -> SessionPlan {
    let layouts = target.slot_layouts();
    assert_eq!(
        layouts.len(),
        witness.slots(),
        "session witness arity matches the target's slot layouts"
    );
    let mut applied = FaultSchedule {
        slots: Vec::with_capacity(witness.slots()),
    };
    let mut deliveries: Vec<Delivery> = Vec::new();
    // Slot index of each delivery, aligned with `deliveries`.
    let mut delivery_slot: Vec<usize> = Vec::new();
    let mut generable_slots: Vec<Option<bool>> = Vec::with_capacity(witness.slots());
    for (slot, ((slot_wire, slot_fields), layout)) in witness
        .wire
        .iter()
        .zip(&witness.fields)
        .zip(&layouts)
        .enumerate()
    {
        let fault = schedule.fault_for(slot);
        let mut applied_fault = fault;
        let mut wire = slot_wire.clone();
        let mut delivered_fields = slot_fields.clone();
        if fault.drop {
            // The slot's message never reaches the target: the duplicate
            // and the bit-flip were not applied to anything delivered.
            applied_fault.duplicate = false;
            applied_fault.flip_bit = None;
        } else if let Some(bit) = fault.flip_bit {
            if bit < wire.len() * 8 {
                wire = flip_bit(&wire, bit);
                delivered_fields = wire_to_fields(layout, &wire)
                    .expect("a flipped copy of an encodable message decodes");
            } else {
                applied_fault.flip_bit = None;
            }
        }
        if fault.benign_before {
            let benign = target.slot_benign_fields(slot);
            let bw =
                fields_to_wire(layout, &benign).expect("benign messages encode by construction");
            deliveries.push((bw, false));
            delivery_slot.push(slot);
        }
        if fault.drop {
            generable_slots.push(None);
        } else {
            deliveries.push((wire.clone(), true));
            delivery_slot.push(slot);
            if fault.duplicate {
                deliveries.push((wire, true));
                delivery_slot.push(slot);
            }
            generable_slots.push(Some(target.slot_generable(slot, &delivered_fields)));
        }
        applied.slots.push(applied_fault);
    }
    SessionPlan {
        deliveries,
        delivery_slot,
        applied,
        generable_slots,
    }
}

/// Folds an executed [`SessionPlan`]'s [`InjectionOutcome`] into the full
/// [`SessionReplayResult`] — classification is a pure function of (plan,
/// outcome), so cold-boot and fork-server execution classify identically.
pub fn classify_session(
    target: &dyn ReplayTarget,
    witness: &SessionWitness,
    plan: SessionPlan,
    outcome: InjectionOutcome,
) -> SessionReplayResult {
    debug_assert_eq!(outcome.accepted_each.len(), plan.deliveries.len());
    let any_dropped = plan.generable_slots.iter().any(Option::is_none);
    // A slot is accepted when at least one of its witness copies was.
    let session_accepted = (0..witness.slots()).all(|slot| {
        plan.generable_slots[slot].is_none()
            || outcome
                .accepted_each
                .iter()
                .zip(plan.deliveries.iter().zip(&plan.delivery_slot))
                .any(|(&a, ((_, w), &s))| a && *w && s == slot)
    });
    let trojan_slots: Vec<usize> = plan
        .generable_slots
        .iter()
        .enumerate()
        .filter(|(_, g)| **g == Some(false))
        .map(|(s, _)| s)
        .collect();
    let verdict = if any_dropped {
        ReplayVerdict::Dropped
    } else if session_accepted && !trojan_slots.is_empty() {
        ReplayVerdict::ConfirmedTrojan
    } else if session_accepted {
        ReplayVerdict::AcceptedGenerable
    } else {
        ReplayVerdict::Rejected
    };
    let mut effects = outcome.effects.clone();
    effects.extend(trojan_slots.iter().map(|s| format!("trojan-slot:{s}")));
    let signature = CrashSignature::for_session(target.name(), verdict, witness.slots(), effects);
    SessionReplayResult {
        witness: witness.clone(),
        outcome,
        applied: plan.applied,
        generable_slots: plan.generable_slots,
        trojan_slots,
        verdict,
        signature,
    }
}

/// Replays one session witness against a target under a per-delivery fault
/// schedule.
///
/// The delivery plan is the session's slots in order, expanded by the
/// schedule: benign interleavings before a slot, duplicated or dropped
/// slot messages, and single bit-flips at any position. The whole plan
/// goes through the same [`ReplayTarget::inject`] delivery vector as
/// single-message replay; the deployment consumes it statefully.
///
/// Classification: a session whose schedule dropped any witness message is
/// [`ReplayVerdict::Dropped`]; otherwise the session must be *accepted in
/// every slot* (each slot's witness message accepted at least once) to
/// count as accepted, and it confirms as a Trojan when at least one
/// delivered slot's message is un-generable by that slot's correct
/// clients — `⋁ₛ ¬genₛ(mₛ)`.
///
/// # Panics
///
/// Panics if the witness's slot count differs from the target's
/// [`slot_layouts`](ReplayTarget::slot_layouts).
pub fn replay_session(
    target: &dyn ReplayTarget,
    witness: &SessionWitness,
    schedule: &FaultSchedule,
) -> SessionReplayResult {
    let plan = plan_session(target, witness, schedule);
    let outcome = target.inject(&plan.deliveries);
    classify_session(target, witness, plan, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::from_report;
    use achilles::TrojanReport;
    use achilles_fsp::{Command, FspMessage, FspServerConfig, FspTarget};
    use achilles_paxos::{PaxosTarget, ProposerMode, ACCEPT_KIND};
    use achilles_pbft::{ClusterConfig, PbftRequest, PbftTarget};
    use std::time::Duration;

    fn fsp_report(msg: &FspMessage) -> TrojanReport {
        TrojanReport {
            server_path_id: 0,
            constraints: vec![],
            witness_fields: msg.field_values(),
            active_clients: 0,
            verified: true,
            found_at: Duration::ZERO,
            notes: vec![],
        }
    }

    fn fsp_witness(msg: &FspMessage) -> ConcreteWitness {
        from_report(&achilles_fsp::layout(), 0, &fsp_report(msg)).unwrap()
    }

    #[test]
    fn fsp_length_mismatch_confirms() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let mut msg = FspMessage::request(Command::Stat, b"a");
        msg.bb_len = 3;
        msg.buf = [b'a', 0, 0x77, 0];
        let result = replay(&target, &fsp_witness(&msg), &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
        assert!(result
            .signature
            .effects
            .iter()
            .any(|e| e.starts_with("family:len-mismatch:fstat")));
    }

    #[test]
    fn fsp_benign_request_is_generable() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let msg = FspMessage::request(Command::DelFile, b"f1");
        let result = replay(&target, &fsp_witness(&msg), &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::AcceptedGenerable);
        assert!(result.signature.effects.contains(&"fs:-f1".to_string()));
    }

    #[test]
    fn fsp_patched_server_rejects_the_witness() {
        let config = FspServerConfig {
            check_actual_length: true,
            ..FspServerConfig::default()
        };
        let target = FspTarget::new(config, false);
        let mut msg = FspMessage::request(Command::Stat, b"a");
        msg.bb_len = 3;
        msg.buf = [b'a', 0, 0x77, 0];
        let result = replay(&target, &fsp_witness(&msg), &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::Rejected);
    }

    #[test]
    fn fault_plan_drop_and_duplicate() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let msg = FspMessage::request(Command::DelFile, b"f1");
        let dropped = replay(
            &target,
            &fsp_witness(&msg),
            &FaultPlan {
                drop: true,
                ..FaultPlan::none()
            },
        );
        assert_eq!(dropped.verdict, ReplayVerdict::Dropped);
        let dup = replay(
            &target,
            &fsp_witness(&msg),
            &FaultPlan {
                duplicate: true,
                ..FaultPlan::none()
            },
        );
        // First copy deletes /f1, the second copy fails on the missing file.
        assert_eq!(dup.outcome.accepted_each, vec![true, true]);
        assert!(dup.signature.effects.contains(&"reply:err".to_string()));
    }

    #[test]
    fn bit_flip_arms_the_wildcard() {
        // 'j' (0x6a) with bit 6 flipped is '*' (0x2a): a benign request for
        // file "j" becomes a wildcard Trojan in flight — the paper's
        // motivating single-bit corruption.
        let target = FspTarget::new(FspServerConfig::default(), true);
        let msg = FspMessage::request(Command::DelFile, b"j");
        let wire = msg.to_wire();
        // First payload byte of `buf` in the wire layout.
        let buf_byte = wire.len() - achilles_fsp::MAX_PATH;
        let result = replay(
            &target,
            &fsp_witness(&msg),
            &FaultPlan {
                flip_bit: Some(buf_byte * 8 + 6),
                ..FaultPlan::none()
            },
        );
        // The *flipped* message is what the server saw — and what the
        // generability oracle must judge: a glob-expanding client can never
        // send a literal '*', so the in-flight corruption armed a Trojan.
        assert!(result
            .signature
            .effects
            .iter()
            .any(|e| e.starts_with("family:wildcard")));
        assert!(!result.generable, "no glob client sends a literal '*'");
        assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
    }

    #[test]
    fn out_of_range_flip_bit_is_recorded_as_not_applied() {
        // Regression: an out-of-range `flip_bit` index used to be silently
        // skipped while the result still looked like a faulted replay, so
        // a schedule sweep misclassified those runs as "survives bit-flip".
        let target = FspTarget::new(FspServerConfig::default(), false);
        let msg = FspMessage::request(Command::DelFile, b"f1");
        let wire_bits = msg.to_wire().len() * 8;
        let requested = FaultPlan {
            flip_bit: Some(wire_bits + 3),
            ..FaultPlan::none()
        };
        let result = replay(&target, &fsp_witness(&msg), &requested);
        assert_eq!(
            result.applied.flip_bit, None,
            "the fault never touched the wire and must be reported as such"
        );
        assert_eq!(result.applied, FaultPlan::none());
        // The unflipped message is the benign original.
        assert_eq!(result.verdict, ReplayVerdict::AcceptedGenerable);

        // In-range flips still record as applied.
        let in_range = replay(
            &target,
            &fsp_witness(&msg),
            &FaultPlan {
                flip_bit: Some(6),
                ..FaultPlan::none()
            },
        );
        assert_eq!(in_range.applied.flip_bit, Some(6));

        // Drop masks the other witness faults: nothing was delivered, so
        // neither the duplicate nor the flip counts as applied.
        let masked = replay(
            &target,
            &fsp_witness(&msg),
            &FaultPlan {
                drop: true,
                duplicate: true,
                flip_bit: Some(6),
                ..FaultPlan::none()
            },
        );
        assert_eq!(masked.verdict, ReplayVerdict::Dropped);
        assert!(masked.applied.drop);
        assert!(!masked.applied.duplicate);
        assert_eq!(masked.applied.flip_bit, None);
    }

    #[test]
    fn reorder_delivers_benign_companion_first() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        let mut msg = FspMessage::request(Command::Stat, b"a");
        msg.bb_len = 2;
        msg.buf = [b'a', 0, 0, 0];
        let result = replay(
            &target,
            &fsp_witness(&msg),
            &FaultPlan {
                reorder_with_benign: true,
                ..FaultPlan::none()
            },
        );
        assert_eq!(result.outcome.accepted_each.len(), 2);
        assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
    }

    #[test]
    fn pbft_witness_triggers_recovery() {
        let target = PbftTarget::new(ClusterConfig::default());
        let req = PbftRequest::correct(0, 1, *b"op__").with_corrupted_mac(1);
        let witness = from_report(
            &achilles_pbft::layout(),
            0,
            &TrojanReport {
                server_path_id: 0,
                constraints: vec![],
                witness_fields: req.field_values(),
                active_clients: 0,
                verified: true,
                found_at: Duration::ZERO,
                notes: vec![],
            },
        )
        .unwrap();
        let result = replay(&target, &witness, &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
        assert!(result
            .signature
            .effects
            .contains(&"outcome:recovered".to_string()));
        assert!(result.signature.effects.contains(&"bad_macs:1".to_string()));
    }

    #[test]
    fn pbft_correct_request_is_benign() {
        // False-positive guard: a correct client request must classify as
        // AcceptedGenerable, never as a confirmed Trojan.
        let target = PbftTarget::new(ClusterConfig::default());
        let req = PbftRequest::correct(2, 9, *b"op__");
        let witness = from_report(
            &achilles_pbft::layout(),
            0,
            &TrojanReport {
                server_path_id: 0,
                constraints: vec![],
                witness_fields: req.field_values(),
                active_clients: 0,
                verified: true,
                found_at: Duration::ZERO,
                notes: vec![],
            },
        )
        .unwrap();
        let result = replay(&target, &witness, &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::AcceptedGenerable);
        assert!(result
            .signature
            .effects
            .contains(&"outcome:fast-path".to_string()));
    }

    #[test]
    fn paxos_foreign_value_confirms() {
        let target = PaxosTarget::new(5, ProposerMode::Concrete(5, 7));
        let witness = from_report(
            &achilles_paxos::accept_layout(),
            0,
            &TrojanReport {
                server_path_id: 0,
                constraints: vec![],
                witness_fields: vec![ACCEPT_KIND, 5, 99],
                active_clients: 0,
                verified: true,
                found_at: Duration::ZERO,
                notes: vec![],
            },
        )
        .unwrap();
        let result = replay(&target, &witness, &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
        assert!(result
            .signature
            .effects
            .contains(&"value:foreign".to_string()));
    }

    #[test]
    fn paxos_stale_ballot_rejected() {
        let target = PaxosTarget::new(10, ProposerMode::Concrete(10, 7));
        let witness = from_report(
            &achilles_paxos::accept_layout(),
            0,
            &TrojanReport {
                server_path_id: 0,
                constraints: vec![],
                witness_fields: vec![ACCEPT_KIND, 3, 7],
                active_clients: 0,
                verified: true,
                found_at: Duration::ZERO,
                notes: vec![],
            },
        )
        .unwrap();
        let result = replay(&target, &witness, &FaultPlan::none());
        assert_eq!(result.verdict, ReplayVerdict::Rejected);
    }
}
