//! ddmin-style witness minimization.
//!
//! A solver witness carries whatever values the model search happened to
//! pick: don't-care bytes, arbitrary padding, incidental field choices.
//! The minimizer shrinks a confirmed witness to the smallest set of fields
//! that still reproduces its [`CrashSignature`], by resetting candidate
//! fields to a benign baseline message and replaying — Zeller's delta
//! debugging over the *field-difference set* between witness and baseline.
//!
//! The output names the **essential fields**: the ones a developer has to
//! look at to understand the bug (for the FSP length-mismatch family,
//! `bb_len` and the NUL position; for PBFT, the corrupted authenticator;
//! everything else resets to benign values).
//!
//! Divergence Trojans get their own oracle: [`minimize_session_divergence`]
//! preserves the *split structure* (same nodes, same delivery index, via
//! [`DivergenceSignature::same_split`]) instead of the exact signature,
//! because resetting an incidental field changes the concrete state and so
//! every root digest — exact-signature ddmin could never shed anything.

use achilles::DivergenceSignature;

use crate::signature::CrashSignature;
use crate::target::{replay, replay_session, FaultPlan, FaultSchedule, ReplayTarget};
use crate::witness::{fields_to_wire, ConcreteWitness, SessionWitness};

/// A minimized witness plus its provenance.
#[derive(Clone, Debug)]
pub struct MinimizedWitness {
    /// The reduced witness (essential fields keep their witness values,
    /// every other field is the benign baseline).
    pub witness: ConcreteWitness,
    /// Indices of fields that kept their witness value.
    pub essential: Vec<usize>,
    /// Indices that differed from the baseline before minimization.
    pub original_delta: Vec<usize>,
    /// The preserved signature.
    pub signature: CrashSignature,
    /// Replays spent minimizing.
    pub replays: usize,
}

impl MinimizedWitness {
    /// Whether minimization strictly shrank the field-difference set.
    pub fn strictly_shrunk(&self) -> bool {
        self.essential.len() < self.original_delta.len()
    }
}

/// Builds the candidate witness that keeps `kept` fields at their witness
/// values and resets everything else to the baseline.
fn project(
    target: &dyn ReplayTarget,
    witness: &ConcreteWitness,
    baseline: &[u64],
    kept: &[usize],
) -> ConcreteWitness {
    let mut fields = baseline.to_vec();
    for &i in kept {
        fields[i] = witness.fields[i];
    }
    let wire = fields_to_wire(&target.layout(), &fields).expect("projected witness encodes");
    ConcreteWitness {
        index: witness.index,
        server_path_id: witness.server_path_id,
        fields,
        wire,
    }
}

/// Replays the projection of `kept` and checks signature preservation.
fn preserves(
    target: &dyn ReplayTarget,
    witness: &ConcreteWitness,
    baseline: &[u64],
    kept: &[usize],
    faults: &FaultPlan,
    want: &CrashSignature,
    replays: &mut usize,
) -> bool {
    *replays += 1;
    let candidate = project(target, witness, baseline, kept);
    replay(target, &candidate, faults).signature == *want
}

/// The ddmin complement loop, generic over the delta element: shrinks
/// `original` to a (locally) minimal subset for which `keep_ok` still
/// holds, in `O(|original|²)` probes worst-case — Zeller's delta debugging
/// with increasing granularity. Shared by the single-message minimizer
/// (elements are field indices) and the session minimizer (elements are
/// `(slot, field)` pairs).
fn ddmin<T: Clone>(original: &[T], mut keep_ok: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut delta = original.to_vec();
    let mut granularity = 2usize;
    while delta.len() >= 2 {
        let chunk = delta.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0usize;
        while start < delta.len() {
            let end = (start + chunk).min(delta.len());
            // Try the complement: drop delta[start..end], keep the rest.
            let complement: Vec<T> = delta[..start]
                .iter()
                .chain(&delta[end..])
                .cloned()
                .collect();
            if keep_ok(&complement) {
                delta = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= delta.len() {
                break;
            }
            granularity = (granularity * 2).min(delta.len());
        }
    }
    delta
}

/// Minimizes a witness to the smallest field set preserving `signature`.
///
/// `signature` must be the signature of replaying `witness` under `faults`
/// (callers normally pass a [`crate::target::ReplayResult::signature`]);
/// the returned witness is guaranteed to reproduce it. Runs in
/// `O(delta² )` replays worst-case, like classic ddmin.
pub fn minimize(
    target: &dyn ReplayTarget,
    witness: &ConcreteWitness,
    faults: &FaultPlan,
    signature: &CrashSignature,
) -> MinimizedWitness {
    let baseline = target.benign_fields();
    assert_eq!(
        baseline.len(),
        witness.fields.len(),
        "baseline arity matches the layout"
    );
    let original_delta: Vec<usize> = (0..witness.fields.len())
        .filter(|&i| witness.fields[i] != baseline[i])
        .collect();
    let mut replays = 0usize;

    let delta = ddmin(&original_delta, |kept| {
        preserves(
            target,
            witness,
            &baseline,
            kept,
            faults,
            signature,
            &mut replays,
        )
    });

    let minimized = project(target, witness, &baseline, &delta);
    MinimizedWitness {
        witness: minimized,
        essential: delta,
        original_delta,
        signature: signature.clone(),
        replays,
    }
}

/// A minimized session witness plus its provenance.
#[derive(Clone, Debug)]
pub struct MinimizedSessionWitness {
    /// The reduced session (essential fields keep their witness values,
    /// every other field is that slot's benign baseline).
    pub witness: SessionWitness,
    /// `(slot, field)` pairs that kept their witness value.
    pub essential: Vec<(usize, usize)>,
    /// `(slot, field)` pairs that differed from the baseline before
    /// minimization.
    pub original_delta: Vec<(usize, usize)>,
    /// The preserved signature.
    pub signature: CrashSignature,
    /// Replays spent minimizing.
    pub replays: usize,
}

impl MinimizedSessionWitness {
    /// Whether minimization strictly shrank the difference set.
    pub fn strictly_shrunk(&self) -> bool {
        self.essential.len() < self.original_delta.len()
    }
}

/// Builds the session candidate that keeps `kept` `(slot, field)` pairs at
/// their witness values and resets everything else to the per-slot benign
/// baselines.
fn project_session(
    target: &dyn ReplayTarget,
    witness: &SessionWitness,
    baselines: &[Vec<u64>],
    kept: &[(usize, usize)],
) -> SessionWitness {
    let mut fields: Vec<Vec<u64>> = baselines.to_vec();
    for &(slot, field) in kept {
        fields[slot][field] = witness.fields[slot][field];
    }
    let layouts = target.slot_layouts();
    let wire = fields
        .iter()
        .zip(&layouts)
        .map(|(f, l)| fields_to_wire(l, f).expect("projected session witness encodes"))
        .collect();
    SessionWitness {
        index: witness.index,
        server_path_id: witness.server_path_id,
        fields,
        wire,
    }
}

/// Minimizes a session witness to the smallest `(slot, field)` set
/// preserving `signature` — ddmin over the whole session's field-difference
/// set against the per-slot benign baselines, so the essential set names
/// both *which message of the sequence* matters and *which fields in it*.
///
/// `signature` must be the signature of replaying `witness` under
/// `schedule` (normally a
/// [`SessionReplayResult::signature`](crate::target::SessionReplayResult)).
pub fn minimize_session(
    target: &dyn ReplayTarget,
    witness: &SessionWitness,
    schedule: &FaultSchedule,
    signature: &CrashSignature,
) -> MinimizedSessionWitness {
    let baselines: Vec<Vec<u64>> = (0..witness.slots())
        .map(|s| target.slot_benign_fields(s))
        .collect();
    for (slot, (b, w)) in baselines.iter().zip(&witness.fields).enumerate() {
        assert_eq!(b.len(), w.len(), "slot {slot} baseline arity matches");
    }
    let original_delta: Vec<(usize, usize)> = witness
        .fields
        .iter()
        .enumerate()
        .flat_map(|(slot, fields)| {
            let baseline = &baselines[slot];
            fields
                .iter()
                .enumerate()
                .filter(move |&(i, &v)| v != baseline[i])
                .map(move |(i, _)| (slot, i))
        })
        .collect();
    let mut replays = 0usize;

    let delta = ddmin(&original_delta, |kept| {
        replays += 1;
        let candidate = project_session(target, witness, &baselines, kept);
        replay_session(target, &candidate, schedule).signature == *signature
    });

    let minimized = project_session(target, witness, &baselines, &delta);
    MinimizedSessionWitness {
        witness: minimized,
        essential: delta,
        original_delta,
        signature: signature.clone(),
        replays,
    }
}

/// Minimizes a session witness to the smallest `(slot, field)` set that
/// still *splits the same nodes at the same delivery index* — ddmin with
/// [`DivergenceSignature::same_split`] as the preservation oracle instead
/// of exact signature equality.
///
/// Exact-signature ddmin is too strict for divergence Trojans: resetting
/// an incidental field (say, the written value) changes the concrete state
/// and with it every root *digest*, so no field could ever be shed even
/// though the split structure — which replicas disagree, and when — is the
/// bug. `divergence` must be the parsed divergence of replaying `witness`
/// under `schedule` (normally
/// [`CrashSignature::divergence`](crate::CrashSignature::divergence) of a
/// [`SessionReplayResult`](crate::target::SessionReplayResult) signature);
/// the returned witness is guaranteed to reproduce that split, and the
/// recorded `signature` is the minimized witness's own (its digests may
/// legitimately differ from the original's).
pub fn minimize_session_divergence(
    target: &dyn ReplayTarget,
    witness: &SessionWitness,
    schedule: &FaultSchedule,
    divergence: &DivergenceSignature,
) -> MinimizedSessionWitness {
    let baselines: Vec<Vec<u64>> = (0..witness.slots())
        .map(|s| target.slot_benign_fields(s))
        .collect();
    for (slot, (b, w)) in baselines.iter().zip(&witness.fields).enumerate() {
        assert_eq!(b.len(), w.len(), "slot {slot} baseline arity matches");
    }
    let original_delta: Vec<(usize, usize)> = witness
        .fields
        .iter()
        .enumerate()
        .flat_map(|(slot, fields)| {
            let baseline = &baselines[slot];
            fields
                .iter()
                .enumerate()
                .filter(move |&(i, &v)| v != baseline[i])
                .map(move |(i, _)| (slot, i))
        })
        .collect();
    let mut replays = 0usize;

    let delta = ddmin(&original_delta, |kept| {
        replays += 1;
        let candidate = project_session(target, witness, &baselines, kept);
        replay_session(target, &candidate, schedule)
            .signature
            .divergence()
            .is_some_and(|d| d.same_split(divergence))
    });

    let minimized = project_session(target, witness, &baselines, &delta);
    replays += 1;
    let signature = replay_session(target, &minimized, schedule).signature;
    MinimizedSessionWitness {
        witness: minimized,
        essential: delta,
        original_delta,
        signature,
        replays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::ReplayVerdict;
    use achilles_fsp::{Command, FspMessage, FspServerConfig, FspTarget};

    fn witness_of(msg: &FspMessage) -> ConcreteWitness {
        let wire = msg.to_wire();
        ConcreteWitness {
            index: 0,
            server_path_id: 0,
            fields: msg.field_values(),
            wire,
        }
    }

    #[test]
    fn wildcard_witness_shrinks_to_the_star() {
        // A wildcard witness with three bytes of incidental junk: only the
        // command, the length, and the '*' byte matter for the signature.
        let target = FspTarget::new(FspServerConfig::default(), true);
        // The path bytes around the star are incidental; the star is the bug.
        let msg = FspMessage::request(Command::DelFile, b"x*yz");
        let witness = witness_of(&msg);
        let full = replay(&target, &witness, &FaultPlan::none());
        assert_eq!(full.verdict, ReplayVerdict::ConfirmedTrojan);
        let min = minimize(&target, &witness, &FaultPlan::none(), &full.signature);
        assert!(min.strictly_shrunk(), "essential {:?}", min.essential);
        // The star byte must survive: field buf[1] = index BUF_BASE + 1.
        assert!(min.essential.contains(&(achilles_fsp::BUF_BASE + 1)));
        // Re-replay of the minimized witness reproduces the signature.
        let again = replay(&target, &min.witness, &FaultPlan::none());
        assert_eq!(again.signature, min.signature);
    }

    #[test]
    fn already_minimal_witness_is_stable() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        // The benign baseline itself: delta only in fields that the replay
        // signature depends on entirely.
        let msg = FspMessage::request(Command::GetDir, b"f1");
        let witness = witness_of(&msg);
        let full = replay(&target, &witness, &FaultPlan::none());
        let min = minimize(&target, &witness, &FaultPlan::none(), &full.signature);
        assert!(min.essential.is_empty(), "witness equals the baseline");
        assert_eq!(min.replays, 0, "no delta, no replays");
    }
}
