//! ddmin-style witness minimization.
//!
//! A solver witness carries whatever values the model search happened to
//! pick: don't-care bytes, arbitrary padding, incidental field choices.
//! The minimizer shrinks a confirmed witness to the smallest set of fields
//! that still reproduces its [`CrashSignature`], by resetting candidate
//! fields to a benign baseline message and replaying — Zeller's delta
//! debugging over the *field-difference set* between witness and baseline.
//!
//! The output names the **essential fields**: the ones a developer has to
//! look at to understand the bug (for the FSP length-mismatch family,
//! `bb_len` and the NUL position; for PBFT, the corrupted authenticator;
//! everything else resets to benign values).

use crate::signature::CrashSignature;
use crate::target::{replay, FaultPlan, ReplayTarget};
use crate::witness::{fields_to_wire, ConcreteWitness};

/// A minimized witness plus its provenance.
#[derive(Clone, Debug)]
pub struct MinimizedWitness {
    /// The reduced witness (essential fields keep their witness values,
    /// every other field is the benign baseline).
    pub witness: ConcreteWitness,
    /// Indices of fields that kept their witness value.
    pub essential: Vec<usize>,
    /// Indices that differed from the baseline before minimization.
    pub original_delta: Vec<usize>,
    /// The preserved signature.
    pub signature: CrashSignature,
    /// Replays spent minimizing.
    pub replays: usize,
}

impl MinimizedWitness {
    /// Whether minimization strictly shrank the field-difference set.
    pub fn strictly_shrunk(&self) -> bool {
        self.essential.len() < self.original_delta.len()
    }
}

/// Builds the candidate witness that keeps `kept` fields at their witness
/// values and resets everything else to the baseline.
fn project(
    target: &dyn ReplayTarget,
    witness: &ConcreteWitness,
    baseline: &[u64],
    kept: &[usize],
) -> ConcreteWitness {
    let mut fields = baseline.to_vec();
    for &i in kept {
        fields[i] = witness.fields[i];
    }
    let wire = fields_to_wire(&target.layout(), &fields).expect("projected witness encodes");
    ConcreteWitness {
        index: witness.index,
        server_path_id: witness.server_path_id,
        fields,
        wire,
    }
}

/// Replays the projection of `kept` and checks signature preservation.
fn preserves(
    target: &dyn ReplayTarget,
    witness: &ConcreteWitness,
    baseline: &[u64],
    kept: &[usize],
    faults: &FaultPlan,
    want: &CrashSignature,
    replays: &mut usize,
) -> bool {
    *replays += 1;
    let candidate = project(target, witness, baseline, kept);
    replay(target, &candidate, faults).signature == *want
}

/// Minimizes a witness to the smallest field set preserving `signature`.
///
/// `signature` must be the signature of replaying `witness` under `faults`
/// (callers normally pass a [`crate::target::ReplayResult::signature`]);
/// the returned witness is guaranteed to reproduce it. Runs in
/// `O(delta² )` replays worst-case, like classic ddmin.
pub fn minimize(
    target: &dyn ReplayTarget,
    witness: &ConcreteWitness,
    faults: &FaultPlan,
    signature: &CrashSignature,
) -> MinimizedWitness {
    let baseline = target.benign_fields();
    assert_eq!(
        baseline.len(),
        witness.fields.len(),
        "baseline arity matches the layout"
    );
    let original_delta: Vec<usize> = (0..witness.fields.len())
        .filter(|&i| witness.fields[i] != baseline[i])
        .collect();
    let mut replays = 0usize;

    let mut delta = original_delta.clone();
    let mut granularity = 2usize;
    while delta.len() >= 2 {
        let chunk = delta.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0usize;
        while start < delta.len() {
            let end = (start + chunk).min(delta.len());
            // Try the complement: drop delta[start..end], keep the rest.
            let complement: Vec<usize> = delta[..start]
                .iter()
                .chain(&delta[end..])
                .copied()
                .collect();
            if preserves(
                target,
                witness,
                &baseline,
                &complement,
                faults,
                signature,
                &mut replays,
            ) {
                delta = complement;
                granularity = granularity.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if granularity >= delta.len() {
                break;
            }
            granularity = (granularity * 2).min(delta.len());
        }
    }

    let minimized = project(target, witness, &baseline, &delta);
    MinimizedWitness {
        witness: minimized,
        essential: delta,
        original_delta,
        signature: signature.clone(),
        replays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::ReplayVerdict;
    use achilles_fsp::{Command, FspMessage, FspServerConfig, FspTarget};

    fn witness_of(msg: &FspMessage) -> ConcreteWitness {
        let wire = msg.to_wire();
        ConcreteWitness {
            index: 0,
            server_path_id: 0,
            fields: msg.field_values(),
            wire,
        }
    }

    #[test]
    fn wildcard_witness_shrinks_to_the_star() {
        // A wildcard witness with three bytes of incidental junk: only the
        // command, the length, and the '*' byte matter for the signature.
        let target = FspTarget::new(FspServerConfig::default(), true);
        // The path bytes around the star are incidental; the star is the bug.
        let msg = FspMessage::request(Command::DelFile, b"x*yz");
        let witness = witness_of(&msg);
        let full = replay(&target, &witness, &FaultPlan::none());
        assert_eq!(full.verdict, ReplayVerdict::ConfirmedTrojan);
        let min = minimize(&target, &witness, &FaultPlan::none(), &full.signature);
        assert!(min.strictly_shrunk(), "essential {:?}", min.essential);
        // The star byte must survive: field buf[1] = index BUF_BASE + 1.
        assert!(min.essential.contains(&(achilles_fsp::BUF_BASE + 1)));
        // Re-replay of the minimized witness reproduces the signature.
        let again = replay(&target, &min.witness, &FaultPlan::none());
        assert_eq!(again.signature, min.signature);
    }

    #[test]
    fn already_minimal_witness_is_stable() {
        let target = FspTarget::new(FspServerConfig::default(), false);
        // The benign baseline itself: delta only in fields that the replay
        // signature depends on entirely.
        let msg = FspMessage::request(Command::GetDir, b"f1");
        let witness = witness_of(&msg);
        let full = replay(&target, &witness, &FaultPlan::none());
        let min = minimize(&target, &witness, &FaultPlan::none(), &full.signature);
        assert!(min.essential.is_empty(), "witness equals the baseline");
        assert_eq!(min.replays, 0, "no delta, no replays");
    }
}
