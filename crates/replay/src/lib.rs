//! # achilles-replay — concrete witness replay, minimization, and crash triage
//!
//! The symbolic pipeline ends with Trojan *candidates*: messages a solver
//! model says the server accepts and no correct client generates. This
//! crate closes the loop the paper closed by hand — injecting each
//! candidate into a real deployment and watching what breaks:
//!
//! 1. **Concretize** ([`witness`]): solver model / report → wire bytes,
//!    through the same [`achilles_netsim::bytes`] codec the deployments
//!    parse with.
//! 2. **Inject** ([`target`]): boot a fresh concrete deployment — produced
//!    by the protocol's [`TargetSpec::replay_target`](achilles::TargetSpec)
//!    factory — and fire the witness, optionally under network faults
//!    (drop, duplicate, reorder, single bit-flip).
//! 3. **Triage** ([`signature`]): fold the outcome into a structural
//!    [`CrashSignature`] so two witnesses of one bug count once.
//! 4. **Minimize** ([`minimize`]): ddmin the witness down to the fields
//!    that actually matter.
//! 5. **Persist** ([`corpus`]): remember confirmed Trojans across runs so
//!    re-analysis skips known bytes and flags genuinely new bug classes.
//!
//! [`validate_trojans`] drives 1–5 as the pipeline's opt-in `validate`
//! phase, fanning out over [`achilles_symvm::parallel_map`] workers with
//! bit-identical results for every worker count; [`validate_spec`] /
//! [`validate_session`] are the registry-driven forms that take any
//! `TargetSpec`. This crate knows **no protocol by name**: the concrete
//! deployments live with their protocols (`achilles_fsp::FspTarget`,
//! `achilles_pbft::PbftTarget`, `achilles_paxos::PaxosTarget`, …) and
//! reach the harness only through the trait.
//!
//! **Sessions.** Every stage generalizes to multi-message sessions:
//! [`SessionWitness`] carries one wire buffer per slot, [`FaultSchedule`]
//! addresses drop/duplicate/bit-flip/benign-interleaving faults at any
//! delivery position, [`replay_session`] drives the whole sequence through
//! the same [`ReplayTarget::inject`] delivery vector, signatures become
//! slot-aware, the minimizer runs ddmin over slots × fields, and the v2
//! corpus format persists per-slot witnesses.
//! [`validate_session_trojans`] / [`validate_spec_sessions`] are the
//! drivers over an
//! [`AchillesSession::run_sessions`](achilles::AchillesSession::run_sessions)
//! report.
//!
//! ```
//! use achilles_fsp::{Command, FspMessage, FspServerConfig, FspTarget};
//! use achilles_replay::{replay, FaultPlan, ReplayVerdict};
//!
//! // A length-mismatch Trojan: reported path length 3, real length 1.
//! let mut msg = FspMessage::request(Command::Stat, b"a");
//! msg.bb_len = 3;
//! msg.buf = [b'a', 0, 0x77, 0];
//!
//! let target = FspTarget::new(FspServerConfig::default(), false);
//! let witness = achilles_replay::witness::ConcreteWitness {
//!     index: 0,
//!     server_path_id: 0,
//!     fields: msg.field_values(),
//!     wire: msg.to_wire(),
//! };
//! let result = replay(&target, &witness, &FaultPlan::none());
//! assert_eq!(result.verdict, ReplayVerdict::ConfirmedTrojan);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod fork;
pub mod minimize;
pub mod signature;
pub mod target;
pub mod validate;
pub mod witness;

pub use corpus::{CorpusEntry, CorpusParseError, ReplayCorpus};
pub use fork::{replay_session_forked, ForkServer, ForkStats};
pub use minimize::{
    minimize, minimize_session, minimize_session_divergence, MinimizedSessionWitness,
    MinimizedWitness,
};
pub use signature::CrashSignature;
pub use target::{
    classify_session, plan_session, replay, replay_session, Delivery, DeliveryFault, FaultPlan,
    FaultSchedule, InjectionOutcome, ReplayResult, ReplayTarget, ReplayVerdict, SessionPlan,
    SessionReplayResult,
};
pub use validate::{
    validate_pipeline_report, validate_session, validate_session_trojans, validate_spec,
    validate_spec_sessions, validate_trojans, SessionValidateConfig, SessionValidationSummary,
    ValidateConfig, ValidationSummary,
};
pub use witness::{from_model, from_report, session_from_report, ConcreteWitness, SessionWitness};
