//! Structural crash signatures for witness triage.
//!
//! Two witnesses that drive a deployment into the same failure are the same
//! bug: reporting both wastes a developer's attention, and re-validating
//! both wastes compute. A [`CrashSignature`] captures the *structure* of a
//! replay outcome — which system, whether the message was accepted, whether
//! any correct client could have produced it, and the sorted list of
//! observable effects — while deliberately excluding incidental witness
//! bytes, so solver-chosen junk in don't-care fields never splits a bug
//! class in two.

use crate::target::ReplayVerdict;

/// A structural, order-insensitive fingerprint of one replay outcome.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CrashSignature {
    /// Target system name (`"fsp"`, `"pbft"`, `"paxos"`).
    pub system: String,
    /// The replay verdict the outcome maps to.
    pub verdict: ReplayVerdict,
    /// Number of session slots the replayed witness carried (`1` for
    /// single-message witnesses). Part of the identity: a session failure
    /// and a single-message failure with the same effects are different
    /// bugs — one needs the whole sequence to reproduce.
    pub slots: usize,
    /// Sorted structural effect notes (reply codes, filesystem mutations,
    /// recovery events, triage families, session slot attributions).
    pub effects: Vec<String>,
}

impl CrashSignature {
    /// Builds a single-message signature, sorting and deduplicating the
    /// effect notes so equality is insensitive to observation order.
    ///
    /// Effect notes are sanitized *here* — the corpus line format's
    /// delimiters (`|`, `;`, newline) become `_` — so the in-memory
    /// signature always equals its serialized round trip. Witness bytes
    /// flow into effects (an FSP filename can contain `;`), and a
    /// signature that mutates on save/load would break corpus dedup
    /// across runs.
    pub fn new(system: &str, verdict: ReplayVerdict, effects: Vec<String>) -> CrashSignature {
        CrashSignature::for_session(system, verdict, 1, effects)
    }

    /// [`CrashSignature::new`] for a session witness of `slots` messages.
    pub fn for_session(
        system: &str,
        verdict: ReplayVerdict,
        slots: usize,
        effects: Vec<String>,
    ) -> CrashSignature {
        let mut effects: Vec<String> = effects
            .into_iter()
            .map(|e| e.replace(['|', '\n', ';'], "_"))
            .collect();
        effects.sort();
        effects.dedup();
        CrashSignature {
            system: system.to_string(),
            verdict,
            slots,
            effects,
        }
    }

    /// Serializes to the single-line corpus form:
    /// `system/verdict/effect;effect;…` for single-message signatures,
    /// `system/verdict@s<N>/…` for session signatures of `N` slots.
    pub fn to_line(&self) -> String {
        let verdict = if self.slots == 1 {
            self.verdict.as_str().to_string()
        } else {
            format!("{}@s{}", self.verdict.as_str(), self.slots)
        };
        format!("{}/{}/{}", self.system, verdict, self.effects.join(";"))
    }

    /// Whether the effects carry a final-state divergence marker
    /// (`diverge:at:<idx>`) — the multi-node silent-split failure family
    /// a [`DivergenceProbe`](achilles::DivergenceProbe) folds into the
    /// effect stream.
    pub fn diverged(&self) -> bool {
        achilles::effects_diverged(self.effects.iter().map(String::as_str))
    }

    /// The parsed [`DivergenceSignature`](achilles::DivergenceSignature),
    /// if the effects carry one — which nodes split, at which delivery
    /// index, with which final root digests.
    pub fn divergence(&self) -> Option<achilles::DivergenceSignature> {
        achilles::DivergenceSignature::from_effects(self.effects.iter().map(String::as_str))
    }

    /// Parses the [`CrashSignature::to_line`] form (a verdict without the
    /// `@s<N>` marker is a single-message signature).
    pub fn from_line(line: &str) -> Option<CrashSignature> {
        let mut parts = line.splitn(3, '/');
        let system = parts.next()?;
        let verdict_part = parts.next()?;
        let (verdict, slots) = match verdict_part.split_once("@s") {
            Some((v, n)) => (
                ReplayVerdict::parse(v)?,
                n.parse().ok().filter(|&n| n >= 1)?,
            ),
            None => (ReplayVerdict::parse(verdict_part)?, 1),
        };
        let effects = parts.next()?;
        let effects: Vec<String> = if effects.is_empty() {
            Vec::new()
        } else {
            effects.split(';').map(str::to_string).collect()
        };
        Some(CrashSignature::for_session(system, verdict, slots, effects))
    }
}

impl std::fmt::Display for CrashSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_line())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_are_order_insensitive() {
        let a = CrashSignature::new(
            "fsp",
            ReplayVerdict::ConfirmedTrojan,
            vec!["b".into(), "a".into(), "a".into()],
        );
        let b = CrashSignature::new(
            "fsp",
            ReplayVerdict::ConfirmedTrojan,
            vec!["a".into(), "b".into()],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn line_round_trip() {
        let sig = CrashSignature::new(
            "pbft",
            ReplayVerdict::ConfirmedTrojan,
            vec!["outcome:recovered".into(), "bad_macs:1".into()],
        );
        assert_eq!(CrashSignature::from_line(&sig.to_line()), Some(sig));
        let empty = CrashSignature::new("paxos", ReplayVerdict::Rejected, vec![]);
        assert_eq!(CrashSignature::from_line(&empty.to_line()), Some(empty));
    }

    #[test]
    fn malformed_lines_are_none() {
        assert_eq!(CrashSignature::from_line("fsp"), None);
        assert_eq!(CrashSignature::from_line("fsp/not-a-verdict/x"), None);
        assert_eq!(CrashSignature::from_line("fsp/confirmed@s0/x"), None);
        assert_eq!(CrashSignature::from_line("fsp/confirmed@sX/x"), None);
    }

    #[test]
    fn session_signatures_round_trip_and_differ_from_single() {
        let session = CrashSignature::for_session(
            "fsp",
            ReplayVerdict::ConfirmedTrojan,
            2,
            vec!["family:forged-login".into(), "trojan-slot:0".into()],
        );
        assert_eq!(
            CrashSignature::from_line(&session.to_line()),
            Some(session.clone())
        );
        assert!(session.to_line().contains("@s2"), "{}", session.to_line());
        let single = CrashSignature::new(
            "fsp",
            ReplayVerdict::ConfirmedTrojan,
            vec!["family:forged-login".into(), "trojan-slot:0".into()],
        );
        assert_ne!(session, single, "slot count is part of the identity");
    }

    #[test]
    fn divergence_markers_are_recovered_from_effects() {
        let sig = CrashSignature::for_session(
            "shardexec",
            ReplayVerdict::ConfirmedTrojan,
            4,
            vec![
                "diverge:at:0".into(),
                "diverge:root:shard0:00000000000000aa".into(),
                "diverge:root:shard1:00000000000000aa".into(),
                "diverge:root:shard2:00000000000000bb".into(),
                "family:sender-spoof".into(),
            ],
        );
        assert!(sig.diverged());
        let div = sig.divergence().expect("divergence parses back out");
        assert_eq!(div.first_split, 0);
        assert_eq!(
            div.split_sets(),
            vec![vec!["shard0", "shard1"], vec!["shard2"]]
        );
        // The divergence survives the text round trip byte-exactly.
        let back = CrashSignature::from_line(&sig.to_line()).unwrap();
        assert_eq!(back.divergence(), sig.divergence());

        let agreed = CrashSignature::for_session(
            "shardexec",
            ReplayVerdict::ConfirmedTrojan,
            4,
            vec!["root:agree:00000000000000aa".into()],
        );
        assert!(!agreed.diverged());
        assert_eq!(agreed.divergence(), None);
    }

    #[test]
    fn delimiter_bearing_effects_round_trip() {
        // Witness bytes flow into effects (e.g. an FSP filename "d;x"):
        // the signature must equal its serialized round trip anyway.
        let sig = CrashSignature::new(
            "fsp",
            ReplayVerdict::ConfirmedTrojan,
            vec!["fs:+d;x".into(), "fs:+a|b".into()],
        );
        assert_eq!(CrashSignature::from_line(&sig.to_line()), Some(sig.clone()));
        assert!(sig.effects.iter().all(|e| !e.contains([';', '|', '\n'])));
    }
}
