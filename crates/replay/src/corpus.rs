//! The replay corpus: confirmed Trojans persisted across runs.
//!
//! Re-running an analysis after a code or model change re-discovers mostly
//! the same Trojans. The corpus remembers every confirmed witness and its
//! [`CrashSignature`] in a line-oriented text format (witness fields
//! serialized via [`achilles::export::witness_record`]), so a later run
//! can (a) skip re-validating byte-identical witnesses and (b) tell
//! genuinely *new* bug classes from fresh witnesses of known ones.

use std::collections::HashSet;

use achilles::export::{parse_witness_record, witness_record};

use crate::signature::CrashSignature;

/// File-format version tag (first line of every corpus file).
const HEADER: &str = "# achilles-replay corpus v1";

/// One persisted confirmed Trojan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The structural crash signature.
    pub signature: CrashSignature,
    /// The witness's concrete field values.
    pub fields: Vec<u64>,
    /// Essential field indices from minimization (empty = not minimized).
    pub essential: Vec<usize>,
}

/// A deduplicated set of confirmed Trojans.
#[derive(Clone, Debug, Default)]
pub struct ReplayCorpus {
    entries: Vec<CorpusEntry>,
    signatures: HashSet<CrashSignature>,
    witnesses: HashSet<Vec<u64>>,
}

impl ReplayCorpus {
    /// An empty corpus.
    pub fn new() -> ReplayCorpus {
        ReplayCorpus::default()
    }

    /// The persisted entries, in insertion order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether this exact witness (by field values) is already recorded.
    pub fn knows_witness(&self, fields: &[u64]) -> bool {
        self.witnesses.contains(fields)
    }

    /// Whether this crash signature is already recorded.
    pub fn knows_signature(&self, sig: &CrashSignature) -> bool {
        self.signatures.contains(sig)
    }

    /// Number of distinct signatures.
    pub fn distinct_signatures(&self) -> usize {
        self.signatures.len()
    }

    /// Inserts an entry; returns whether its *signature* was new.
    /// Byte-identical witnesses are never stored twice.
    pub fn insert(&mut self, entry: CorpusEntry) -> bool {
        if self.witnesses.contains(&entry.fields) {
            return false;
        }
        let new_signature = self.signatures.insert(entry.signature.clone());
        self.witnesses.insert(entry.fields.clone());
        self.entries.push(entry);
        new_signature
    }

    /// Merges another corpus in; returns how many new signatures arrived.
    pub fn merge(&mut self, other: &ReplayCorpus) -> usize {
        other
            .entries
            .iter()
            .filter(|e| self.insert((*e).clone()))
            .count()
    }

    /// Serializes to the line-oriented corpus text form.
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for e in &self.entries {
            let essential = e
                .essential
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{}|{}|{}\n",
                e.signature.to_line(),
                witness_record(&e.fields),
                essential
            ));
        }
        out
    }

    /// Parses the [`ReplayCorpus::to_text`] form. Malformed lines are
    /// skipped; a missing or wrong header yields an empty corpus.
    pub fn from_text(text: &str) -> ReplayCorpus {
        let mut corpus = ReplayCorpus::new();
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return corpus;
        }
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '|');
            let (Some(sig), Some(fields), Some(essential)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let Some(signature) = CrashSignature::from_line(sig) else {
                continue;
            };
            let Some(fields) = parse_witness_record(fields) else {
                continue;
            };
            let essential: Vec<usize> = if essential.is_empty() {
                Vec::new()
            } else {
                match essential
                    .split(',')
                    .map(|p| p.trim().parse().ok())
                    .collect()
                {
                    Some(v) => v,
                    None => continue,
                }
            };
            corpus.insert(CorpusEntry {
                signature,
                fields,
                essential,
            });
        }
        corpus
    }

    /// Writes the corpus to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a corpus from a file; a missing file is an empty corpus.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `NotFound`.
    pub fn load(path: &std::path::Path) -> std::io::Result<ReplayCorpus> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(ReplayCorpus::from_text(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(ReplayCorpus::new()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::ReplayVerdict;

    fn entry(system: &str, fields: Vec<u64>, effect: &str) -> CorpusEntry {
        CorpusEntry {
            signature: CrashSignature::new(
                system,
                ReplayVerdict::ConfirmedTrojan,
                vec![effect.to_string()],
            ),
            fields,
            essential: vec![0, 2],
        }
    }

    #[test]
    fn text_round_trip() {
        let mut corpus = ReplayCorpus::new();
        corpus.insert(entry("fsp", vec![68, 0, 3], "family:x"));
        corpus.insert(entry("pbft", vec![1, 2], "outcome:recovered"));
        let back = ReplayCorpus::from_text(&corpus.to_text());
        assert_eq!(back.entries(), corpus.entries());
        assert_eq!(back.distinct_signatures(), 2);
    }

    #[test]
    fn dedup_by_witness_and_signature() {
        let mut corpus = ReplayCorpus::new();
        assert!(corpus.insert(entry("fsp", vec![1], "a")));
        // Same signature, new witness: stored but not a new signature.
        assert!(!corpus.insert(entry("fsp", vec![2], "a")));
        // Identical witness: not stored at all.
        assert!(!corpus.insert(entry("fsp", vec![1], "a")));
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.distinct_signatures(), 1);
        assert!(corpus.knows_witness(&[2]));
        assert!(!corpus.knows_witness(&[3]));
    }

    #[test]
    fn merge_counts_new_signatures() {
        let mut a = ReplayCorpus::new();
        a.insert(entry("fsp", vec![1], "a"));
        let mut b = ReplayCorpus::new();
        b.insert(entry("fsp", vec![1], "a"));
        b.insert(entry("fsp", vec![9], "b"));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let text = format!("{HEADER}\ngarbage\nfsp/confirmed/a|1,2|\n|||\n");
        let corpus = ReplayCorpus::from_text(&text);
        assert_eq!(corpus.len(), 1);
        assert_eq!(ReplayCorpus::from_text("no header").len(), 0);
    }
}
