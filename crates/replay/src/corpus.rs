//! The replay corpus: confirmed Trojans persisted across runs.
//!
//! Re-running an analysis after a code or model change re-discovers mostly
//! the same Trojans. The corpus remembers every confirmed witness and its
//! [`CrashSignature`] in a line-oriented text format (witness fields
//! serialized via [`achilles::export::witness_record`] /
//! [`achilles::export::session_witness_record`]), so a later run can
//! (a) skip re-validating byte-identical witnesses and (b) tell genuinely
//! *new* bug classes from fresh witnesses of known ones.
//!
//! The **v2** format added session witnesses: an entry's field record may
//! carry several slots separated by `/` (one wire message per slot), and
//! its signature may carry the `@s<N>` session marker. The **v3** bump
//! accompanies divergence-aware triage: effect vocabularies now include
//! the `diverge:*` / `root:agree:*` markers multi-node targets emit, so
//! pre-divergence corpora must be re-derived rather than quietly answer
//! for cells they never observed. A file with a stale or foreign header is
//! **rejected** with a line-1 [`CorpusParseError`] naming the expected
//! version — earlier releases loaded it as an empty corpus, which silently
//! discarded the store and re-validated everything without telling anyone.
//! Only a genuinely absent (or zero-byte) file loads empty; the CI corpus
//! cache is keyed on the version string, so a bump misses the cache and
//! starts from the empty-file path, never the error path.
//!
//! Within a well-versioned file, malformed entries are **hard errors**
//! with a line number ([`CorpusParseError`]), not silent skips: a corpus
//! is what lets re-validation *not* replay a witness, so a truncated
//! session record that quietly vanished would silently re-classify its
//! witness as unknown — or worse, a half-written file would pass for a
//! smaller corpus.

use std::collections::HashSet;
use std::fmt;

use achilles::export::{parse_session_witness_record, session_witness_record, witness_record};

use crate::signature::CrashSignature;

/// File-format version tag (first line of every corpus file). The `v3`
/// bump marks the divergence-aware effect vocabulary (`diverge:*` /
/// `root:agree:*`): older corpora predate multi-node root observation and
/// must be re-derived, not trusted.
const HEADER: &str = "# achilles-replay corpus v3";

/// A malformed corpus entry, with the 1-based line it sits on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusParseError {
    /// 1-based line number of the malformed entry.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for CorpusParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corpus line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for CorpusParseError {}

/// One persisted confirmed Trojan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The structural crash signature.
    pub signature: CrashSignature,
    /// The witness's concrete field values (session witnesses store the
    /// slots concatenated; `slot_lens` records the boundaries).
    pub fields: Vec<u64>,
    /// Per-slot field counts for session witnesses; empty for
    /// single-message witnesses.
    pub slot_lens: Vec<usize>,
    /// Essential field indices from minimization (empty = not minimized).
    /// For session witnesses these index into the concatenated `fields`.
    pub essential: Vec<usize>,
}

impl CorpusEntry {
    /// A single-message entry.
    pub fn single(
        signature: CrashSignature,
        fields: Vec<u64>,
        essential: Vec<usize>,
    ) -> CorpusEntry {
        CorpusEntry {
            signature,
            fields,
            slot_lens: Vec::new(),
            essential,
        }
    }

    /// A session entry over per-slot field values; `essential` carries
    /// `(slot, field)` pairs, stored as indices into the concatenation.
    pub fn session(
        signature: CrashSignature,
        slot_fields: &[Vec<u64>],
        essential: &[(usize, usize)],
    ) -> CorpusEntry {
        let slot_lens: Vec<usize> = slot_fields.iter().map(Vec::len).collect();
        let offsets: Vec<usize> = slot_lens
            .iter()
            .scan(0usize, |acc, &len| {
                let at = *acc;
                *acc += len;
                Some(at)
            })
            .collect();
        CorpusEntry {
            signature,
            fields: slot_fields.iter().flatten().copied().collect(),
            slot_lens,
            essential: essential.iter().map(|&(s, f)| offsets[s] + f).collect(),
        }
    }

    /// The per-slot field values (a single vector for single-message
    /// entries).
    pub fn slot_fields(&self) -> Vec<Vec<u64>> {
        if self.slot_lens.is_empty() {
            return vec![self.fields.clone()];
        }
        achilles::export::split_fields_by_counts(&self.fields, &self.slot_lens)
    }
}

/// A deduplicated set of confirmed Trojans.
#[derive(Clone, Debug, Default)]
pub struct ReplayCorpus {
    entries: Vec<CorpusEntry>,
    signatures: HashSet<CrashSignature>,
    /// Keyed on (slot boundaries, concatenated fields): a session witness
    /// and a single-message witness with identical bytes are distinct.
    witnesses: HashSet<(Vec<usize>, Vec<u64>)>,
}

impl ReplayCorpus {
    /// An empty corpus.
    pub fn new() -> ReplayCorpus {
        ReplayCorpus::default()
    }

    /// The persisted entries, in insertion order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether this exact single-message witness (by field values) is
    /// already recorded.
    pub fn knows_witness(&self, fields: &[u64]) -> bool {
        self.witnesses.contains(&(Vec::new(), fields.to_vec()))
    }

    /// Whether this exact session witness (per-slot field values) is
    /// already recorded.
    pub fn knows_session_witness(&self, slot_fields: &[Vec<u64>]) -> bool {
        let mut lens: Vec<usize> = slot_fields.iter().map(Vec::len).collect();
        if lens.len() <= 1 {
            // A one-slot session is indistinguishable from (and deduped
            // with) the single-message form.
            lens = Vec::new();
        }
        let fields: Vec<u64> = slot_fields.iter().flatten().copied().collect();
        self.witnesses.contains(&(lens, fields))
    }

    /// Whether this crash signature is already recorded.
    pub fn knows_signature(&self, sig: &CrashSignature) -> bool {
        self.signatures.contains(sig)
    }

    /// Number of distinct signatures.
    pub fn distinct_signatures(&self) -> usize {
        self.signatures.len()
    }

    /// Inserts an entry; returns whether its *signature* was new.
    /// Byte-identical witnesses (with identical slot boundaries) are never
    /// stored twice.
    pub fn insert(&mut self, mut entry: CorpusEntry) -> bool {
        if entry.slot_lens.len() <= 1 {
            entry.slot_lens = Vec::new();
        }
        let key = (entry.slot_lens.clone(), entry.fields.clone());
        if self.witnesses.contains(&key) {
            return false;
        }
        let new_signature = self.signatures.insert(entry.signature.clone());
        self.witnesses.insert(key);
        self.entries.push(entry);
        new_signature
    }

    /// Merges another corpus in; returns how many new signatures arrived.
    pub fn merge(&mut self, other: &ReplayCorpus) -> usize {
        other
            .entries
            .iter()
            .filter(|e| self.insert((*e).clone()))
            .count()
    }

    /// Serializes to the line-oriented corpus text form.
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for e in &self.entries {
            let essential = e
                .essential
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let record = if e.slot_lens.is_empty() {
                witness_record(&e.fields)
            } else {
                session_witness_record(&e.slot_fields())
            };
            out.push_str(&format!(
                "{}|{}|{}\n",
                e.signature.to_line(),
                record,
                essential
            ));
        }
        out
    }

    /// Parses the [`ReplayCorpus::to_text`] form.
    ///
    /// Empty text is an empty corpus (a freshly-created file). Anything
    /// else must lead with the current version header: a stale or foreign
    /// header is a **line-1 hard error naming the expected version**, so
    /// an operator pointing a run at a pre-bump corpus learns the store
    /// needs re-deriving instead of watching it silently load as empty.
    /// Within a well-versioned file, a malformed entry is equally hard:
    /// re-validation trusts the corpus to decide which witnesses to skip,
    /// so a record that silently vanished would corrupt that decision.
    ///
    /// # Errors
    ///
    /// Returns a [`CorpusParseError`] naming the first malformed line
    /// (1-based) — a missing or outdated version header, an unparsable
    /// signature, a truncated or non-numeric `/`-separated per-slot
    /// record, an empty slot, or a malformed essential-field list.
    pub fn from_text(text: &str) -> Result<ReplayCorpus, CorpusParseError> {
        let mut corpus = ReplayCorpus::new();
        let mut lines = text.lines().enumerate();
        match lines.next() {
            None => return Ok(corpus),
            Some((_, first)) if first.trim() == HEADER => {}
            Some((_, first)) => {
                return Err(CorpusParseError {
                    line: 1,
                    reason: format!(
                        "unsupported corpus header {:?} (expected {HEADER:?}; \
                         older formats must be re-derived)",
                        first.trim()
                    ),
                });
            }
        }
        for (index, line) in lines {
            let lineno = index + 1;
            let err = |reason: &str| CorpusParseError {
                line: lineno,
                reason: reason.to_string(),
            };
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '|');
            let (Some(sig), Some(fields), Some(essential)) =
                (parts.next(), parts.next(), parts.next())
            else {
                return Err(err("expected `signature|fields|essential`"));
            };
            let Some(signature) = CrashSignature::from_line(sig) else {
                return Err(err(&format!("unparsable crash signature {sig:?}")));
            };
            let Some(slot_fields) = parse_session_witness_record(fields) else {
                return Err(err(&format!(
                    "malformed witness record {fields:?} (expected decimal \
                     fields, slots separated by `/`)"
                )));
            };
            if slot_fields.len() > 1 && slot_fields.iter().any(Vec::is_empty) {
                return Err(err(&format!(
                    "truncated session record {fields:?}: every slot must \
                     carry at least one field"
                )));
            }
            let essential: Vec<usize> = if essential.is_empty() {
                Vec::new()
            } else {
                match essential
                    .split(',')
                    .map(|p| p.trim().parse().ok())
                    .collect()
                {
                    Some(v) => v,
                    None => {
                        return Err(err(&format!(
                            "malformed essential-field list {essential:?}"
                        )))
                    }
                }
            };
            let slot_lens: Vec<usize> = if slot_fields.len() <= 1 {
                Vec::new()
            } else {
                slot_fields.iter().map(Vec::len).collect()
            };
            corpus.insert(CorpusEntry {
                signature,
                fields: slot_fields.into_iter().flatten().collect(),
                slot_lens,
                essential,
            });
        }
        Ok(corpus)
    }

    /// Writes the corpus to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a corpus from a file; a missing file is an empty corpus.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `NotFound`; a malformed entry
    /// surfaces as [`std::io::ErrorKind::InvalidData`] carrying the
    /// line-numbered [`CorpusParseError`].
    pub fn load(path: &std::path::Path) -> std::io::Result<ReplayCorpus> {
        match std::fs::read_to_string(path) {
            Ok(text) => ReplayCorpus::from_text(&text)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(ReplayCorpus::new()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::ReplayVerdict;

    fn entry(system: &str, fields: Vec<u64>, effect: &str) -> CorpusEntry {
        CorpusEntry::single(
            CrashSignature::new(
                system,
                ReplayVerdict::ConfirmedTrojan,
                vec![effect.to_string()],
            ),
            fields,
            vec![0, 2],
        )
    }

    #[test]
    fn text_round_trip() {
        let mut corpus = ReplayCorpus::new();
        corpus.insert(entry("fsp", vec![68, 0, 3], "family:x"));
        corpus.insert(entry("pbft", vec![1, 2], "outcome:recovered"));
        let back = ReplayCorpus::from_text(&corpus.to_text()).unwrap();
        assert_eq!(back.entries(), corpus.entries());
        assert_eq!(back.distinct_signatures(), 2);
    }

    #[test]
    fn dedup_by_witness_and_signature() {
        let mut corpus = ReplayCorpus::new();
        assert!(corpus.insert(entry("fsp", vec![1], "a")));
        // Same signature, new witness: stored but not a new signature.
        assert!(!corpus.insert(entry("fsp", vec![2], "a")));
        // Identical witness: not stored at all.
        assert!(!corpus.insert(entry("fsp", vec![1], "a")));
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.distinct_signatures(), 1);
        assert!(corpus.knows_witness(&[2]));
        assert!(!corpus.knows_witness(&[3]));
    }

    #[test]
    fn merge_counts_new_signatures() {
        let mut a = ReplayCorpus::new();
        a.insert(entry("fsp", vec![1], "a"));
        let mut b = ReplayCorpus::new();
        b.insert(entry("fsp", vec![1], "a"));
        b.insert(entry("fsp", vec![9], "b"));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn malformed_lines_are_line_numbered_errors() {
        // Regression: malformed entries used to be skipped silently, so a
        // half-written corpus passed for a smaller one and re-validation
        // replayed (or worse, skipped) the wrong witnesses.
        let text = format!("{HEADER}\n\nfsp/confirmed/a|1,2|\ngarbage\n");
        let err = ReplayCorpus::from_text(&text).unwrap_err();
        assert_eq!(err.line, 4, "1-based line of the malformed entry");
        assert!(err.to_string().contains("line 4"), "{err}");

        let bad_sig = format!("{HEADER}\nfsp/not-a-verdict/a|1,2|\n");
        let err = ReplayCorpus::from_text(&bad_sig).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("signature"), "{err}");

        let bad_essential = format!("{HEADER}\nfsp/confirmed/a|1,2|0,x\n");
        let err = ReplayCorpus::from_text(&bad_essential).unwrap_err();
        assert!(err.reason.contains("essential"), "{err}");
    }

    #[test]
    fn stale_headers_are_line_one_errors_naming_the_expected_version() {
        // Regression: pre-v3 loaders treated a stale header as "load as
        // empty", so pointing a run at an old corpus silently discarded
        // the whole store and re-validated everything.
        for stale in [
            "no header",
            "# achilles-replay corpus v1\nfsp/confirmed/a|1,2|\n",
            "# achilles-replay corpus v2\nfsp/confirmed/a|1,2|\n",
        ] {
            let err = ReplayCorpus::from_text(stale).expect_err("stale header must error");
            assert_eq!(err.line, 1, "{stale:?}");
            assert!(
                err.reason.contains("v3"),
                "names the expected version: {err}"
            );
        }
        // A zero-byte file (just created, never written) is still empty —
        // the missing-file path and the fresh-file path agree.
        assert_eq!(ReplayCorpus::from_text("").unwrap().len(), 0);

        // And the file loader surfaces the stale header as InvalidData,
        // while a genuinely absent file stays an empty corpus.
        let dir = std::env::temp_dir().join("achilles-corpus-header-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.corpus");
        std::fs::write(&path, "# achilles-replay corpus v2\n").unwrap();
        let err = ReplayCorpus::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
        assert_eq!(ReplayCorpus::load(&path).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn divergence_entries_round_trip() {
        // A v3 corpus persists the divergence effect vocabulary intact:
        // the parsed-back signature still reports the same split.
        let sig = CrashSignature::for_session(
            "shardexec",
            ReplayVerdict::ConfirmedTrojan,
            4,
            vec![
                "diverge:at:0".into(),
                "diverge:root:shard0:0000000000000011".into(),
                "diverge:root:shard1:0000000000000022".into(),
                "family:sender-spoof".into(),
                "trojan-slot:0".into(),
            ],
        );
        let slots = vec![vec![1, 0, 1, 1], vec![2, 0, 1], vec![3, 1]];
        let mut corpus = ReplayCorpus::new();
        assert!(corpus.insert(CorpusEntry::session(sig.clone(), &slots, &[(0, 1)])));
        let back = ReplayCorpus::from_text(&corpus.to_text()).unwrap();
        assert_eq!(back.entries(), corpus.entries());
        assert!(back.knows_signature(&sig));
        let div = back.entries()[0].signature.divergence().unwrap();
        assert_eq!(div.first_split, 0);
        assert_eq!(div.split_sets(), vec![vec!["shard0"], vec!["shard1"]]);
    }

    #[test]
    fn truncated_session_records_are_rejected_with_their_line() {
        // The truncated `/`-separated record regression: "3,150/" parses
        // as a second, empty slot — a witness that cannot exist.
        let text =
            format!("{HEADER}\nfsp/confirmed@s2/a|3,150/68,0,1|\nfsp/confirmed@s2/b|3,150/|\n");
        let err = ReplayCorpus::from_text(&text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.reason.contains("truncated"), "{err}");

        // Non-numeric slot fields are rejected too, with the same line.
        let text = format!("{HEADER}\nfsp/confirmed@s2/a|3,150/6x,0|\n");
        let err = ReplayCorpus::from_text(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("witness record"), "{err}");

        // And the loader surfaces the parse error as InvalidData.
        let dir = std::env::temp_dir().join("achilles-corpus-parse-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.corpus");
        std::fs::write(&path, format!("{HEADER}\nfsp/confirmed@s2/b|3,150/|\n")).unwrap();
        let err = ReplayCorpus::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn session_entries_round_trip_with_slot_boundaries() {
        let sig = CrashSignature::for_session(
            "fsp",
            ReplayVerdict::ConfirmedTrojan,
            2,
            vec!["trojan-slot:0".into()],
        );
        let slots = vec![vec![3, 150], vec![68, 0, 1]];
        let mut corpus = ReplayCorpus::new();
        assert!(corpus.insert(CorpusEntry::session(sig, &slots, &[(0, 1), (1, 2)])));
        assert!(corpus.knows_session_witness(&slots));
        // Same bytes as a *single-message* witness: a different thing.
        assert!(!corpus.knows_witness(&[3, 150, 68, 0, 1]));

        let text = corpus.to_text();
        assert!(text.contains("3,150/68,0,1"), "{text}");
        let back = ReplayCorpus::from_text(&text).unwrap();
        assert_eq!(back.entries(), corpus.entries());
        assert!(back.knows_session_witness(&slots));
        assert_eq!(back.entries()[0].slot_fields(), slots);
        assert_eq!(back.entries()[0].essential, vec![1, 4]);
    }
}
