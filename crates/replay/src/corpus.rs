//! The replay corpus: confirmed Trojans persisted across runs.
//!
//! Re-running an analysis after a code or model change re-discovers mostly
//! the same Trojans. The corpus remembers every confirmed witness and its
//! [`CrashSignature`] in a line-oriented text format (witness fields
//! serialized via [`achilles::export::witness_record`] /
//! [`achilles::export::session_witness_record`]), so a later run can
//! (a) skip re-validating byte-identical witnesses and (b) tell genuinely
//! *new* bug classes from fresh witnesses of known ones.
//!
//! The **v2** format adds session witnesses: an entry's field record may
//! carry several slots separated by `/` (one wire message per slot), and
//! its signature may carry the `@s<N>` session marker. A v1 file fails the
//! header check and loads as an empty corpus — by design, since v1 entries
//! cannot express slot boundaries (this is also what keys the CI corpus
//! cache: a format bump invalidates it).

use std::collections::HashSet;

use achilles::export::{parse_session_witness_record, session_witness_record, witness_record};

use crate::signature::CrashSignature;

/// File-format version tag (first line of every corpus file).
const HEADER: &str = "# achilles-replay corpus v2";

/// One persisted confirmed Trojan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The structural crash signature.
    pub signature: CrashSignature,
    /// The witness's concrete field values (session witnesses store the
    /// slots concatenated; `slot_lens` records the boundaries).
    pub fields: Vec<u64>,
    /// Per-slot field counts for session witnesses; empty for
    /// single-message witnesses.
    pub slot_lens: Vec<usize>,
    /// Essential field indices from minimization (empty = not minimized).
    /// For session witnesses these index into the concatenated `fields`.
    pub essential: Vec<usize>,
}

impl CorpusEntry {
    /// A single-message entry.
    pub fn single(
        signature: CrashSignature,
        fields: Vec<u64>,
        essential: Vec<usize>,
    ) -> CorpusEntry {
        CorpusEntry {
            signature,
            fields,
            slot_lens: Vec::new(),
            essential,
        }
    }

    /// A session entry over per-slot field values; `essential` carries
    /// `(slot, field)` pairs, stored as indices into the concatenation.
    pub fn session(
        signature: CrashSignature,
        slot_fields: &[Vec<u64>],
        essential: &[(usize, usize)],
    ) -> CorpusEntry {
        let slot_lens: Vec<usize> = slot_fields.iter().map(Vec::len).collect();
        let offsets: Vec<usize> = slot_lens
            .iter()
            .scan(0usize, |acc, &len| {
                let at = *acc;
                *acc += len;
                Some(at)
            })
            .collect();
        CorpusEntry {
            signature,
            fields: slot_fields.iter().flatten().copied().collect(),
            slot_lens,
            essential: essential.iter().map(|&(s, f)| offsets[s] + f).collect(),
        }
    }

    /// The per-slot field values (a single vector for single-message
    /// entries).
    pub fn slot_fields(&self) -> Vec<Vec<u64>> {
        if self.slot_lens.is_empty() {
            return vec![self.fields.clone()];
        }
        achilles::export::split_fields_by_counts(&self.fields, &self.slot_lens)
    }
}

/// A deduplicated set of confirmed Trojans.
#[derive(Clone, Debug, Default)]
pub struct ReplayCorpus {
    entries: Vec<CorpusEntry>,
    signatures: HashSet<CrashSignature>,
    /// Keyed on (slot boundaries, concatenated fields): a session witness
    /// and a single-message witness with identical bytes are distinct.
    witnesses: HashSet<(Vec<usize>, Vec<u64>)>,
}

impl ReplayCorpus {
    /// An empty corpus.
    pub fn new() -> ReplayCorpus {
        ReplayCorpus::default()
    }

    /// The persisted entries, in insertion order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether this exact single-message witness (by field values) is
    /// already recorded.
    pub fn knows_witness(&self, fields: &[u64]) -> bool {
        self.witnesses.contains(&(Vec::new(), fields.to_vec()))
    }

    /// Whether this exact session witness (per-slot field values) is
    /// already recorded.
    pub fn knows_session_witness(&self, slot_fields: &[Vec<u64>]) -> bool {
        let mut lens: Vec<usize> = slot_fields.iter().map(Vec::len).collect();
        if lens.len() <= 1 {
            // A one-slot session is indistinguishable from (and deduped
            // with) the single-message form.
            lens = Vec::new();
        }
        let fields: Vec<u64> = slot_fields.iter().flatten().copied().collect();
        self.witnesses.contains(&(lens, fields))
    }

    /// Whether this crash signature is already recorded.
    pub fn knows_signature(&self, sig: &CrashSignature) -> bool {
        self.signatures.contains(sig)
    }

    /// Number of distinct signatures.
    pub fn distinct_signatures(&self) -> usize {
        self.signatures.len()
    }

    /// Inserts an entry; returns whether its *signature* was new.
    /// Byte-identical witnesses (with identical slot boundaries) are never
    /// stored twice.
    pub fn insert(&mut self, mut entry: CorpusEntry) -> bool {
        if entry.slot_lens.len() <= 1 {
            entry.slot_lens = Vec::new();
        }
        let key = (entry.slot_lens.clone(), entry.fields.clone());
        if self.witnesses.contains(&key) {
            return false;
        }
        let new_signature = self.signatures.insert(entry.signature.clone());
        self.witnesses.insert(key);
        self.entries.push(entry);
        new_signature
    }

    /// Merges another corpus in; returns how many new signatures arrived.
    pub fn merge(&mut self, other: &ReplayCorpus) -> usize {
        other
            .entries
            .iter()
            .filter(|e| self.insert((*e).clone()))
            .count()
    }

    /// Serializes to the line-oriented corpus text form.
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for e in &self.entries {
            let essential = e
                .essential
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",");
            let record = if e.slot_lens.is_empty() {
                witness_record(&e.fields)
            } else {
                session_witness_record(&e.slot_fields())
            };
            out.push_str(&format!(
                "{}|{}|{}\n",
                e.signature.to_line(),
                record,
                essential
            ));
        }
        out
    }

    /// Parses the [`ReplayCorpus::to_text`] form. Malformed lines are
    /// skipped; a missing or wrong header yields an empty corpus.
    pub fn from_text(text: &str) -> ReplayCorpus {
        let mut corpus = ReplayCorpus::new();
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return corpus;
        }
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '|');
            let (Some(sig), Some(fields), Some(essential)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let Some(signature) = CrashSignature::from_line(sig) else {
                continue;
            };
            let Some(slot_fields) = parse_session_witness_record(fields) else {
                continue;
            };
            let essential: Vec<usize> = if essential.is_empty() {
                Vec::new()
            } else {
                match essential
                    .split(',')
                    .map(|p| p.trim().parse().ok())
                    .collect()
                {
                    Some(v) => v,
                    None => continue,
                }
            };
            let slot_lens: Vec<usize> = if slot_fields.len() <= 1 {
                Vec::new()
            } else {
                slot_fields.iter().map(Vec::len).collect()
            };
            corpus.insert(CorpusEntry {
                signature,
                fields: slot_fields.into_iter().flatten().collect(),
                slot_lens,
                essential,
            });
        }
        corpus
    }

    /// Writes the corpus to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a corpus from a file; a missing file is an empty corpus.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `NotFound`.
    pub fn load(path: &std::path::Path) -> std::io::Result<ReplayCorpus> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(ReplayCorpus::from_text(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(ReplayCorpus::new()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::ReplayVerdict;

    fn entry(system: &str, fields: Vec<u64>, effect: &str) -> CorpusEntry {
        CorpusEntry::single(
            CrashSignature::new(
                system,
                ReplayVerdict::ConfirmedTrojan,
                vec![effect.to_string()],
            ),
            fields,
            vec![0, 2],
        )
    }

    #[test]
    fn text_round_trip() {
        let mut corpus = ReplayCorpus::new();
        corpus.insert(entry("fsp", vec![68, 0, 3], "family:x"));
        corpus.insert(entry("pbft", vec![1, 2], "outcome:recovered"));
        let back = ReplayCorpus::from_text(&corpus.to_text());
        assert_eq!(back.entries(), corpus.entries());
        assert_eq!(back.distinct_signatures(), 2);
    }

    #[test]
    fn dedup_by_witness_and_signature() {
        let mut corpus = ReplayCorpus::new();
        assert!(corpus.insert(entry("fsp", vec![1], "a")));
        // Same signature, new witness: stored but not a new signature.
        assert!(!corpus.insert(entry("fsp", vec![2], "a")));
        // Identical witness: not stored at all.
        assert!(!corpus.insert(entry("fsp", vec![1], "a")));
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.distinct_signatures(), 1);
        assert!(corpus.knows_witness(&[2]));
        assert!(!corpus.knows_witness(&[3]));
    }

    #[test]
    fn merge_counts_new_signatures() {
        let mut a = ReplayCorpus::new();
        a.insert(entry("fsp", vec![1], "a"));
        let mut b = ReplayCorpus::new();
        b.insert(entry("fsp", vec![1], "a"));
        b.insert(entry("fsp", vec![9], "b"));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let text = format!("{HEADER}\ngarbage\nfsp/confirmed/a|1,2|\n|||\n");
        let corpus = ReplayCorpus::from_text(&text);
        assert_eq!(corpus.len(), 1);
        assert_eq!(ReplayCorpus::from_text("no header").len(), 0);
        // A v1 corpus (old header) is stale by definition: empty load.
        assert_eq!(
            ReplayCorpus::from_text("# achilles-replay corpus v1\nfsp/confirmed/a|1,2|\n").len(),
            0
        );
    }

    #[test]
    fn session_entries_round_trip_with_slot_boundaries() {
        let sig = CrashSignature::for_session(
            "fsp",
            ReplayVerdict::ConfirmedTrojan,
            2,
            vec!["trojan-slot:0".into()],
        );
        let slots = vec![vec![3, 150], vec![68, 0, 1]];
        let mut corpus = ReplayCorpus::new();
        assert!(corpus.insert(CorpusEntry::session(sig, &slots, &[(0, 1), (1, 2)])));
        assert!(corpus.knows_session_witness(&slots));
        // Same bytes as a *single-message* witness: a different thing.
        assert!(!corpus.knows_witness(&[3, 150, 68, 0, 1]));

        let text = corpus.to_text();
        assert!(text.contains("3,150/68,0,1"), "{text}");
        let back = ReplayCorpus::from_text(&text);
        assert_eq!(back.entries(), corpus.entries());
        assert!(back.knows_session_witness(&slots));
        assert_eq!(back.entries()[0].slot_fields(), slots);
        assert_eq!(back.entries()[0].essential, vec![1, 4]);
    }
}
