//! Witness concretization: solver output → injectable wire bytes.
//!
//! The symbolic phases end with a [`TrojanReport`] whose witness is a
//! vector of concrete field values (the solver model evaluated over the
//! server message). Replay needs the *wire form*: the exact byte string a
//! malicious sender would put on the network. This module bridges the two
//! through [`achilles_netsim::bytes`], the same codec the concrete
//! deployments parse with, so an encode → inject → decode round trip
//! exercises the identical framing code as real traffic.

use std::sync::Arc;

use achilles::{TrojanReport, WireError};
use achilles_solver::{Model, TermPool};
use achilles_symvm::{MessageLayout, SymMessage};

pub use achilles::target::{fields_to_wire, layout_widths, wire_to_fields};

/// A fully concretized Trojan witness, ready for injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcreteWitness {
    /// Index of the originating report in discovery order.
    pub index: usize,
    /// Id of the accepting server path the witness was found on.
    pub server_path_id: usize,
    /// Concrete field values in layout order.
    pub fields: Vec<u64>,
    /// Big-endian wire encoding of `fields`.
    pub wire: Vec<u8>,
}

/// Concretizes a discovered Trojan report into an injectable witness.
///
/// # Errors
///
/// Returns a [`WireError`] if the layout cannot be wire-encoded.
pub fn from_report(
    layout: &Arc<MessageLayout>,
    index: usize,
    report: &TrojanReport,
) -> Result<ConcreteWitness, WireError> {
    let wire = fields_to_wire(layout, &report.witness_fields)?;
    Ok(ConcreteWitness {
        index,
        server_path_id: report.server_path_id,
        fields: report.witness_fields.clone(),
        wire,
    })
}

/// A fully concretized multi-message session witness: one wire buffer per
/// session slot, ready for in-order injection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionWitness {
    /// Index of the originating report in discovery order.
    pub index: usize,
    /// Id of the accepting session server path the witness was found on.
    pub server_path_id: usize,
    /// Per-slot concrete field values, in slot order.
    pub fields: Vec<Vec<u64>>,
    /// Per-slot big-endian wire encodings of `fields`.
    pub wire: Vec<Vec<u8>>,
}

impl SessionWitness {
    /// Number of session slots.
    pub fn slots(&self) -> usize {
        self.fields.len()
    }

    /// The concatenated field values (the flat form reports and the corpus
    /// use).
    pub fn flattened_fields(&self) -> Vec<u64> {
        self.fields.iter().flatten().copied().collect()
    }
}

/// Concretizes a session-Trojan report — whose `witness_fields` carry the
/// whole session, slot fields concatenated in slot order — into per-slot
/// injectable wire buffers.
///
/// # Errors
///
/// Returns a [`WireError`] if any slot layout cannot be wire-encoded.
///
/// # Panics
///
/// Panics if the report's arity does not match the slot layouts.
pub fn session_from_report(
    layouts: &[Arc<MessageLayout>],
    index: usize,
    report: &TrojanReport,
) -> Result<SessionWitness, WireError> {
    let counts: Vec<usize> = layouts.iter().map(|l| l.num_fields()).collect();
    let fields = achilles::export::split_fields_by_counts(&report.witness_fields, &counts);
    let wire = fields
        .iter()
        .zip(layouts)
        .map(|(slot, layout)| fields_to_wire(layout, slot))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SessionWitness {
        index,
        server_path_id: report.server_path_id,
        fields,
        wire,
    })
}

/// Concretizes a raw solver [`Model`] over a (possibly symbolic) server
/// message — the path for callers that hold a satisfying model rather than
/// a finished report (e.g. re-deriving a witness from a stored constraint
/// set). Unassigned variables default to zero, like
/// [`SymMessage::concretize`].
///
/// # Errors
///
/// Returns a [`WireError`] if the layout cannot be wire-encoded.
pub fn from_model(
    pool: &TermPool,
    msg: &SymMessage,
    model: &Model,
    index: usize,
    server_path_id: usize,
) -> Result<ConcreteWitness, WireError> {
    let fields = msg.concretize(pool, model);
    let wire = fields_to_wire(msg.layout(), &fields)?;
    Ok(ConcreteWitness {
        index,
        server_path_id,
        fields,
        wire,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::Width;

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("m")
            .field("op", Width::W8)
            .field("key", Width::W16)
            .build()
    }

    #[test]
    fn wire_round_trip() {
        let l = layout();
        let fields = vec![0x41, 0x1234];
        let wire = fields_to_wire(&l, &fields).unwrap();
        assert_eq!(wire, vec![0x41, 0x12, 0x34]);
        assert_eq!(wire_to_fields(&l, &wire).unwrap(), fields);
    }

    #[test]
    fn report_concretization_carries_provenance() {
        let l = layout();
        let report = TrojanReport {
            server_path_id: 7,
            constraints: vec![],
            witness_fields: vec![1, 2000],
            active_clients: 0,
            verified: true,
            found_at: std::time::Duration::ZERO,
            notes: vec![],
        };
        let w = from_report(&l, 3, &report).unwrap();
        assert_eq!(w.index, 3);
        assert_eq!(w.server_path_id, 7);
        assert_eq!(w.fields, vec![1, 2000]);
        assert_eq!(w.wire, vec![1, 0x07, 0xD0]);
    }

    #[test]
    fn model_concretization_evaluates_symbolic_fields() {
        let mut pool = TermPool::new();
        let l = layout();
        let msg = SymMessage::fresh(&mut pool, &l, "w");
        let mut model = Model::new();
        // Assign only the first field's variable; the second defaults to 0.
        let vars = pool.vars_of(msg.value(0));
        model.assign(vars[0], 0x42);
        let w = from_model(&pool, &msg, &model, 0, 1).unwrap();
        assert_eq!(w.fields, vec![0x42, 0]);
        assert_eq!(w.wire, vec![0x42, 0, 0]);
    }

    #[test]
    fn sub_byte_layouts_are_rejected() {
        let l = MessageLayout::builder("b")
            .field("flag", Width::BOOL)
            .build();
        assert!(fields_to_wire(&l, &[1]).is_err());
    }
}
