//! The canned FSP Trojan analysis (paper §6.2).
//!
//! Wires the eight client utilities and the server into the Achilles
//! pipeline, classifies the resulting Trojan reports into the two families
//! of §6.3 (mismatched string lengths, wildcard), and provides the paper's
//! counting arithmetic: with path lengths bounded below 5 there are exactly
//! `(1 + 2 + 3 + 4) × 8 = 80` mismatched-length Trojan classes.

use std::time::Duration;

use achilles::{
    prepare_client_workers, run_trojan_search, ClientPredicate, FieldMask, MatchSample,
    Optimizations, PreparedClient, TrojanReport, TrojanSearchStats, WorkerSummary,
};
use achilles_solver::{Solver, TermPool};
use achilles_symvm::{ExploreConfig, ExploreStats, SymMessage};

use crate::client::{extract_client_predicate, FspClientConfig};
use crate::protocol::{layout, Command, FspMessage, MAX_PATH, WILDCARD};
use crate::server::{FspServer, FspServerConfig};

/// Which §6.3 bug a Trojan report exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrojanFamily {
    /// Real path length shorter than `bb_len` (extra-payload smuggling).
    LengthMismatch {
        /// The command of the witness.
        cmd: Command,
        /// Reported length (`bb_len`).
        reported: usize,
        /// True length (position of the first NUL).
        actual: usize,
    },
    /// A literal `*` in the path (correct clients always glob-expand).
    Wildcard {
        /// The command of the witness.
        cmd: Command,
    },
    /// Neither pattern (unexpected for FSP).
    Other,
}

/// Classifies a Trojan report by inspecting its concrete witness.
pub fn classify(report: &TrojanReport) -> TrojanFamily {
    let msg = FspMessage::from_field_values(&report.witness_fields);
    let cmd = match Command::from_code(msg.cmd) {
        Some(c) => c,
        None => return TrojanFamily::Other,
    };
    let reported = (msg.bb_len as usize).min(MAX_PATH);
    let actual = msg.buf[..reported]
        .iter()
        .position(|&b| b == 0)
        .unwrap_or(reported);
    if actual < reported {
        return TrojanFamily::LengthMismatch {
            cmd,
            reported,
            actual,
        };
    }
    if msg.buf[..actual].contains(&WILDCARD) {
        return TrojanFamily::Wildcard { cmd };
    }
    TrojanFamily::Other
}

/// The number of mismatched-length Trojan classes the bounded protocol
/// admits — the paper's §6.2 arithmetic: for each reported length `L` there
/// are `L` possible true lengths, summed over lengths and the eight
/// utilities: `(1+2+3+4) × 8 = 80`.
pub fn expected_length_mismatch_trojans(commands: usize) -> usize {
    commands * (1..=MAX_PATH).sum::<usize>()
}

/// The number of wildcard Trojan *paths* (one per exact-length accepting
/// path) when glob expansion is modeled: `MAX_PATH × commands`.
pub fn expected_wildcard_trojans(commands: usize) -> usize {
    commands * MAX_PATH
}

/// Configuration of one FSP analysis run.
#[derive(Clone, Debug)]
pub struct FspAnalysisConfig {
    /// Utilities/commands analyzed (default: the paper's eight).
    pub commands: Vec<Command>,
    /// Client-side config (glob expansion on/off).
    pub client: FspClientConfig,
    /// Server-side config (bug patches for control experiments).
    pub server: FspServerConfig,
    /// Optimization toggles.
    pub optimizations: Optimizations,
    /// Verify each witness against every client path predicate.
    pub verify_witnesses: bool,
    /// Worker threads for the server analysis (1 = sequential).
    pub workers: usize,
}

impl Default for FspAnalysisConfig {
    fn default() -> FspAnalysisConfig {
        FspAnalysisConfig {
            commands: Command::ANALYSIS_SET.to_vec(),
            client: FspClientConfig::default(),
            server: FspServerConfig::default(),
            optimizations: Optimizations::default(),
            verify_witnesses: true,
            workers: 1,
        }
    }
}

impl FspAnalysisConfig {
    /// The §6.2 accuracy setup: eight utilities, no glob modeling (isolates
    /// the 80 mismatched-length classes), full optimizations, verification.
    pub fn accuracy() -> FspAnalysisConfig {
        FspAnalysisConfig::default()
    }

    /// The §6.3 wildcard setup: glob expansion modeled, so literal `*`
    /// becomes un-generable and the wildcard family appears.
    pub fn wildcard() -> FspAnalysisConfig {
        FspAnalysisConfig {
            client: FspClientConfig {
                glob_expansion: true,
                ..FspClientConfig::default()
            },
            ..FspAnalysisConfig::default()
        }
    }

    /// Fans the server analysis out over `n` work-stealing workers.
    pub fn with_workers(mut self, n: usize) -> FspAnalysisConfig {
        self.workers = n.max(1);
        self
    }

    /// Restricts the analysis to `n` commands (smaller, faster runs).
    pub fn with_commands(mut self, n: usize) -> FspAnalysisConfig {
        self.commands.truncate(n.max(1));
        // The server must dispatch the same subset or client messages for
        // missing commands would all become trivially Trojan.
        self.server.commands = self.commands.clone();
        self
    }
}

/// Everything one FSP analysis produces.
#[derive(Debug)]
pub struct FspAnalysisResult {
    /// The merged client predicate.
    pub client: ClientPredicate,
    /// The symbolic server message.
    pub server_msg: SymMessage,
    /// Trojan reports in discovery order.
    pub trojans: Vec<TrojanReport>,
    /// Per-report family classification (parallel to `trojans`).
    pub families: Vec<TrojanFamily>,
    /// Time gathering the client predicate.
    pub client_time: Duration,
    /// Time pre-processing (negations + differentFrom).
    pub preprocess_time: Duration,
    /// Time analyzing the server.
    pub server_time: Duration,
    /// Figure 11 samples.
    pub samples: Vec<MatchSample>,
    /// Search counters.
    pub search_stats: TrojanSearchStats,
    /// Server exploration counters.
    pub explore_stats: ExploreStats,
    /// Completed (non-pruned) server paths.
    pub server_paths: usize,
    /// Per-worker server-analysis breakdown (one entry when sequential).
    pub worker_stats: Vec<WorkerSummary>,
}

impl FspAnalysisResult {
    /// Reports in the mismatched-length family.
    pub fn length_mismatches(&self) -> usize {
        self.families
            .iter()
            .filter(|f| matches!(f, TrojanFamily::LengthMismatch { .. }))
            .count()
    }

    /// Reports in the wildcard family.
    pub fn wildcards(&self) -> usize {
        self.families
            .iter()
            .filter(|f| matches!(f, TrojanFamily::Wildcard { .. }))
            .count()
    }

    /// Reports classified as neither family (should be zero for FSP).
    pub fn others(&self) -> usize {
        self.families
            .iter()
            .filter(|f| matches!(f, TrojanFamily::Other))
            .count()
    }

    /// Reports whose witness failed client-side verification (false
    /// positives if any existed).
    pub fn unverified(&self) -> usize {
        self.trojans.iter().filter(|t| !t.verified).count()
    }
}

/// Runs the full FSP analysis pipeline (client → preprocess → server) on a
/// fresh pool and solver.
///
/// Deprecated shim: this predates the protocol-agnostic API and now
/// delegates to [`AchillesSession`](achilles::AchillesSession) over
/// [`FspSpec`](crate::FspSpec); prefer driving the session (or the
/// registry) directly in new code.
pub fn run_analysis(config: &FspAnalysisConfig) -> FspAnalysisResult {
    let spec = crate::target::FspSpec::new(config.clone());
    let report = achilles::AchillesSession::new(&spec).run();
    let families = report.trojans.iter().map(classify).collect();
    FspAnalysisResult {
        client: report.client,
        server_msg: report.server_msg,
        trojans: report.trojans,
        families,
        client_time: report.phase_times.client,
        preprocess_time: report.phase_times.preprocess,
        server_time: report.phase_times.server,
        samples: report.samples,
        search_stats: report.search_stats,
        explore_stats: report.server_explore,
        server_paths: report.server_paths,
        worker_stats: report.server_workers,
    }
}

/// [`run_analysis`] against caller-provided pool/solver (lets benches share
/// warm caches or inspect terms afterwards).
pub fn run_analysis_with(
    pool: &mut TermPool,
    solver: &mut Solver,
    config: &FspAnalysisConfig,
) -> FspAnalysisResult {
    use std::time::Instant;
    let t0 = Instant::now();
    let client = extract_client_predicate(
        pool,
        solver,
        &config.commands,
        &config.client,
        &ExploreConfig::default(),
    );
    let t1 = Instant::now();
    let server_msg = SymMessage::fresh(pool, &layout(), "msg");
    let prepared: PreparedClient = prepare_client_workers(
        pool,
        solver,
        client,
        server_msg.clone(),
        FieldMask::none(),
        config.optimizations,
        config.workers.max(1),
    );
    let t2 = Instant::now();
    let explore = ExploreConfig {
        recv_script: vec![server_msg.clone()],
        workers: config.workers.max(1),
        ..ExploreConfig::default()
    };
    let outcome = run_trojan_search(
        pool,
        solver,
        &prepared,
        &FspServer::new(config.server.clone()),
        explore,
        config.optimizations,
        config.verify_witnesses,
    );
    let t3 = Instant::now();
    let families = outcome.reports.iter().map(classify).collect();
    FspAnalysisResult {
        client: prepared.client.clone(),
        server_msg,
        trojans: outcome.reports,
        families,
        client_time: t1 - t0,
        preprocess_time: t2 - t1,
        server_time: t3 - t2,
        samples: outcome.samples,
        search_stats: outcome.stats,
        explore_stats: outcome.explore,
        server_paths: outcome.server_paths,
        worker_stats: outcome.workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_command_accuracy_run_finds_all_length_trojans() {
        // Scaled-down accuracy experiment: 2 commands → 2 × (1+2+3+4) = 20
        // mismatched-length Trojans, zero false positives.
        let config = FspAnalysisConfig::accuracy().with_commands(2);
        let result = run_analysis(&config);
        assert_eq!(result.client.len(), 2 * MAX_PATH);
        assert_eq!(result.trojans.len(), expected_length_mismatch_trojans(2));
        assert_eq!(result.length_mismatches(), 20);
        assert_eq!(result.wildcards(), 0);
        assert_eq!(result.others(), 0);
        assert_eq!(result.unverified(), 0, "no false positives (Table 1)");
    }

    #[test]
    fn wildcard_mode_discovers_the_glob_bug() {
        let config = FspAnalysisConfig::wildcard().with_commands(1);
        let result = run_analysis(&config);
        assert_eq!(
            result.length_mismatches(),
            expected_length_mismatch_trojans(1)
        );
        assert_eq!(result.wildcards(), expected_wildcard_trojans(1));
        assert_eq!(result.others(), 0);
        assert_eq!(result.unverified(), 0);
    }

    #[test]
    fn patched_server_has_no_length_trojans() {
        let mut config = FspAnalysisConfig::accuracy().with_commands(1);
        config.server.check_actual_length = true;
        let result = run_analysis(&config);
        assert_eq!(result.length_mismatches(), 0, "patch closes the family");
        assert_eq!(result.trojans.len(), 0);
    }

    #[test]
    fn fully_patched_server_in_wildcard_mode_is_clean() {
        let mut config = FspAnalysisConfig::wildcard().with_commands(1);
        config.server.check_actual_length = true;
        config.server.reject_wildcards = true;
        let result = run_analysis(&config);
        assert_eq!(result.trojans.len(), 0, "both patches close all Trojans");
    }

    #[test]
    fn samples_show_predicate_narrowing() {
        let config = FspAnalysisConfig::accuracy().with_commands(2);
        let result = run_analysis(&config);
        assert!(!result.samples.is_empty());
        let max_match = result.samples.iter().map(|s| s.matching).max().unwrap();
        let min_match = result.samples.iter().map(|s| s.matching).min().unwrap();
        assert_eq!(
            max_match,
            result.client.len(),
            "short paths match everything"
        );
        assert!(min_match < max_match, "long paths match fewer predicates");
        // Deep samples never match more than shallow ones on average
        // (Figure 11's downward trend).
        let shallow: Vec<_> = result
            .samples
            .iter()
            .filter(|s| s.path_len <= 2)
            .map(|s| s.matching)
            .collect();
        let deep: Vec<_> = result
            .samples
            .iter()
            .filter(|s| s.path_len >= 8)
            .map(|s| s.matching)
            .collect();
        let avg = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len().max(1) as f64;
        assert!(avg(&deep) < avg(&shallow), "matching decreases with depth");
    }

    #[test]
    fn classification_reads_witnesses() {
        let mut msg = FspMessage::request(Command::DelFile, b"ab");
        msg.bb_len = 3;
        msg.buf = [b'a', 0, b'x', 0];
        let report = TrojanReport {
            server_path_id: 0,
            constraints: vec![],
            witness_fields: msg.field_values(),
            active_clients: 0,
            verified: true,
            found_at: Duration::ZERO,
            notes: vec![],
        };
        assert_eq!(
            classify(&report),
            TrojanFamily::LengthMismatch {
                cmd: Command::DelFile,
                reported: 3,
                actual: 1
            }
        );
        let star = FspMessage::request(Command::Stat, b"a*");
        let report2 = TrojanReport {
            witness_fields: star.field_values(),
            ..report
        };
        assert_eq!(
            classify(&report2),
            TrojanFamily::Wildcard { cmd: Command::Stat }
        );
    }
}
