//! The FSP server node program.
//!
//! One event-loop iteration of the FSP daemon: receive a command datagram,
//! validate it, perform the requested filesystem action, reply. The model
//! follows the real fspd control flow at the decision level and contains
//! **both Trojan vulnerabilities** the paper found (§6.3):
//!
//! * **Mismatched string lengths** — the server locates the end of the file
//!   path by scanning for NUL but never checks that the scan length equals
//!   `bb_len`; messages whose real path is shorter than `bb_len` are
//!   accepted, letting senders smuggle arbitrary extra payload.
//! * **Wildcard asymmetry** — the server treats `*` as an ordinary path
//!   character, although correct clients always glob-expand it and can
//!   therefore never send it in a source path.
//!
//! Setting [`FspServerConfig::check_actual_length`] /
//! [`FspServerConfig::reject_wildcards`] "patches" either bug, which the
//! tests use to show the corresponding Trojans disappear.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use achilles_netsim::SimFs;
use achilles_solver::Width;
use achilles_symvm::{NodeProgram, PathResult, SymEnv, SymMessage};

use crate::protocol::{
    layout, Command, BYPASS_VALUE, MAX_PATH, PRINTABLE_MAX, PRINTABLE_MIN, WILDCARD,
};

/// Reply codes sent by the concrete server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplyCode {
    /// Action performed.
    Ok = 0,
    /// Action failed (missing file, etc.).
    Err = 1,
}

/// The reply message layout (code + up to four data bytes).
pub fn reply_layout() -> std::sync::Arc<achilles_symvm::MessageLayout> {
    achilles_symvm::MessageLayout::builder("fsp_reply")
        .field("code", Width::W8)
        .byte_array("data", MAX_PATH)
        .build()
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct FspServerConfig {
    /// Commands the server dispatches on.
    pub commands: Vec<Command>,
    /// Patch for the mismatched-length bug: reject paths whose NUL-scan
    /// length differs from `bb_len`.
    pub check_actual_length: bool,
    /// Patch for the wildcard bug: reject `*` in received paths.
    pub reject_wildcards: bool,
    /// Depth of state-dependent processing after a *well-formed* path is
    /// parsed (directory walks, cache lookups, block arithmetic in the real
    /// fspd). Each level branches on server-local state, so vanilla
    /// symbolic execution explores `2^depth` continuations per valid parse
    /// — the subtrees Achilles' Trojan-set pruning skips (Figure 7). Zero
    /// (the default) keeps the parse-only model of the accuracy experiment.
    pub post_parse_branching: usize,
}

impl Default for FspServerConfig {
    fn default() -> FspServerConfig {
        FspServerConfig {
            commands: Command::ANALYSIS_SET.to_vec(),
            check_actual_length: false,
            reject_wildcards: false,
            post_parse_branching: 0,
        }
    }
}

/// The FSP server node program.
///
/// In symbolic analyses the filesystem is absent and accepting paths stop at
/// the accept marker — exactly where the paper places its markers ("at the
/// point where it invokes system calls to make changes to its local file
/// system"). With [`FspServer::with_fs`], concrete runs additionally perform
/// the filesystem action and send a reply, which the impact demos use.
#[derive(Clone, Debug, Default)]
pub struct FspServer {
    config: FspServerConfig,
    fs: Option<Arc<Mutex<SimFs>>>,
    protections: Arc<Mutex<HashMap<String, u8>>>,
}

impl FspServer {
    /// A server for symbolic analysis (no filesystem effects).
    pub fn new(config: FspServerConfig) -> FspServer {
        FspServer {
            config,
            fs: None,
            protections: Arc::default(),
        }
    }

    /// A concrete server operating on `fs`.
    pub fn with_fs(config: FspServerConfig, fs: Arc<Mutex<SimFs>>) -> FspServer {
        FspServer {
            config,
            fs: Some(fs),
            protections: Arc::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FspServerConfig {
        &self.config
    }

    /// A genuinely independent copy of this server operating on `fs`.
    ///
    /// The derived `Clone` aliases the filesystem and protection-table
    /// `Arc`s (fine for sharing one live server); snapshot/restore needs
    /// the opposite — deep copies that evolve independently. The caller
    /// supplies the already-deep-copied filesystem handle; the protection
    /// table is deep-copied here.
    pub fn deep_clone_onto(&self, fs: Arc<Mutex<SimFs>>) -> FspServer {
        let protections = self
            .protections
            .lock()
            .expect("protection table lock")
            .clone();
        FspServer {
            config: self.config.clone(),
            fs: Some(fs),
            protections: Arc::new(Mutex::new(protections)),
        }
    }

    fn handle_command(
        &self,
        env: &mut SymEnv<'_>,
        cmd: Command,
        msg: &SymMessage,
    ) -> PathResult<()> {
        env.note(format!("cmd={}", cmd.utility_name()));
        let len = msg.field("bb_len");

        // The datagram length pins bb_len: fspd validates the header length
        // against the UDP packet size, so each reported length is its own
        // path.
        let mut reported: Option<usize> = None;
        for l in 1..=MAX_PATH {
            let lc = env.constant(l as u64, Width::W16);
            if env.if_eq(len, lc)? {
                reported = Some(l);
                break;
            }
        }
        let reported = match reported {
            Some(l) => l,
            None => return Ok(()), // len == 0 or len > MAX_PATH: drop
        };
        env.note(format!("len={reported}"));

        // Scan the path: NUL terminates early, other bytes must be printable.
        let zero = env.constant(0, Width::W8);
        let pmin = env.constant(u64::from(PRINTABLE_MIN), Width::W8);
        let pmax = env.constant(u64::from(PRINTABLE_MAX), Width::W8);
        let star = env.constant(u64::from(WILDCARD), Width::W8);
        let mut actual = reported;
        for i in 0..reported {
            let b = msg.field(&format!("buf[{i}]"));
            if env.if_eq(b, zero)? {
                actual = i;
                break;
            }
            if env.if_ult(b, pmin)? {
                return Ok(()); // unprintable: drop
            }
            if env.if_ult(pmax, b)? {
                return Ok(());
            }
            if self.config.reject_wildcards && env.if_eq(b, star)? {
                return Ok(()); // patched server refuses wildcards
            }
        }
        if actual < reported {
            env.note(format!("nul_at={actual}"));
            // SECURITY BUG (mismatched string lengths): the real length is
            // shorter than bb_len, yet the message is processed; bytes
            // buf[actual+1..reported] travel as unvalidated extra payload.
            if self.config.check_actual_length {
                return Ok(()); // patched server drops the message
            }
        } else {
            env.note("exact");
            // Well-formed path: the server now does real work against its
            // local state (directory lookups, cache checks, …). Each level
            // branches on server-local conditions, not on the message, so
            // the subtree carries no new Trojan opportunities — exactly the
            // kind of exploration the incremental search prunes away.
            for level in 0..self.config.post_parse_branching {
                let state_bit = env.sym(&format!("state.proc{level}"), Width::BOOL);
                let _ = env.branch(state_bit)?;
            }
        }

        // The message passed parsing: the server acts on it. This is where
        // the paper sets its accept markers.
        env.mark_accept();
        self.perform(env, cmd, msg, actual)?;
        Ok(())
    }

    /// Executes the filesystem action and replies (concrete runs only).
    fn perform(
        &self,
        env: &mut SymEnv<'_>,
        cmd: Command,
        msg: &SymMessage,
        actual_len: usize,
    ) -> PathResult<()> {
        let fs = match &self.fs {
            Some(fs) => Arc::clone(fs),
            None => return Ok(()), // symbolic analysis: stop at the marker
        };
        // Extract the concrete path (the wildcard stays literal: the server
        // has no globbing).
        let mut bytes = Vec::with_capacity(actual_len);
        for i in 0..actual_len {
            match env.pool().as_const(msg.field(&format!("buf[{i}]"))) {
                Some(b) => bytes.push(b as u8),
                None => return Ok(()), // symbolic path: nothing to execute
            }
        }
        let path = format!("/{}", String::from_utf8_lossy(&bytes));
        let mut fs = fs.lock().expect("state lock poisoned");
        let (code, data) = match cmd {
            Command::GetDir => match fs.list(&path) {
                Ok(entries) => (ReplyCode::Ok, entries.len() as u64),
                Err(_) => (ReplyCode::Err, 0),
            },
            Command::GetFile => match fs.read(&path) {
                Ok(content) => (ReplyCode::Ok, content.len() as u64),
                Err(_) => (ReplyCode::Err, 0),
            },
            Command::DelFile => match fs.remove_file(&path) {
                Ok(()) => (ReplyCode::Ok, 0),
                Err(_) => (ReplyCode::Err, 0),
            },
            Command::DelDir => match fs.rmdir(&path) {
                Ok(()) => (ReplyCode::Ok, 0),
                Err(_) => (ReplyCode::Err, 0),
            },
            Command::MakeDir => match fs.mkdir(&path) {
                Ok(()) => (ReplyCode::Ok, 0),
                Err(_) => (ReplyCode::Err, 0),
            },
            Command::GetPro => {
                let bits = *self
                    .protections
                    .lock()
                    .expect("state lock poisoned")
                    .get(&path)
                    .unwrap_or(&0);
                (ReplyCode::Ok, u64::from(bits))
            }
            Command::SetPro => {
                self.protections
                    .lock()
                    .expect("state lock poisoned")
                    .insert(path.clone(), 1);
                (ReplyCode::Ok, 1)
            }
            Command::Stat => {
                if fs.exists(&path) {
                    (ReplyCode::Ok, 1)
                } else {
                    (ReplyCode::Err, 0)
                }
            }
            Command::Install => match fs.write(&path, b"") {
                Ok(()) => (ReplyCode::Ok, 0),
                Err(_) => (ReplyCode::Err, 0),
            },
        };
        drop(fs);
        let reply = {
            let rl = reply_layout();
            let mut values = vec![code as u64];
            values.extend((0..MAX_PATH as u64).map(|i| (data >> (8 * i)) & 0xff));
            SymMessage::concrete(env.pool_mut(), &rl, &values)
        };
        env.send(reply);
        Ok(())
    }
}

impl NodeProgram for FspServer {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&layout())?;

        // Bypassed integrity fields: correct traffic carries the constant
        // (paper §6.1's annotation approximation).
        let sum_ok = env.constant(BYPASS_VALUE, Width::W8);
        if !env.if_eq(msg.field("sum"), sum_ok)? {
            return Ok(());
        }
        let key_ok = env.constant(BYPASS_VALUE, Width::W16);
        if !env.if_eq(msg.field("bb_key"), key_ok)? {
            return Ok(());
        }
        if !env.if_eq(msg.field("bb_seq"), key_ok)? {
            return Ok(());
        }
        let pos_ok = env.constant(BYPASS_VALUE, Width::W32);
        if !env.if_eq(msg.field("bb_pos"), pos_ok)? {
            return Ok(());
        }

        // Command dispatch.
        for &cmd in &self.config.commands {
            let code = env.constant(u64::from(cmd.code()), Width::W8);
            if env.if_eq(msg.field("cmd"), code)? {
                return self.handle_command(env, cmd, &msg);
            }
        }
        Ok(()) // unknown command: drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FspMessage;
    use achilles_solver::{Solver, TermPool};
    use achilles_symvm::{Executor, ExploreConfig, Verdict};

    fn explore_server(config: FspServerConfig) -> achilles_symvm::ExploreResult {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let (cfg, _msg) = ExploreConfig::with_symbolic_message(&mut pool, &layout(), "msg");
        let mut exec = Executor::new(&mut pool, &mut solver, cfg);
        exec.explore(&FspServer::new(config))
    }

    #[test]
    fn accepting_path_census_matches_the_arithmetic() {
        // Per command: Σ_{L=1..4} (L NUL positions + 1 exact) = 14 accepting
        // paths; eight commands → 112. This is the denominator behind the
        // paper's 80 length-mismatch Trojans (8 × Σ L = 80 of these paths
        // have a NUL before bb_len).
        let result = explore_server(FspServerConfig::default());
        let accepting = result.accepting().count();
        assert_eq!(accepting, 8 * 14, "14 accepting paths per command");
        let nul_paths = result
            .accepting()
            .filter(|p| p.notes.iter().any(|n| n.starts_with("nul_at=")))
            .count();
        assert_eq!(nul_paths, 8 * 10, "the 80 mismatched-length Trojan paths");
    }

    #[test]
    fn patched_length_check_removes_nul_paths() {
        let result = explore_server(FspServerConfig {
            check_actual_length: true,
            ..FspServerConfig::default()
        });
        let nul_paths = result
            .accepting()
            .filter(|p| p.notes.iter().any(|n| n.starts_with("nul_at=")))
            .count();
        assert_eq!(nul_paths, 0);
        assert_eq!(
            result.accepting().count(),
            8 * 4,
            "only exact-length paths remain"
        );
    }

    #[test]
    fn concrete_delete_executes_on_fs() {
        let fs = Arc::new(Mutex::new(SimFs::new()));
        fs.lock()
            .expect("state lock poisoned")
            .write("/ab", b"x")
            .unwrap();
        let server = FspServer::with_fs(FspServerConfig::default(), Arc::clone(&fs));
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let msg = FspMessage::request(Command::DelFile, b"ab").to_sym(&mut pool);
        let cfg = ExploreConfig {
            recv_script: vec![msg],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, cfg);
        let result = exec.run_concrete(&server);
        assert_eq!(result.paths.len(), 1);
        assert_eq!(result.paths[0].verdict, Verdict::Accept);
        assert!(
            !fs.lock().expect("state lock poisoned").exists("/ab"),
            "file deleted"
        );
        // A reply was sent with code Ok.
        let reply = &result.paths[0].sent[0];
        assert_eq!(
            pool.as_const(reply.field("code")),
            Some(ReplyCode::Ok as u64)
        );
    }

    #[test]
    fn concrete_server_accepts_wildcard_literally() {
        let fs = Arc::new(Mutex::new(SimFs::new()));
        let server = FspServer::with_fs(FspServerConfig::default(), Arc::clone(&fs));
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        // An attacker-injected message: mkdir "d*".
        let msg = FspMessage::request(Command::MakeDir, b"d*").to_sym(&mut pool);
        let cfg = ExploreConfig {
            recv_script: vec![msg],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, cfg);
        let result = exec.run_concrete(&server);
        assert_eq!(result.paths[0].verdict, Verdict::Accept);
        assert!(
            fs.lock().expect("state lock poisoned").exists("/d*"),
            "literal wildcard directory created"
        );
    }

    #[test]
    fn mismatched_length_message_accepted_with_smuggled_payload() {
        let fs = Arc::new(Mutex::new(SimFs::new()));
        fs.lock()
            .expect("state lock poisoned")
            .write("/a", b"x")
            .unwrap();
        let server = FspServer::with_fs(FspServerConfig::default(), Arc::clone(&fs));
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let mut trojan = FspMessage::request(Command::DelFile, b"a");
        trojan.bb_len = 4; // claims 4 bytes
        trojan.buf = [b'a', 0, 0xde, 0xad]; // real path "a" + smuggled bytes
        let msg = trojan.to_sym(&mut pool);
        let cfg = ExploreConfig {
            recv_script: vec![msg],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, cfg);
        let result = exec.run_concrete(&server);
        assert_eq!(result.paths[0].verdict, Verdict::Accept, "Trojan accepted");
        assert!(
            !fs.lock().expect("state lock poisoned").exists("/a"),
            "and it acted on the truncated path"
        );
    }

    #[test]
    fn bad_integrity_fields_rejected() {
        let fs = Arc::new(Mutex::new(SimFs::new()));
        let server = FspServer::with_fs(FspServerConfig::default(), fs);
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let mut bad = FspMessage::request(Command::Stat, b"a");
        bad.bb_key = 7; // wrong key
        let msg = bad.to_sym(&mut pool);
        let cfg = ExploreConfig {
            recv_script: vec![msg],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, cfg);
        let result = exec.run_concrete(&server);
        assert_eq!(result.paths[0].verdict, Verdict::Reject);
    }
}
