//! The FSP client utilities.
//!
//! An FSP deployment ships UNIX-style utilities (`fls`, `fget`, `frm`, …)
//! that parse a command-line file path, apply protocol-specific tweaks, and
//! emit one command message (§6.1). The model reproduces the two behaviours
//! that matter for Trojan analysis:
//!
//! * the utility computes `bb_len` from the *actual* string length of the
//!   path (so correct clients can never produce a mismatched length), and
//! * with globbing enabled, any `*` in the argument is expanded against a
//!   directory listing **before** sending — correct clients can never send a
//!   literal `*` in a source path, and there is no escape character (§6.3).

use achilles::ClientPredicate;
use achilles_solver::{Solver, TermId, TermPool, Width};
use achilles_symvm::{Executor, ExploreConfig, NodeProgram, PathResult, SymEnv, SymMessage};

use crate::protocol::{layout, Command, BYPASS_VALUE, MAX_PATH, WILDCARD};

/// Client-side configuration shared by all utilities.
#[derive(Clone, Debug)]
pub struct FspClientConfig {
    /// Model the glob expansion (`*` never reaches the wire). The accuracy
    /// experiment of §6.2 turns this off to isolate the mismatched-length
    /// family; the §6.3 wildcard analysis turns it on.
    pub glob_expansion: bool,
    /// Directory listing used for glob expansion (file names of length
    /// `1..=MAX_PATH`).
    pub listing: Vec<String>,
}

impl Default for FspClientConfig {
    fn default() -> FspClientConfig {
        FspClientConfig {
            glob_expansion: false,
            listing: vec!["a".into(), "ab".into(), "abc".into()],
        }
    }
}

/// One FSP client utility (e.g. `frm`), modeled as a node program.
#[derive(Clone, Debug)]
pub struct FspClient {
    command: Command,
    config: FspClientConfig,
}

impl FspClient {
    /// The utility issuing `command`.
    pub fn new(command: Command, config: FspClientConfig) -> FspClient {
        FspClient { command, config }
    }

    /// The command this utility issues.
    pub fn command(&self) -> Command {
        self.command
    }

    /// Builds and sends the command message for a path of `len` bytes.
    ///
    /// `path[i]` terms beyond `len` are ignored; the wire padding is fresh
    /// unconstrained garbage (a UDP datagram simply ends after `bb_len`
    /// payload bytes — the padding models "bytes beyond the datagram").
    fn send_command(&self, env: &mut SymEnv<'_>, path: &[TermId], len: usize) -> PathResult<()> {
        debug_assert!((1..=MAX_PATH).contains(&len));
        let cmd = env.constant(u64::from(self.command.code()), Width::W8);
        let sum = env.constant(BYPASS_VALUE, Width::W8);
        let key = env.constant(BYPASS_VALUE, Width::W16);
        let seq = env.constant(BYPASS_VALUE, Width::W16);
        let bb_len = env.constant(len as u64, Width::W16);
        let pos = env.constant(BYPASS_VALUE, Width::W32);
        let mut values = vec![cmd, sum, key, seq, bb_len, pos];
        for (i, &b) in path.iter().take(len).enumerate() {
            let _ = i;
            values.push(b);
        }
        for i in len..MAX_PATH {
            values.push(env.sym(&format!("pad[{i}]"), Width::W8));
        }
        env.send(SymMessage::new(layout(), values));
        Ok(())
    }
}

impl NodeProgram for FspClient {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        // Read the command-line argument: a NUL-terminated string in a
        // MAX_PATH-byte buffer (paper bound).
        let arg: Vec<TermId> = (0..MAX_PATH)
            .map(|i| env.sym(&format!("arg[{i}]"), Width::W8))
            .collect();
        let zero = env.constant(0, Width::W8);

        // strlen: the first NUL ends the argument.
        let mut len = MAX_PATH;
        for (i, &b) in arg.iter().enumerate() {
            if env.if_eq(b, zero)? {
                len = i;
                break;
            }
        }
        if len == 0 {
            env.note("usage-error: empty path");
            return Ok(()); // exit(1): no message
        }

        if self.config.glob_expansion {
            // Scan for a wildcard; the first one triggers expansion.
            let star = env.constant(u64::from(WILDCARD), Width::W8);
            for (i, &b) in arg.iter().take(len).enumerate() {
                if env.if_eq(b, star)? {
                    env.note(format!("glob: star at {i}"));
                    return self.expand_glob(env);
                }
            }
            // Fall through: no wildcard, the argument is sent literally
            // (with per-byte `!= '*'` constraints accumulated above).
        }

        env.note(format!("literal path len={len}"));
        self.send_command(env, &arg, len)
    }
}

impl FspClient {
    /// Glob expansion: the utility fetches a directory listing and sends one
    /// command per matching name. The pattern semantics do not matter for
    /// predicate extraction — what matters is that the *sent* messages carry
    /// concrete expanded names, never `*` (and the expansion source is the
    /// configured listing, over-approximated as "all names match").
    fn expand_glob(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        for name in &self.config.listing {
            let bytes = name.as_bytes();
            if bytes.is_empty() || bytes.len() > MAX_PATH {
                continue;
            }
            let path: Vec<TermId> = bytes
                .iter()
                .map(|&b| env.constant(u64::from(b), Width::W8))
                .collect();
            self.send_command(env, &path, bytes.len())?;
        }
        Ok(())
    }
}

/// Explores every utility in `commands` and merges the client predicates —
/// phase 1 of the FSP analysis.
pub fn extract_client_predicate(
    pool: &mut TermPool,
    solver: &mut Solver,
    commands: &[Command],
    config: &FspClientConfig,
    explore: &ExploreConfig,
) -> ClientPredicate {
    let mut parts = Vec::with_capacity(commands.len());
    for &cmd in commands {
        let client = FspClient::new(cmd, config.clone());
        let mut exec = Executor::new(pool, solver, explore.clone());
        let result = exec.explore(&client);
        parts.push(ClientPredicate::from_exploration(&result));
    }
    ClientPredicate::merge(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BUF_BASE;

    fn harness() -> (TermPool, Solver) {
        (TermPool::new(), Solver::new())
    }

    #[test]
    fn one_predicate_per_argument_length() {
        let (mut pool, mut solver) = harness();
        let pred = extract_client_predicate(
            &mut pool,
            &mut solver,
            &[Command::DelFile],
            &FspClientConfig::default(),
            &ExploreConfig::default(),
        );
        // Lengths 1..=4, one sending path each.
        assert_eq!(pred.len(), MAX_PATH);
        for p in &pred.paths {
            let len = pool
                .as_const(p.message.field("bb_len"))
                .expect("bb_len is concrete");
            assert!((1..=MAX_PATH as u64).contains(&len));
        }
    }

    #[test]
    fn client_length_always_matches_content() {
        // For every client path predicate: bb_len == L implies bytes
        // 0..L are non-NUL — correct clients cannot understate the length.
        let (mut pool, mut solver) = harness();
        let pred = extract_client_predicate(
            &mut pool,
            &mut solver,
            &[Command::Stat],
            &FspClientConfig::default(),
            &ExploreConfig::default(),
        );
        for p in &pred.paths {
            let len = pool.as_const(p.message.field("bb_len")).unwrap() as usize;
            for i in 0..len {
                let byte = p.message.value(BUF_BASE + i);
                let zero = pool.constant(0, Width::W8);
                let is_nul = pool.eq(byte, zero);
                let mut q = p.constraints.clone();
                q.push(is_nul);
                assert!(
                    solver.is_unsat(&mut pool, &q),
                    "byte {i} of a length-{len} client path could be NUL"
                );
            }
        }
    }

    #[test]
    fn globbing_client_never_sends_wildcards() {
        let (mut pool, mut solver) = harness();
        let config = FspClientConfig {
            glob_expansion: true,
            ..FspClientConfig::default()
        };
        let pred = extract_client_predicate(
            &mut pool,
            &mut solver,
            &[Command::DelFile],
            &config,
            &ExploreConfig::default(),
        );
        // Literal paths (4 lengths) + star paths (Σ_{len=1..4} len = 10
        // first-star positions × 3 listing names).
        assert_eq!(pred.len(), 4 + 10 * 3);
        let star = pool.constant(u64::from(WILDCARD), Width::W8);
        for p in &pred.paths {
            let len = pool.as_const(p.message.field("bb_len")).unwrap() as usize;
            for i in 0..len {
                let byte = p.message.value(BUF_BASE + i);
                let is_star = pool.eq(byte, star);
                let mut q = p.constraints.clone();
                q.push(is_star);
                assert!(
                    solver.is_unsat(&mut pool, &q),
                    "a correct client path could send '*' at byte {i}"
                );
            }
        }
    }

    #[test]
    fn non_glob_client_can_send_wildcards() {
        // Without glob modeling, '*' is just a printable byte the user can
        // type — the control for the wildcard experiment.
        let (mut pool, mut solver) = harness();
        let pred = extract_client_predicate(
            &mut pool,
            &mut solver,
            &[Command::DelFile],
            &FspClientConfig::default(),
            &ExploreConfig::default(),
        );
        let star = pool.constant(u64::from(WILDCARD), Width::W8);
        let p = &pred.paths[0];
        let byte = p.message.value(BUF_BASE);
        let is_star = pool.eq(byte, star);
        let mut q = p.constraints.clone();
        q.push(is_star);
        assert!(solver.is_sat(&mut pool, &q));
    }

    #[test]
    fn eight_utilities_merge() {
        let (mut pool, mut solver) = harness();
        let pred = extract_client_predicate(
            &mut pool,
            &mut solver,
            &Command::ANALYSIS_SET,
            &FspClientConfig::default(),
            &ExploreConfig::default(),
        );
        assert_eq!(pred.len(), 8 * MAX_PATH);
        // Indices are contiguous after the merge.
        for (i, p) in pred.paths.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        let _ = pool;
    }
}
