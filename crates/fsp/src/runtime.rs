//! A concrete FSP deployment over the simulated network.
//!
//! Used by the impact demos (§6.3): a stateful server endpoint processing
//! wire datagrams against a persistent [`SimFs`], and a client-side driver
//! that behaves like the real utilities — including glob expansion, which is
//! exactly what makes the wildcard Trojan nasty in practice.

use achilles_netsim::{glob_match, Addr, Network, SimFs};
use achilles_solver::{Solver, TermPool};
use achilles_symvm::{Executor, ExploreConfig, Verdict};
use std::sync::{Arc, Mutex};

use crate::protocol::{Command, FspMessage, MAX_PATH};
use crate::server::{FspServer, FspServerConfig, ReplyCode};

/// A deployed FSP server endpoint: persistent filesystem, datagram in/out.
#[derive(Debug)]
pub struct FspServerRuntime {
    fs: Arc<Mutex<SimFs>>,
    server: FspServer,
    addr: Addr,
    pool: TermPool,
    solver: Solver,
    /// Messages processed.
    pub handled: u64,
    /// Messages accepted (acted upon).
    pub accepted: u64,
}

impl Clone for FspServerRuntime {
    /// A deep copy for snapshot/restore: a fresh filesystem `Arc` (cloned
    /// from the live one) with the server re-bound onto it, so clone and
    /// original evolve independently. The solver is rebuilt empty — it is
    /// a pure query cache, so an empty one is semantically identical.
    fn clone(&self) -> FspServerRuntime {
        let fs = Arc::new(Mutex::new(
            self.fs.lock().expect("state lock poisoned").clone(),
        ));
        FspServerRuntime {
            server: self.server.deep_clone_onto(Arc::clone(&fs)),
            fs,
            addr: self.addr.clone(),
            pool: self.pool.clone(),
            solver: Solver::new(),
            handled: self.handled,
            accepted: self.accepted,
        }
    }
}

impl FspServerRuntime {
    /// Deploys a server with the given initial filesystem.
    ///
    /// Unlike the bounded analysis configuration, a deployed server speaks
    /// the full protocol: `Install` is added to the command set if absent.
    pub fn new(addr: Addr, fs: SimFs, mut config: FspServerConfig) -> FspServerRuntime {
        if !config.commands.contains(&Command::Install) {
            config.commands.push(Command::Install);
        }
        let fs = Arc::new(Mutex::new(fs));
        FspServerRuntime {
            server: FspServer::with_fs(config, Arc::clone(&fs)),
            fs,
            addr,
            pool: TermPool::new(),
            solver: Solver::new(),
            handled: 0,
            accepted: 0,
        }
    }

    /// This endpoint's address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// A snapshot of the server's filesystem.
    pub fn fs(&self) -> SimFs {
        self.fs.lock().expect("state lock poisoned").clone()
    }

    /// Handles one wire datagram, returning the reply (if the message was
    /// accepted and produced one).
    pub fn handle(&mut self, wire: &[u8]) -> Option<(ReplyCode, Vec<u8>)> {
        self.handled += 1;
        let msg = FspMessage::from_wire(wire).ok()?;
        let sym = msg.to_sym(&mut self.pool);
        let config = ExploreConfig {
            recv_script: vec![sym],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut self.pool, &mut self.solver, config);
        let result = exec.run_concrete(&self.server);
        let path = result.paths.first()?;
        if path.verdict != Verdict::Accept {
            return None;
        }
        self.accepted += 1;
        let reply = path.sent.first()?;
        let code = self.pool.as_const(reply.field("code"))?;
        let data: Vec<u8> = (0..MAX_PATH)
            .map(|i| {
                self.pool
                    .as_const(reply.field(&format!("data[{i}]")))
                    .unwrap_or(0) as u8
            })
            .collect();
        let code = if code == ReplyCode::Ok as u64 {
            ReplyCode::Ok
        } else {
            ReplyCode::Err
        };
        Some((code, data))
    }

    /// Drains this endpoint's inbox on `net`, processing every datagram and
    /// replying to the sender.
    pub fn poll(&mut self, net: &mut Network) {
        while let Some(d) = net.recv(&self.addr.clone()) {
            let reply = self.handle(&d.payload);
            if let Some((code, data)) = reply {
                let mut payload = vec![code as u8];
                payload.extend(&data);
                net.send(self.addr.clone(), d.from, payload);
            }
        }
    }
}

/// What a client utility invocation did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UtilityOutcome {
    /// Commands sent for these (possibly glob-expanded) paths.
    Sent(Vec<String>),
    /// The argument expanded to nothing / was empty: nothing sent.
    NothingToDo,
}

/// Runs one correct client utility: glob-expands the argument against the
/// *server's* listing (like `fls`-then-act), then sends one command per
/// resulting path.
///
/// Returns which paths were sent. Mirrors the real utilities' inability to
/// escape `*` (§6.3): if the user's argument contains `*` it is always
/// treated as a pattern.
pub fn run_utility(
    net: &mut Network,
    from: Addr,
    server: &mut FspServerRuntime,
    cmd: Command,
    arg: &str,
) -> UtilityOutcome {
    if arg.is_empty() || arg.len() > MAX_PATH {
        return UtilityOutcome::NothingToDo;
    }
    let paths: Vec<String> = if arg.contains('*') {
        // Glob expansion against the server's root listing — no escape
        // character exists.
        let listing = server.fs().list("/").unwrap_or_default();
        listing
            .into_iter()
            .filter(|name| glob_match(arg, name))
            .collect()
    } else {
        vec![arg.to_string()]
    };
    if paths.is_empty() {
        return UtilityOutcome::NothingToDo;
    }
    for path in &paths {
        let msg = FspMessage::request(cmd, path.as_bytes());
        net.send(from.clone(), server.addr().clone(), msg.to_wire());
    }
    server.poll(net);
    UtilityOutcome::Sent(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deployment() -> (Network, FspServerRuntime, Addr) {
        let mut fs = SimFs::new();
        fs.write("/f1", b"one").unwrap();
        fs.write("/f2", b"two").unwrap();
        let mut net = Network::new();
        let addr = Addr::new("fspd");
        net.register(addr.clone());
        net.register(Addr::new("cli"));
        let server = FspServerRuntime::new(addr, fs, FspServerConfig::default());
        (net, server, Addr::new("cli"))
    }

    #[test]
    fn plain_remove_works() {
        let (mut net, mut server, cli) = deployment();
        let out = run_utility(&mut net, cli, &mut server, Command::DelFile, "f1");
        assert_eq!(out, UtilityOutcome::Sent(vec!["f1".into()]));
        assert!(!server.fs().exists("/f1"));
        assert!(server.fs().exists("/f2"));
    }

    #[test]
    fn glob_remove_expands() {
        let (mut net, mut server, cli) = deployment();
        let out = run_utility(&mut net, cli, &mut server, Command::DelFile, "f*");
        assert_eq!(out, UtilityOutcome::Sent(vec!["f1".into(), "f2".into()]));
        assert_eq!(server.fs().file_count(), 0);
    }

    #[test]
    fn wildcard_trojan_scenario_from_the_paper() {
        // 1. A Trojan message (injected raw — no correct client can build
        //    it) creates a literal file 'f*'.
        let (mut net, mut server, cli) = deployment();
        let trojan = FspMessage::request(Command::Install, b"f*");
        net.send(cli.clone(), server.addr().clone(), trojan.to_wire());
        server.poll(&mut net);
        assert!(
            server.fs().exists("/f*"),
            "Trojan created the wildcard file"
        );

        // 2. A correct user now tries to delete exactly 'f*': the client
        //    glob-expands, so the command wipes ALL f-prefixed files —
        //    including the precious ones.
        let out = run_utility(&mut net, cli, &mut server, Command::DelFile, "f*");
        assert_eq!(
            out,
            UtilityOutcome::Sent(vec!["f*".into(), "f1".into(), "f2".into()]),
            "no way to name only the wildcard file"
        );
        assert_eq!(
            server.fs().file_count(),
            0,
            "collateral damage: everything deleted"
        );
    }

    #[test]
    fn smuggled_payload_is_ignored_but_accepted() {
        let (mut net, mut server, cli) = deployment();
        let _ = (&mut net, &cli);
        let mut trojan = FspMessage::request(Command::Stat, b"f1");
        trojan.bb_len = 4;
        trojan.buf = [b'f', b'1', 0, 0x99]; // NUL + smuggled byte
        let reply = server.handle(&trojan.to_wire());
        assert!(reply.is_some(), "mismatched-length message accepted");
        assert_eq!(server.accepted, 1);
    }

    #[test]
    fn reply_codes_surface_errors() {
        let (mut net, mut server, cli) = deployment();
        let _ = (&mut net, &cli);
        let msg = FspMessage::request(Command::DelFile, b"none");
        let (code, _) = server.handle(&msg.to_wire()).unwrap();
        assert_eq!(code, ReplyCode::Err, "missing file reports an error");
    }
}
