//! Fast concrete oracles for FSP messages.
//!
//! The fuzzing baseline (§6.2) needs to classify millions of concrete
//! messages per minute, far beyond what driving the symbolic executor with
//! concrete inputs can do. These plain-Rust mirrors of the server-accept
//! and client-generability decisions are the fuzzer's oracles; property
//! tests (in `tests/cross_crate_props.rs`) check them against the symbolic
//! node programs on random messages, so the baselines and Achilles are
//! measured against the same semantics.

use crate::protocol::{
    Command, FspMessage, BYPASS_VALUE, MAX_PATH, PRINTABLE_MAX, PRINTABLE_MIN, WILDCARD,
};
use crate::server::FspServerConfig;

/// Whether the FSP server accepts `msg` — a concrete mirror of
/// [`FspServer`](crate::server::FspServer)'s decision sequence.
pub fn server_accepts(msg: &FspMessage, config: &FspServerConfig) -> bool {
    if u64::from(msg.sum) != BYPASS_VALUE
        || u64::from(msg.bb_key) != BYPASS_VALUE
        || u64::from(msg.bb_seq) != BYPASS_VALUE
        || u64::from(msg.bb_pos) != BYPASS_VALUE
    {
        return false;
    }
    let Some(cmd) = Command::from_code(msg.cmd) else {
        return false;
    };
    if !config.commands.contains(&cmd) {
        return false;
    }
    let reported = msg.bb_len as usize;
    if reported == 0 || reported > MAX_PATH {
        return false;
    }
    let mut actual = reported;
    for i in 0..reported {
        let b = msg.buf[i];
        if b == 0 {
            actual = i;
            break;
        }
        if !(PRINTABLE_MIN..=PRINTABLE_MAX).contains(&b) {
            return false;
        }
        if config.reject_wildcards && b == WILDCARD {
            return false;
        }
    }
    if actual < reported && config.check_actual_length {
        return false;
    }
    true
}

/// Whether a correct client (any of the eight utilities) can generate
/// `msg` — a concrete mirror of [`FspClient`](crate::client::FspClient).
///
/// `glob_expansion` mirrors [`FspClientConfig::glob_expansion`]
/// (clients that glob can never send a literal `*`).
///
/// [`FspClientConfig::glob_expansion`]: crate::client::FspClientConfig
pub fn client_can_generate(msg: &FspMessage, glob_expansion: bool) -> bool {
    if u64::from(msg.sum) != BYPASS_VALUE
        || u64::from(msg.bb_key) != BYPASS_VALUE
        || u64::from(msg.bb_seq) != BYPASS_VALUE
        || u64::from(msg.bb_pos) != BYPASS_VALUE
    {
        return false;
    }
    let Some(cmd) = Command::from_code(msg.cmd) else {
        return false;
    };
    if !Command::ANALYSIS_SET.contains(&cmd) {
        return false;
    }
    let len = msg.bb_len as usize;
    if len == 0 || len > MAX_PATH {
        return false;
    }
    // The client computes bb_len from strlen: every path byte is non-NUL
    // (and never a wildcard when globbing is modeled). Padding beyond the
    // path is arbitrary.
    msg.buf[..len]
        .iter()
        .all(|&b| b != 0 && !(glob_expansion && b == WILDCARD))
}

/// Whether `msg` is a Trojan message: accepted by the server but not
/// generable by any correct client.
pub fn is_trojan(msg: &FspMessage, server: &FspServerConfig, glob_expansion: bool) -> bool {
    server_accepts(msg, server) && !client_can_generate(msg, glob_expansion)
}

/// Closed-form count of Trojan messages in the fuzzed sub-space (the §6.2
/// arithmetic: the paper counts 66 million Trojans among `256^8` fuzzed
/// byte combinations; this computes the analogue for our bounds).
///
/// The fuzzed bytes are `cmd` (1 B), `bb_len` (2 B) and `buf`
/// ([`MAX_PATH`] B); the remaining fields are held at their valid bypass
/// constants, mirroring the paper's "we only fuzz the same message fields
/// that are analyzed".
pub fn trojan_count_in_fuzz_space(glob_expansion: bool) -> u64 {
    let printable = u64::from(PRINTABLE_MAX - PRINTABLE_MIN) + 1; // 94
    let non_wildcard_printable = printable - 1;
    let byte_any = 256u64;
    let mut total = 0u64;
    for _cmd in Command::ANALYSIS_SET {
        for reported in 1..=MAX_PATH as u64 {
            // Mismatched length: NUL at t < reported, printable prefix,
            // arbitrary bytes after the NUL.
            for t in 0..reported {
                let prefix = if glob_expansion {
                    // Prefix bytes may include '*' (still Trojan by length).
                    printable.pow(t as u32)
                } else {
                    printable.pow(t as u32)
                };
                let tail = byte_any.pow((MAX_PATH as u64 - t - 1) as u32);
                total += prefix * tail;
            }
            // Wildcard family (glob mode only): exact length, at least one
            // '*' among the path bytes; padding beyond `reported` arbitrary.
            if glob_expansion {
                let all = printable.pow(reported as u32);
                let without_star = non_wildcard_printable.pow(reported as u32);
                let tail = byte_any.pow((MAX_PATH as u64 - reported) as u32);
                total += (all - without_star) * tail;
            }
        }
    }
    total
}

/// Size of the fuzzed sub-space: `cmd`(1 B) × `bb_len`(2 B) × `buf` bytes.
pub fn fuzz_space_size() -> f64 {
    // 256^(1 + 2 + MAX_PATH) — as f64 since it overflows u64 for larger
    // bounds.
    256f64.powi(1 + 2 + MAX_PATH as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid(cmd: Command, path: &[u8]) -> FspMessage {
        FspMessage::request(cmd, path)
    }

    #[test]
    fn accepts_valid_requests() {
        let config = FspServerConfig::default();
        assert!(server_accepts(&valid(Command::DelFile, b"abc"), &config));
        assert!(client_can_generate(&valid(Command::DelFile, b"abc"), false));
        assert!(!is_trojan(&valid(Command::DelFile, b"abc"), &config, false));
    }

    #[test]
    fn detects_length_mismatch_trojans() {
        let config = FspServerConfig::default();
        let mut msg = valid(Command::Stat, b"a");
        msg.bb_len = 3;
        msg.buf = [b'a', 0, 0x77, 0];
        assert!(server_accepts(&msg, &config));
        assert!(!client_can_generate(&msg, false));
        assert!(is_trojan(&msg, &config, false));
        // The patched server rejects it.
        let patched = FspServerConfig {
            check_actual_length: true,
            ..config
        };
        assert!(!server_accepts(&msg, &patched));
    }

    #[test]
    fn wildcard_trojan_only_under_glob_model() {
        let config = FspServerConfig::default();
        let msg = valid(Command::DelFile, b"a*");
        assert!(server_accepts(&msg, &config));
        assert!(
            client_can_generate(&msg, false),
            "non-glob client types '*' freely"
        );
        assert!(
            !client_can_generate(&msg, true),
            "glob client always expands '*'"
        );
        assert!(is_trojan(&msg, &config, true));
        assert!(!is_trojan(&msg, &config, false));
    }

    #[test]
    fn rejects_bad_framing() {
        let config = FspServerConfig::default();
        let mut bad_key = valid(Command::Stat, b"a");
        bad_key.bb_key = 9;
        assert!(!server_accepts(&bad_key, &config));
        let mut bad_len = valid(Command::Stat, b"a");
        bad_len.bb_len = 9;
        assert!(!server_accepts(&bad_len, &config));
        let mut bad_cmd = valid(Command::Stat, b"a");
        bad_cmd.cmd = 0xEE;
        assert!(!server_accepts(&bad_cmd, &config));
        let mut unprintable = valid(Command::Stat, b"a");
        unprintable.buf[0] = 7;
        assert!(!server_accepts(&unprintable, &config));
    }

    #[test]
    fn trojan_count_arithmetic() {
        // Without glob: per command, Σ_L Σ_{t<L} 94^t · 256^(4-t-1).
        let per_cmd: u64 = (1..=MAX_PATH as u64)
            .map(|l| {
                (0..l)
                    .map(|t| 94u64.pow(t as u32) * 256u64.pow((MAX_PATH as u64 - t - 1) as u32))
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(trojan_count_in_fuzz_space(false), 8 * per_cmd);
        // Glob mode adds the wildcard family, so it is strictly larger.
        assert!(trojan_count_in_fuzz_space(true) > trojan_count_in_fuzz_space(false));
        // The Trojan density is tiny (the point of the §6.2 comparison).
        let density = trojan_count_in_fuzz_space(false) as f64 / fuzz_space_size();
        assert!(density < 1e-3, "density {density}");
    }
}
