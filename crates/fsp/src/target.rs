//! The FSP [`TargetSpec`]: one registration point from discovery to replay.
//!
//! [`FspSpec`] wraps an [`FspAnalysisConfig`] and exposes the eight client
//! utilities, the server program, and the concrete deployment factory
//! through the protocol-agnostic trait, so registry-driven tooling
//! (`--target fsp`) runs the §6.2 analysis without naming FSP in code.
//! [`FspTarget`] is the concrete deployment the factory boots: a stateful
//! server endpoint over [`Network`]/[`SimFs`], previously hand-assembled
//! inside the replay harness.

use std::sync::Arc;

use achilles::{
    wire_to_fields, AchillesConfig, Delivery, InjectionOutcome, ReplayTarget, SessionSlot,
    SessionSpec, SnapshotReplayTarget, TargetSnapshot, TargetSpec, TrojanReport,
};
use achilles_netsim::{Addr, Network, SimFs};
use achilles_symvm::{ExploreConfig, MessageLayout, NodeProgram};

use crate::analysis::{classify, expected_length_mismatch_trojans, FspAnalysisConfig};
use crate::client::FspClient;
use crate::oracle::client_can_generate;
use crate::protocol::{layout, Command, FspMessage};
use crate::runtime::FspServerRuntime;
use crate::server::{FspServer, FspServerConfig};
use crate::session::{
    expected_session_trojans, login_layout, FspLoginClient, FspSessionServer, FspSessionTarget,
    LOGIN_CLIENT_TOKEN_CAP, LOGIN_MAX_USER, LOGIN_SERVER_TOKEN_CAP,
};
use crate::TrojanFamily;

/// The FSP deployment target: a stateful server endpoint over
/// [`Network`]/[`SimFs`].
#[derive(Clone, Debug)]
pub struct FspTarget {
    /// Server configuration (patch toggles must match the analyzed server).
    pub server: FspServerConfig,
    /// Whether client generability models glob expansion.
    pub glob_expansion: bool,
    /// Initial filesystem contents, `(path, data)` pairs.
    pub initial_files: Vec<(String, Vec<u8>)>,
}

impl FspTarget {
    /// A target mirroring an analysis configuration, with a small canned
    /// filesystem so commands have state to act on.
    pub fn new(server: FspServerConfig, glob_expansion: bool) -> FspTarget {
        FspTarget {
            server,
            glob_expansion,
            initial_files: vec![
                ("/f1".to_string(), b"one".to_vec()),
                ("/f2".to_string(), b"two".to_vec()),
            ],
        }
    }

    fn boot(&self) -> (Network, FspServerRuntime, Addr) {
        let mut fs = SimFs::new();
        for (path, data) in &self.initial_files {
            fs.write(path, data).expect("initial file writes succeed");
        }
        let mut net = Network::new();
        let server_addr = Addr::new("fspd");
        let client_addr = Addr::new("replay-cli");
        net.register(server_addr.clone());
        net.register(client_addr.clone());
        let server = FspServerRuntime::new(server_addr, fs, self.server.clone());
        (net, server, client_addr)
    }

    pub(crate) fn family_effect(fields: &[u64]) -> Option<String> {
        let report = TrojanReport {
            server_path_id: 0,
            constraints: vec![],
            witness_fields: fields.to_vec(),
            active_clients: 0,
            verified: false,
            found_at: std::time::Duration::ZERO,
            notes: vec![],
        };
        match classify(&report) {
            TrojanFamily::LengthMismatch {
                cmd,
                reported,
                actual,
            } => Some(format!(
                "family:len-mismatch:{}:{}>{}",
                cmd.utility_name(),
                reported,
                actual
            )),
            TrojanFamily::Wildcard { cmd } => {
                Some(format!("family:wildcard:{}", cmd.utility_name()))
            }
            TrojanFamily::Other => None,
        }
    }
}

impl ReplayTarget for FspTarget {
    fn name(&self) -> &'static str {
        "fsp"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        let cmd = self
            .server
            .commands
            .first()
            .copied()
            .unwrap_or(Command::GetDir);
        FspMessage::request(cmd, b"f1").field_values()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        let msg = FspMessage::from_field_values(fields);
        client_can_generate(&msg, self.glob_expansion)
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = FspForkSession::boot(self, false);
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(FspForkSession::boot(self, false)))
    }
}

/// The incremental FSP deployment behind both FSP targets' `inject` *and*
/// their fork sessions: one booted server endpoint fed deliveries one at a
/// time. `inject` is a boot → deliver-each → finish loop over this very
/// struct, so fork-server replay is equivalent to cold-boot by
/// construction.
pub(crate) struct FspForkSession {
    net: Network,
    server: FspServerRuntime,
    client_addr: Addr,
    /// Root listing at boot, immutable — `finish` diffs against it.
    before: Vec<String>,
    /// `Some(logged_in)` when the login gate is active (the session
    /// target); `None` for the single-message target.
    login: Option<bool>,
}

impl FspForkSession {
    pub(crate) fn boot(target: &FspTarget, login_gate: bool) -> FspForkSession {
        let (net, server, client_addr) = target.boot();
        let before = server.fs().list("/").unwrap_or_default();
        FspForkSession {
            net,
            server,
            client_addr,
            before,
            login: login_gate.then_some(false),
        }
    }
}

impl SnapshotReplayTarget for FspForkSession {
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome) {
        let (wire, is_witness) = delivery;
        let login_len = 3usize; // user (1 B) + token (2 B)
        if let Some(logged_in) = self.login {
            if wire.len() == login_len {
                let Ok(fields) = wire_to_fields(&login_layout(), wire) else {
                    outcome.accepted_each.push(false);
                    outcome.effects.push("login:malformed".to_string());
                    return;
                };
                let (user, token) = (fields[0], fields[1]);
                let accepted = user < LOGIN_MAX_USER && token < LOGIN_SERVER_TOKEN_CAP;
                outcome.accepted_each.push(accepted);
                if !accepted {
                    outcome.effects.push("login:rejected".to_string());
                    return;
                }
                self.login = Some(true);
                outcome.effects.push("login:ok".to_string());
                if *is_witness && token >= LOGIN_CLIENT_TOKEN_CAP {
                    // Triage family: a session no correct client opened.
                    outcome.effects.push("family:forged-login".to_string());
                }
                return;
            }
            if !logged_in {
                outcome.accepted_each.push(false);
                outcome.effects.push("rejected:no-login".to_string());
                return;
            }
        }
        let accepted_before = self.server.accepted;
        let server_addr = self.server.addr().clone();
        self.net
            .send(self.client_addr.clone(), server_addr, wire.clone());
        self.server.poll(&mut self.net);
        outcome
            .accepted_each
            .push(self.server.accepted > accepted_before);
        while let Some(reply) = self.net.recv(&self.client_addr) {
            let code = if reply.payload.first() == Some(&0) {
                "ok"
            } else {
                "err"
            };
            outcome.effects.push(format!("reply:{code}"));
        }
        if *is_witness {
            if let Ok(msg) = FspMessage::from_wire(wire) {
                if let Some(family) = FspTarget::family_effect(&msg.field_values()) {
                    outcome.effects.push(family);
                }
            }
        }
    }

    fn snapshot(&self) -> TargetSnapshot {
        // `FspServerRuntime::clone` is the deep copy (fresh filesystem and
        // protection-table `Arc`s); `before` is boot-immutable and lives in
        // the session itself.
        TargetSnapshot::of((self.net.clone(), self.server.clone(), self.login))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) {
        let (net, server, login) = snapshot
            .get::<(Network, FspServerRuntime, Option<bool>)>()
            .expect("an FSP fork session restores FSP snapshots");
        self.net = net.clone();
        self.server = server.clone();
        self.login = *login;
    }

    fn finish(&mut self, outcome: &mut InjectionOutcome) {
        let after = self.server.fs().list("/").unwrap_or_default();
        for name in &after {
            if !self.before.contains(name) {
                outcome.effects.push(format!("fs:+{name}"));
            }
        }
        for name in &self.before {
            if !after.contains(name) {
                outcome.effects.push(format!("fs:-{name}"));
            }
        }
    }
}

/// The FSP protocol as a [`TargetSpec`].
///
/// Wraps an [`FspAnalysisConfig`]: the spec's client programs are the
/// configured utilities, the server carries the configured patch toggles,
/// and the replay factory boots an [`FspTarget`] mirroring both.
#[derive(Clone, Debug, Default)]
pub struct FspSpec {
    /// The analysis configuration this spec describes.
    pub analysis: FspAnalysisConfig,
}

impl FspSpec {
    /// A spec over `analysis`.
    pub fn new(analysis: FspAnalysisConfig) -> FspSpec {
        FspSpec { analysis }
    }

    /// The §6.2 accuracy setup (eight utilities, the 80 mismatched-length
    /// classes) — the registry default.
    pub fn accuracy() -> FspSpec {
        FspSpec::new(FspAnalysisConfig::accuracy())
    }

    /// The §6.3 wildcard setup (glob expansion modeled).
    pub fn wildcard() -> FspSpec {
        FspSpec::new(FspAnalysisConfig::wildcard())
    }

    /// The utilities the login→command session exercises: a two-command
    /// slice of the analysis set keeps the session exploration (login tree
    /// × command tree) proportionate while still covering both Trojan
    /// families.
    pub fn session_commands(&self) -> &[Command] {
        let n = self.analysis.commands.len().min(2);
        &self.analysis.commands[..n]
    }
}

impl TargetSpec for FspSpec {
    fn name(&self) -> &'static str {
        "fsp"
    }

    fn description(&self) -> &'static str {
        "FSP 2.8.1b26 file transfer: mismatched-length and wildcard Trojans (§6.2–6.3)"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        self.analysis
            .commands
            .iter()
            .map(|&cmd| {
                Box::new(FspClient::new(cmd, self.analysis.client.clone()))
                    as Box<dyn NodeProgram + Sync>
            })
            .collect()
    }

    fn server(&self) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(FspServer::new(self.analysis.server.clone()))
    }

    fn analysis_config(&self) -> AchillesConfig {
        AchillesConfig {
            optimizations: self.analysis.optimizations,
            verify_witnesses: self.analysis.verify_witnesses,
            server_explore: ExploreConfig {
                workers: self.analysis.workers.max(1),
                ..ExploreConfig::default()
            },
            ..AchillesConfig::default()
        }
    }

    fn expected_trojans(&self) -> Option<usize> {
        // Exact only for the parse-only length-mismatch model; wildcard
        // runs add one report per exact-length accepting path.
        if self.analysis.client.glob_expansion {
            None
        } else {
            Some(expected_length_mismatch_trojans(
                self.analysis.commands.len(),
            ))
        }
    }

    fn classify(&self, report: &TrojanReport) -> String {
        match classify(report) {
            TrojanFamily::LengthMismatch { .. } => "len-mismatch".to_string(),
            TrojanFamily::Wildcard { .. } => "wildcard".to_string(),
            TrojanFamily::Other => "other".to_string(),
        }
    }

    fn replay_target(&self) -> Box<dyn ReplayTarget> {
        Box::new(FspTarget::new(
            self.analysis.server.clone(),
            self.analysis.client.glob_expansion,
        ))
    }

    fn sessions(&self) -> Vec<SessionSpec> {
        let commands = self.session_commands();
        // Session clients: index 0 is the login utility, 1.. are the
        // command utilities (see `session_clients`).
        let command_clients = (1..=commands.len()).collect();
        vec![SessionSpec::new(
            "login-command",
            vec![
                SessionSlot::new("login", login_layout(), vec![0]),
                SessionSlot::new("command", layout(), command_clients),
            ],
        )
        // Every accepting session path hosts at least the forged-login
        // Trojan, so the count is the accepting-path census — exact for
        // both the accuracy and the wildcard client models.
        .expecting(expected_session_trojans(commands.len()))]
    }

    fn session_clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        let mut clients: Vec<Box<dyn NodeProgram + Sync + '_>> = vec![Box::new(FspLoginClient)];
        clients.extend(self.session_commands().iter().map(|&cmd| {
            Box::new(FspClient::new(cmd, self.analysis.client.clone()))
                as Box<dyn NodeProgram + Sync>
        }));
        clients
    }

    fn session_server(&self, _name: &str) -> Box<dyn NodeProgram + Sync + '_> {
        Box::new(FspSessionServer::new(FspServerConfig {
            commands: self.session_commands().to_vec(),
            ..self.analysis.server.clone()
        }))
    }

    fn session_replay_target(&self, _name: &str) -> Box<dyn ReplayTarget> {
        Box::new(FspSessionTarget::new(
            FspServerConfig {
                commands: self.session_commands().to_vec(),
                ..self.analysis.server.clone()
            },
            self.analysis.client.glob_expansion,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{LOGIN_CLIENT_TOKEN_CAP, LOGIN_MAX_USER, LOGIN_SERVER_TOKEN_CAP};
    use achilles::AchillesSession;

    #[test]
    fn spec_session_matches_the_legacy_pipeline() {
        // Pin the session against `run_analysis_with` — the original
        // hand-wired pipeline, which still ships independently — so a
        // behavioral divergence in `AchillesSession` cannot hide behind
        // the session-backed `run_analysis` shim.
        let config = FspAnalysisConfig::accuracy().with_commands(2);
        let direct = {
            let mut pool = achilles_solver::TermPool::new();
            let mut solver = achilles_solver::Solver::new();
            crate::analysis::run_analysis_with(&mut pool, &mut solver, &config)
        };
        let spec = FspSpec::new(config);
        let report = AchillesSession::new(&spec).run();
        assert_eq!(report.trojans.len(), direct.trojans.len());
        let fields = |ts: &[TrojanReport]| {
            ts.iter()
                .map(|t| (t.server_path_id, t.witness_fields.clone(), t.verified))
                .collect::<Vec<_>>()
        };
        assert_eq!(fields(&report.trojans), fields(&direct.trojans));
        assert_eq!(report.server_paths, direct.server_paths);
        assert_eq!(spec.expected_trojans(), Some(report.trojans.len()));
    }

    #[test]
    fn declared_session_discovers_forged_logins_and_attributes_slots() {
        let spec = FspSpec::accuracy();
        let mut session = AchillesSession::new(&spec);
        let reports = session.run_sessions();
        assert_eq!(reports.len(), 1, "one declared session");
        let r = &reports[0];
        assert_eq!(r.session, "login-command");
        assert_eq!(r.slot_names, vec!["login", "command"]);
        assert_eq!(Some(r.trojans.len()), r.expected_trojans);
        let mut saw_command_slot = false;
        for (t, slots) in r.trojans.iter().zip(&r.trojan_slots) {
            assert!(
                slots.contains(&0),
                "every accepting session path hosts the forged login"
            );
            saw_command_slot |= slots.contains(&1);
            let parts = r.split_fields(&t.witness_fields);
            let (user, token) = (parts[0][0], parts[0][1]);
            assert!(user < LOGIN_MAX_USER);
            assert!(
                (LOGIN_CLIENT_TOKEN_CAP..LOGIN_SERVER_TOKEN_CAP).contains(&token),
                "login token {token} in the server-only window"
            );
        }
        assert!(
            saw_command_slot,
            "NUL paths additionally host the mismatched-length command Trojan"
        );
    }

    #[test]
    fn replay_factory_mirrors_the_analyzed_server() {
        let mut config = FspAnalysisConfig::accuracy().with_commands(1);
        config.server.check_actual_length = true;
        let spec = FspSpec::new(config);
        let target = spec.replay_target();
        assert_eq!(target.name(), "fsp");
        // A benign request is generable; the patched server still boots.
        assert!(target.client_generable(&target.benign_fields()));
    }
}
