//! The FSP wire protocol (bounded model).
//!
//! FSP (File Service Protocol) is a UDP-based file transfer protocol; the
//! paper analyzes FSP 2.8.1b26. A command message carries (§6.1):
//!
//! | field    | width | meaning                              |
//! |----------|-------|--------------------------------------|
//! | `cmd`    | 1 B   | requested action                     |
//! | `sum`    | 1 B   | checksum                             |
//! | `bb_key` | 2 B   | message key                          |
//! | `bb_seq` | 2 B   | message sequence number              |
//! | `bb_len` | 2 B   | length of the file path              |
//! | `bb_pos` | 4 B   | position of a block in a file        |
//! | `buf`    | var.  | payload (file path + file data)      |
//!
//! Following the paper's §6.2 bounds, the payload is modeled as
//! [`MAX_PATH`] one-byte fields and path lengths are restricted to
//! `1..=MAX_PATH`. The checksum/key/seq/pos fields are *bypassed* the way
//! the paper's annotations bypass them: correct clients write the
//! predefined constant [`BYPASS_VALUE`] and the server checks for it.

use std::sync::Arc;

use achilles_netsim::bytes::{decode_fields, encode_fields, WireError};
use achilles_solver::{TermPool, Width};
use achilles_symvm::{MessageLayout, SymMessage};

/// Maximum file path length, matching the paper's bound ("we restricted the
/// FSP clients and servers to only handle file paths with length less
/// than 5").
pub const MAX_PATH: usize = 4;

/// The constant that replaces checksums/keys/sequence numbers/positions
/// (paper §6.1: "the client writes a predefined constant value and the
/// server checks that value").
pub const BYPASS_VALUE: u64 = 0;

/// Smallest byte the server accepts in file paths (printable ASCII, §6.2).
pub const PRINTABLE_MIN: u8 = 33;
/// Largest byte the server accepts in file paths.
pub const PRINTABLE_MAX: u8 = 126;
/// The wildcard character at the heart of the FSP globbing Trojan.
pub const WILDCARD: u8 = b'*';

/// FSP command codes (the single-file-path subset the paper's eight client
/// utilities exercise, plus `Install` used by the impact demo).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Command {
    /// List a directory (`fls`).
    GetDir = 0x41,
    /// Download a file (`fget`).
    GetFile = 0x42,
    /// Delete a file (`frm`).
    DelFile = 0x44,
    /// Delete a directory (`frmdir`).
    DelDir = 0x45,
    /// Create a directory (`fmkdir`).
    MakeDir = 0x47,
    /// Read directory protection bits (`fgetpro`).
    GetPro = 0x4b,
    /// Set directory protection bits (`fsetpro`).
    SetPro = 0x4c,
    /// Stat a path (`fstat`).
    Stat = 0x4d,
    /// Create/overwrite a file (`finstall`) — used by the concrete impact
    /// demo, not part of the eight-utility analysis set.
    Install = 0x49,
}

impl Command {
    /// The eight single-file-path commands of the accuracy evaluation.
    pub const ANALYSIS_SET: [Command; 8] = [
        Command::GetDir,
        Command::GetFile,
        Command::DelFile,
        Command::DelDir,
        Command::MakeDir,
        Command::GetPro,
        Command::SetPro,
        Command::Stat,
    ];

    /// The command code byte.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Parses a command code.
    pub fn from_code(code: u8) -> Option<Command> {
        Command::ANALYSIS_SET
            .into_iter()
            .chain([Command::Install])
            .find(|c| c.code() == code)
    }

    /// The UNIX-style client utility name that issues this command.
    pub fn utility_name(self) -> &'static str {
        match self {
            Command::GetDir => "fls",
            Command::GetFile => "fget",
            Command::DelFile => "frm",
            Command::DelDir => "frmdir",
            Command::MakeDir => "fmkdir",
            Command::GetPro => "fgetpro",
            Command::SetPro => "fsetpro",
            Command::Stat => "fstat",
            Command::Install => "finstall",
        }
    }
}

/// Field widths, in declaration order (used by the wire codec).
pub const FIELD_WIDTHS: [u32; 6 + MAX_PATH] = {
    let mut w = [8u32; 6 + MAX_PATH];
    w[0] = 8; // cmd
    w[1] = 8; // sum
    w[2] = 16; // bb_key
    w[3] = 16; // bb_seq
    w[4] = 16; // bb_len
    w[5] = 32; // bb_pos
               // buf bytes stay 8.
    w
};

/// The bounded FSP message layout.
pub fn layout() -> Arc<MessageLayout> {
    MessageLayout::builder("fsp")
        .field("cmd", Width::W8)
        .field("sum", Width::W8)
        .field("bb_key", Width::W16)
        .field("bb_seq", Width::W16)
        .field("bb_len", Width::W16)
        .field("bb_pos", Width::W32)
        .byte_array("buf", MAX_PATH)
        .build()
}

/// Index of the first payload byte within the layout.
pub const BUF_BASE: usize = 6;

/// A concrete FSP message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FspMessage {
    /// Command code.
    pub cmd: u8,
    /// Checksum (bypassed: [`BYPASS_VALUE`] for correct traffic).
    pub sum: u8,
    /// Message key (bypassed).
    pub bb_key: u16,
    /// Sequence number (bypassed).
    pub bb_seq: u16,
    /// Reported file path length.
    pub bb_len: u16,
    /// Block position (bypassed).
    pub bb_pos: u32,
    /// Payload bytes.
    pub buf: [u8; MAX_PATH],
}

impl FspMessage {
    /// A well-formed command for `path` as a correct client would build it.
    ///
    /// # Panics
    ///
    /// Panics if `path` is longer than [`MAX_PATH`].
    pub fn request(cmd: Command, path: &[u8]) -> FspMessage {
        assert!(
            path.len() <= MAX_PATH,
            "path longer than the protocol bound"
        );
        let mut buf = [0u8; MAX_PATH];
        buf[..path.len()].copy_from_slice(path);
        FspMessage {
            cmd: cmd.code(),
            sum: BYPASS_VALUE as u8,
            bb_key: BYPASS_VALUE as u16,
            bb_seq: BYPASS_VALUE as u16,
            bb_len: path.len() as u16,
            bb_pos: BYPASS_VALUE as u32,
            buf,
        }
    }

    /// Field values in layout order.
    pub fn field_values(&self) -> Vec<u64> {
        let mut v = vec![
            u64::from(self.cmd),
            u64::from(self.sum),
            u64::from(self.bb_key),
            u64::from(self.bb_seq),
            u64::from(self.bb_len),
            u64::from(self.bb_pos),
        ];
        v.extend(self.buf.iter().map(|&b| u64::from(b)));
        v
    }

    /// Builds a concrete message from layout-ordered field values.
    ///
    /// # Panics
    ///
    /// Panics if `values` has the wrong arity.
    pub fn from_field_values(values: &[u64]) -> FspMessage {
        assert_eq!(values.len(), 6 + MAX_PATH);
        let mut buf = [0u8; MAX_PATH];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = values[BUF_BASE + i] as u8;
        }
        FspMessage {
            cmd: values[0] as u8,
            sum: values[1] as u8,
            bb_key: values[2] as u16,
            bb_seq: values[3] as u16,
            bb_len: values[4] as u16,
            bb_pos: values[5] as u32,
            buf,
        }
    }

    /// Encodes to wire bytes (big-endian fields).
    pub fn to_wire(&self) -> Vec<u8> {
        let fields: Vec<(u32, u64)> = FIELD_WIDTHS
            .iter()
            .copied()
            .zip(self.field_values())
            .collect();
        encode_fields(&fields).expect("static widths are byte-aligned")
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the buffer is too short.
    pub fn from_wire(wire: &[u8]) -> Result<FspMessage, WireError> {
        let values = decode_fields(wire, &FIELD_WIDTHS)?;
        Ok(FspMessage::from_field_values(&values))
    }

    /// The message as a concrete [`SymMessage`] (for injection into the
    /// symbolic runtime).
    pub fn to_sym(&self, pool: &mut TermPool) -> SymMessage {
        SymMessage::concrete(pool, &layout(), &self.field_values())
    }

    /// The file path carried by the message, honouring `bb_len` but stopping
    /// at an embedded NUL (the *server's* — buggy — interpretation).
    pub fn path_as_server_sees_it(&self) -> &[u8] {
        let reported = (self.bb_len as usize).min(MAX_PATH);
        let actual = self.buf[..reported]
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(reported);
        &self.buf[..actual]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_has_expected_shape() {
        let l = layout();
        assert_eq!(l.num_fields(), 6 + MAX_PATH);
        assert_eq!(l.field_index("cmd"), Some(0));
        assert_eq!(l.field_index("buf[0]"), Some(BUF_BASE));
        assert_eq!(
            l.total_bits() as usize,
            8 + 8 + 16 + 16 + 16 + 32 + 8 * MAX_PATH
        );
    }

    #[test]
    fn command_codes_round_trip() {
        for c in Command::ANALYSIS_SET.into_iter().chain([Command::Install]) {
            assert_eq!(Command::from_code(c.code()), Some(c));
        }
        assert_eq!(Command::from_code(0xFF), None);
        assert_eq!(Command::DelFile.utility_name(), "frm");
    }

    #[test]
    fn wire_round_trip() {
        let msg = FspMessage::request(Command::DelFile, b"abc");
        let wire = msg.to_wire();
        assert_eq!(wire.len(), 1 + 1 + 2 + 2 + 2 + 4 + MAX_PATH);
        let back = FspMessage::from_wire(&wire).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn request_sets_consistent_length() {
        let msg = FspMessage::request(Command::Stat, b"ab");
        assert_eq!(msg.bb_len, 2);
        assert_eq!(msg.path_as_server_sees_it(), b"ab");
    }

    #[test]
    fn mismatched_length_truncates_at_nul() {
        // A Trojan message: reported length 4 but a NUL at position 1.
        let mut msg = FspMessage::request(Command::DelFile, b"a");
        msg.bb_len = 4;
        msg.buf = [b'a', 0, b'X', b'Y']; // 'X','Y' are smuggled payload
        assert_eq!(msg.path_as_server_sees_it(), b"a");
    }

    #[test]
    fn sym_round_trip() {
        let mut pool = TermPool::new();
        let msg = FspMessage::request(Command::GetDir, b"d");
        let sym = msg.to_sym(&mut pool);
        assert!(sym.is_concrete(&pool));
        let model = achilles_solver::Model::new();
        let values = sym.concretize(&pool, &model);
        assert_eq!(FspMessage::from_field_values(&values), msg);
    }
}
