//! # achilles-fsp — the FSP file transfer protocol under Achilles
//!
//! A bounded, decision-level-faithful model of FSP 2.8.1b26 (the UDP file
//! transfer protocol the paper evaluates in §6), containing **both real
//! Trojan vulnerabilities** the paper found:
//!
//! * **Mismatched string lengths** — the server never checks that the file
//!   path's real (NUL-scanned) length equals the `bb_len` header, so Trojan
//!   messages smuggle arbitrary extra payload;
//! * **The wildcard character** — clients always glob-expand `*` (with no
//!   escape), the server stores it literally, so a file named `file*` can be
//!   created by a Trojan message but never precisely targeted afterwards.
//!
//! ## Quick analysis
//!
//! ```
//! use achilles_fsp::{run_analysis, FspAnalysisConfig, expected_length_mismatch_trojans};
//!
//! // One-utility slice of the paper's accuracy experiment (§6.2).
//! let config = FspAnalysisConfig::accuracy().with_commands(1);
//! let result = run_analysis(&config);
//! assert_eq!(result.trojans.len(), expected_length_mismatch_trojans(1));
//! assert_eq!(result.unverified(), 0); // no false positives
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod client;
pub mod oracle;
pub mod protocol;
pub mod runtime;
pub mod server;
pub mod session;
pub mod target;

pub use analysis::{
    classify, expected_length_mismatch_trojans, expected_wildcard_trojans, run_analysis,
    run_analysis_with, FspAnalysisConfig, FspAnalysisResult, TrojanFamily,
};
pub use client::{extract_client_predicate, FspClient, FspClientConfig};
pub use oracle::{
    client_can_generate, fuzz_space_size, is_trojan, server_accepts, trojan_count_in_fuzz_space,
};
pub use protocol::{layout, Command, FspMessage, BUF_BASE, BYPASS_VALUE, MAX_PATH, WILDCARD};
pub use runtime::{run_utility, FspServerRuntime, UtilityOutcome};
pub use server::{reply_layout, FspServer, FspServerConfig, ReplyCode};
pub use session::{
    expected_session_trojans, login_generable, login_layout, FspLoginClient, FspSessionServer,
    FspSessionTarget, LOGIN_CLIENT_TOKEN_CAP, LOGIN_MAX_USER, LOGIN_SERVER_TOKEN_CAP,
};
pub use target::{FspSpec, FspTarget};
