//! The FSP login→command session: the stateful half of the FSP analysis.
//!
//! Real FSP deployments gate commands behind a first exchange that
//! establishes per-client session state (the `bb_key` handshake). This
//! module models that statefully: the server consumes a **login** message
//! (user id + session token) and only then a command message — one server
//! activation, two receive slots. The login validation carries the
//! session-level S-bug: correct clients request tokens below
//! [`LOGIN_CLIENT_TOKEN_CAP`], but the server accepts anything below
//! [`LOGIN_SERVER_TOKEN_CAP`] — a 10× window of forged-login Trojans that
//! *no single-message analysis of the command slot can see*, because the
//! command slot is exactly as (in)correct as in the single-message model.
//!
//! A session is therefore Trojan in two ways: a forged login (slot 0, on
//! every accepting session path) and the classic mismatched-length command
//! (slot 1, on the NUL paths) — `⋁ₛ ¬genₛ(mₛ)`. The concrete deployment
//! ([`FspSessionTarget`]) replays whole sessions: a login gate in front of
//! the stateful [`FspServerRuntime`](crate::runtime::FspServerRuntime).

use std::sync::Arc;

use achilles::{Delivery, InjectionOutcome, ReplayTarget, SnapshotReplayTarget};
use achilles_solver::Width;
use achilles_symvm::{MessageLayout, NodeProgram, PathResult, SymEnv, SymMessage};

use crate::oracle::client_can_generate;
use crate::protocol::{layout, FspMessage};
use crate::server::{FspServer, FspServerConfig};
use crate::target::{FspForkSession, FspTarget};

/// Number of provisioned user ids (`user < LOGIN_MAX_USER`).
pub const LOGIN_MAX_USER: u64 = 4;

/// Largest session token a correct client ever requests (exclusive).
pub const LOGIN_CLIENT_TOKEN_CAP: u64 = 100;

/// Largest session token the server accepts (exclusive) — the session
/// S-bug: 10× the client cap, so tokens in
/// `[LOGIN_CLIENT_TOKEN_CAP, LOGIN_SERVER_TOKEN_CAP)` are forged logins the
/// server happily establishes sessions for.
pub const LOGIN_SERVER_TOKEN_CAP: u64 = 1000;

/// The login message layout (slot 0 of the session).
pub fn login_layout() -> Arc<MessageLayout> {
    MessageLayout::builder("fsp_login")
        .field("user", Width::W8)
        .field("token", Width::W16)
        .build()
}

/// Expected session-Trojan count for a login→command session over
/// `commands` utilities: one report per accepting session path (every
/// accepting path hosts at least the forged-login Trojan), and per command
/// the accepting census is `Σ_{L=1..4} (L NUL positions + 1 exact) = 14`.
pub fn expected_session_trojans(commands: usize) -> usize {
    14 * commands
}

/// A correct FSP login utility: validated user id, validated token
/// request.
#[derive(Clone, Copy, Debug, Default)]
pub struct FspLoginClient;

impl NodeProgram for FspLoginClient {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let user = env.sym_in_range("user", Width::W8, 0, LOGIN_MAX_USER - 1)?;
        let token = env.sym_in_range("token", Width::W16, 0, LOGIN_CLIENT_TOKEN_CAP - 1)?;
        env.send(SymMessage::new(login_layout(), vec![user, token]));
        Ok(())
    }
}

/// Whether a correct client can produce these login field values — the
/// concrete slot-0 oracle.
pub fn login_generable(fields: &[u64]) -> bool {
    let [user, token] = fields else {
        return false;
    };
    *user < LOGIN_MAX_USER && *token < LOGIN_CLIENT_TOKEN_CAP
}

/// The session server: login gate (with the lax token bound), then the
/// ordinary FSP command handler — two `recv`s in one activation.
#[derive(Clone, Debug, Default)]
pub struct FspSessionServer {
    command_server: FspServer,
}

impl FspSessionServer {
    /// A session server whose command slot runs `config`.
    pub fn new(config: FspServerConfig) -> FspSessionServer {
        FspSessionServer {
            command_server: FspServer::new(config),
        }
    }
}

impl NodeProgram for FspSessionServer {
    fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
        let login = env.recv(&login_layout())?;
        let max_user = env.constant(LOGIN_MAX_USER, Width::W8);
        if !env.if_ult(login.field("user"), max_user)? {
            return Ok(()); // unknown user: no session
        }
        // SECURITY BUG (session establishment): the token bound is 10× what
        // any correct client requests, so forged logins open sessions.
        let cap = env.constant(LOGIN_SERVER_TOKEN_CAP, Width::W16);
        if !env.if_ult(login.field("token"), cap)? {
            return Ok(());
        }
        env.note("login-ok");
        // Slot 1: the ordinary command handler (its own bugs included).
        self.command_server.run(env)
    }
}

/// The concrete FSP session deployment: a login gate in front of the
/// stateful server runtime. Deliveries are parsed by wire length (a login
/// datagram is 3 bytes, a command datagram 16); commands before a
/// successful login are rejected.
#[derive(Clone, Debug)]
pub struct FspSessionTarget {
    inner: FspTarget,
}

impl FspSessionTarget {
    /// A session target mirroring the analyzed session server.
    pub fn new(server: FspServerConfig, glob_expansion: bool) -> FspSessionTarget {
        FspSessionTarget {
            inner: FspTarget::new(server, glob_expansion),
        }
    }
}

impl ReplayTarget for FspSessionTarget {
    fn name(&self) -> &'static str {
        "fsp"
    }

    fn layout(&self) -> Arc<MessageLayout> {
        layout()
    }

    fn benign_fields(&self) -> Vec<u64> {
        self.inner.benign_fields()
    }

    fn client_generable(&self, fields: &[u64]) -> bool {
        self.inner.client_generable(fields)
    }

    fn slot_layouts(&self) -> Vec<Arc<MessageLayout>> {
        vec![login_layout(), layout()]
    }

    fn slot_benign_fields(&self, slot: usize) -> Vec<u64> {
        if slot == 0 {
            vec![0, 7] // user 0, a small in-range token
        } else {
            self.inner.benign_fields()
        }
    }

    fn slot_generable(&self, slot: usize, fields: &[u64]) -> bool {
        if slot == 0 {
            login_generable(fields)
        } else {
            let msg = FspMessage::from_field_values(fields);
            client_can_generate(&msg, self.inner.glob_expansion)
        }
    }

    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
        let mut session = FspForkSession::boot(&self.inner, true);
        let mut outcome = InjectionOutcome::default();
        for delivery in deliveries {
            session.deliver(delivery, &mut outcome);
        }
        session.finish(&mut outcome);
        outcome
    }

    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        Some(Box::new(FspForkSession::boot(&self.inner, true)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Command;
    use achilles::fields_to_wire;

    fn login_wire(user: u64, token: u64) -> Vec<u8> {
        fields_to_wire(&login_layout(), &[user, token]).unwrap()
    }

    #[test]
    fn forged_login_opens_a_session_no_client_requested() {
        let target = FspSessionTarget::new(FspServerConfig::default(), false);
        let forged = [0u64, 500]; // token in the server-only window
        assert!(!login_generable(&forged), "no client requests token 500");
        let cmd = FspMessage::request(Command::GetDir, b"f1");
        let outcome = target.inject(&[(login_wire(0, 500), true), (cmd.to_wire(), true)]);
        assert_eq!(outcome.accepted_each, vec![true, true]);
        assert!(outcome.effects.contains(&"family:forged-login".to_string()));
    }

    #[test]
    fn commands_before_login_are_rejected() {
        let target = FspSessionTarget::new(FspServerConfig::default(), false);
        let cmd = FspMessage::request(Command::GetDir, b"f1");
        let outcome = target.inject(&[(cmd.to_wire(), true)]);
        assert_eq!(outcome.accepted_each, vec![false]);
        assert!(outcome.effects.contains(&"rejected:no-login".to_string()));
    }

    #[test]
    fn out_of_window_logins_are_rejected() {
        let target = FspSessionTarget::new(FspServerConfig::default(), false);
        let outcome = target.inject(&[(login_wire(0, 2000), true)]);
        assert_eq!(outcome.accepted_each, vec![false]);
        let outcome = target.inject(&[(login_wire(9, 5), true)]);
        assert_eq!(outcome.accepted_each, vec![false]);
    }

    #[test]
    fn session_server_census_matches_the_arithmetic() {
        use achilles_solver::{Solver, TermPool};
        use achilles_symvm::{Executor, ExploreConfig};

        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let commands = Command::ANALYSIS_SET[..2].to_vec();
        let server = FspSessionServer::new(FspServerConfig {
            commands: commands.clone(),
            ..FspServerConfig::default()
        });
        let login_msg = SymMessage::fresh(&mut pool, &login_layout(), "login");
        let cmd_msg = SymMessage::fresh(&mut pool, &layout(), "cmd");
        let config = ExploreConfig {
            recv_script: vec![login_msg, cmd_msg],
            ..ExploreConfig::default()
        };
        let mut exec = Executor::new(&mut pool, &mut solver, config);
        let result = exec.explore(&server);
        let accepting = result.accepting().count();
        assert_eq!(
            accepting,
            expected_session_trojans(commands.len()),
            "14 accepting session paths per command"
        );
        assert!(result
            .accepting()
            .all(|p| p.notes.contains(&"login-ok".to_string())));
    }
}
