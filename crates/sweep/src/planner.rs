//! Bounded enumeration of per-witness fault-schedule spaces.
//!
//! A [`SchedulePlanner`] turns one [`SessionWitness`] into the list of
//! [`FaultSchedule`]s a campaign replays it under: every single fault
//! (drop / duplicate / benign interleaving at each slot, plus a single
//! bit-flip at every bit position of every slot's wire bytes) and,
//! optionally, every pairwise combination of the non-flip faults.
//!
//! The space is **canonicalized before it is deduplicated**, so the plan
//! never replays two schedules the harness provably treats identically:
//!
//! * a `drop` masks the same slot's `duplicate` and `flip_bit` (nothing is
//!   delivered for them to act on — the same rule
//!   [`replay_session`](achilles_replay::replay_session) applies when it
//!   records [`SessionReplayResult::applied`]), so
//!   `{drop, duplicate}@s0` collapses to `{drop}@s0` and is deduplicated
//!   against the plain drop;
//! * a `flip_bit` index at or past the slot's wire length can never touch
//!   a delivered byte and is canonicalized away;
//! * trailing fault-free slots are trimmed (positions past the end of a
//!   schedule are fault-free by definition), so `{drop}@s0` padded to
//!   three slots equals `{drop}@s0` written for one.
//!
//! The enumeration order is deterministic (slots ascending; within a
//! slot: drop, duplicate, benign, then flips by bit index; pairs in
//! lexicographic atom order), which is what lets sweep campaigns promise
//! bit-identical sensitivity matrices for every worker count.
//!
//! [`SessionReplayResult::applied`]: achilles_replay::SessionReplayResult

use achilles_replay::{DeliveryFault, FaultSchedule, SessionWitness};

/// Which fault dimensions a [`SchedulePlanner`] enumerates, and how far.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Enumerate a drop of each slot.
    pub drops: bool,
    /// Enumerate a duplicate delivery of each slot.
    pub duplicates: bool,
    /// Enumerate a benign interleaving before each slot.
    pub benign: bool,
    /// Bit positions flipped per slot: `0..min(this, wire bits)` (use
    /// `usize::MAX` — the default — for every bit of the slot's wire).
    pub flip_bits_per_slot: usize,
    /// Also enumerate pairwise combinations of the non-flip faults
    /// (within one slot a pair merges into one [`DeliveryFault`], which is
    /// where the drop-masking dedup does real work).
    pub pairs: bool,
    /// Hard cap on the schedules planned per witness (deterministic
    /// truncation of the enumeration order).
    pub max_schedules: usize,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            drops: true,
            duplicates: true,
            benign: true,
            flip_bits_per_slot: usize::MAX,
            pairs: true,
            max_schedules: 512,
        }
    }
}

impl SweepConfig {
    /// A reduced space for interactive tours: single faults only, flips
    /// restricted to each slot's first byte.
    pub fn quick() -> SweepConfig {
        SweepConfig {
            flip_bits_per_slot: 8,
            pairs: false,
            max_schedules: 64,
            ..SweepConfig::default()
        }
    }
}

/// One atomic fault of the enumeration: `fault` applied at `slot`.
#[derive(Clone, Copy, Debug)]
struct Atom {
    slot: usize,
    fault: DeliveryFault,
}

impl Atom {
    fn is_flip(&self) -> bool {
        self.fault.flip_bit.is_some()
    }
}

/// Enumerates the bounded, canonically deduplicated fault-schedule space
/// of a session witness.
#[derive(Clone, Debug, Default)]
pub struct SchedulePlanner {
    config: SweepConfig,
}

impl SchedulePlanner {
    /// A planner over the given configuration.
    pub fn new(config: SweepConfig) -> SchedulePlanner {
        SchedulePlanner { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Plans the schedule space for `witness`: canonical, deduplicated,
    /// deterministic order, capped at
    /// [`max_schedules`](SweepConfig::max_schedules). The fault-free
    /// schedule (the baseline) is never part of the plan.
    pub fn plan(&self, witness: &SessionWitness) -> Vec<FaultSchedule> {
        let atoms = self.atoms(witness);
        let mut seen: Vec<FaultSchedule> = Vec::new();
        let push = |schedule: FaultSchedule, seen: &mut Vec<FaultSchedule>| {
            if seen.len() >= self.config.max_schedules {
                return;
            }
            let canonical = canonicalize(&schedule, witness);
            if !canonical.slots.is_empty() && !seen.contains(&canonical) {
                seen.push(canonical);
            }
        };
        for atom in &atoms {
            push(FaultSchedule::at(atom.slot, atom.fault), &mut seen);
        }
        if self.config.pairs {
            let coarse: Vec<&Atom> = atoms.iter().filter(|a| !a.is_flip()).collect();
            for (i, a) in coarse.iter().enumerate() {
                for b in &coarse[i + 1..] {
                    push(merge_atoms(a, b), &mut seen);
                }
            }
        }
        seen
    }

    fn atoms(&self, witness: &SessionWitness) -> Vec<Atom> {
        let mut atoms = Vec::new();
        for slot in 0..witness.slots() {
            if self.config.drops {
                atoms.push(Atom {
                    slot,
                    fault: DeliveryFault {
                        drop: true,
                        ..DeliveryFault::none()
                    },
                });
            }
            if self.config.duplicates {
                atoms.push(Atom {
                    slot,
                    fault: DeliveryFault {
                        duplicate: true,
                        ..DeliveryFault::none()
                    },
                });
            }
            if self.config.benign {
                atoms.push(Atom {
                    slot,
                    fault: DeliveryFault {
                        benign_before: true,
                        ..DeliveryFault::none()
                    },
                });
            }
            let wire_bits = witness.wire[slot].len() * 8;
            for bit in 0..wire_bits.min(self.config.flip_bits_per_slot) {
                atoms.push(Atom {
                    slot,
                    fault: DeliveryFault {
                        flip_bit: Some(bit),
                        ..DeliveryFault::none()
                    },
                });
            }
        }
        atoms
    }
}

fn merge_atoms(a: &Atom, b: &Atom) -> FaultSchedule {
    if a.slot != b.slot {
        return FaultSchedule::at(a.slot, a.fault).with(b.slot, b.fault);
    }
    FaultSchedule::at(
        a.slot,
        DeliveryFault {
            drop: a.fault.drop || b.fault.drop,
            duplicate: a.fault.duplicate || b.fault.duplicate,
            benign_before: a.fault.benign_before || b.fault.benign_before,
            flip_bit: a.fault.flip_bit.or(b.fault.flip_bit),
        },
    )
}

/// Rewrites a schedule into the canonical representative of its
/// equivalence class under the replay semantics (see the module docs for
/// the three rules). Two schedules with equal canonical forms produce
/// byte-identical delivery plans for `witness`.
pub fn canonicalize(schedule: &FaultSchedule, witness: &SessionWitness) -> FaultSchedule {
    let mut slots: Vec<DeliveryFault> = schedule
        .slots
        .iter()
        .enumerate()
        .map(|(slot, fault)| {
            let mut fault = *fault;
            if fault.drop {
                // Nothing is delivered for the duplicate or the flip to
                // act on — exactly the masking `replay_session` records in
                // `applied`.
                fault.duplicate = false;
                fault.flip_bit = None;
            } else if let Some(bit) = fault.flip_bit {
                let wire_bits = witness.wire.get(slot).map_or(0, |w| w.len() * 8);
                if bit >= wire_bits {
                    fault.flip_bit = None;
                }
            }
            fault
        })
        .collect();
    while slots.last() == Some(&DeliveryFault::none()) {
        slots.pop();
    }
    FaultSchedule { slots }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn witness(slot_bytes: &[usize]) -> SessionWitness {
        SessionWitness {
            index: 0,
            server_path_id: 0,
            fields: slot_bytes.iter().map(|&n| vec![0; n]).collect(),
            wire: slot_bytes.iter().map(|&n| vec![0u8; n]).collect(),
        }
    }

    #[test]
    fn plan_is_canonical_and_deduplicated() {
        let w = witness(&[2, 2]);
        let plan = SchedulePlanner::new(SweepConfig::default()).plan(&w);
        assert!(!plan.is_empty());
        // No duplicates survive.
        for (i, s) in plan.iter().enumerate() {
            assert!(!plan[i + 1..].contains(s), "duplicate schedule {s:?}");
        }
        // Every planned schedule is its own canonical form.
        for s in &plan {
            assert_eq!(&canonicalize(s, &w), s);
        }
        // The fault-free baseline is not part of the plan.
        assert!(!plan.contains(&FaultSchedule::none()));
    }

    #[test]
    fn drop_masks_same_slot_faults_into_the_plain_drop() {
        let w = witness(&[2]);
        let masked = FaultSchedule::at(
            0,
            DeliveryFault {
                drop: true,
                duplicate: true,
                flip_bit: Some(3),
                ..DeliveryFault::none()
            },
        );
        let plain = FaultSchedule::at(
            0,
            DeliveryFault {
                drop: true,
                ..DeliveryFault::none()
            },
        );
        assert_eq!(canonicalize(&masked, &w), canonicalize(&plain, &w));
        // And therefore the pairwise enumeration never replays it twice.
        let plan = SchedulePlanner::new(SweepConfig {
            flip_bits_per_slot: 0,
            benign: false,
            ..SweepConfig::default()
        })
        .plan(&w);
        // drop, duplicate, and their merged pair (== drop, deduped away).
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn out_of_range_flips_and_trailing_noops_canonicalize_away() {
        let w = witness(&[1, 1]);
        let oob = FaultSchedule::at(
            1,
            DeliveryFault {
                flip_bit: Some(99),
                ..DeliveryFault::none()
            },
        );
        assert_eq!(canonicalize(&oob, &w), FaultSchedule::none());
        let padded = FaultSchedule::at(
            0,
            DeliveryFault {
                drop: true,
                ..DeliveryFault::none()
            },
        )
        .with(1, DeliveryFault::none());
        assert_eq!(canonicalize(&padded, &w).slots.len(), 1);
    }

    #[test]
    fn flip_enumeration_covers_every_wire_bit_and_respects_the_cap() {
        let w = witness(&[2]);
        let flips_only = SweepConfig {
            drops: false,
            duplicates: false,
            benign: false,
            pairs: false,
            ..SweepConfig::default()
        };
        assert_eq!(SchedulePlanner::new(flips_only.clone()).plan(&w).len(), 16);
        let capped = SweepConfig {
            max_schedules: 5,
            ..flips_only
        };
        assert_eq!(SchedulePlanner::new(capped).plan(&w).len(), 5);
    }

    #[test]
    fn plans_are_deterministic() {
        let w = witness(&[3, 2, 2]);
        let a = SchedulePlanner::new(SweepConfig::default()).plan(&w);
        let b = SchedulePlanner::new(SweepConfig::default()).plan(&w);
        assert_eq!(a, b);
    }
}
