//! # achilles-sweep — fault-schedule campaigns with arming/disarming triage
//!
//! The pipeline so far validates each session Trojan under a *single*
//! fault plan. The interesting question for a session Trojan is *which*
//! delivery faults arm or disarm it: the 2008 S3 outage happened because
//! one specific corruption in one specific delivery position survived
//! every other scheduling accident, and arXiv:2006.06045's implicit
//! interactions are exactly "a fault at one delivery position changes the
//! exploitability of a message injected earlier". This crate makes that
//! measurable:
//!
//! 1. **Plan** ([`planner`]): a [`SchedulePlanner`] enumerates a bounded
//!    [`FaultSchedule`](achilles_replay::FaultSchedule) space per
//!    [`SessionWitness`](achilles_replay::SessionWitness) — drop /
//!    duplicate / benign-interleave / single bit-flip, per slot and wire
//!    bit — with canonical deduplication of schedules the replay
//!    semantics provably treat identically (a drop masks the same slot's
//!    other faults, out-of-range flips touch nothing).
//! 2. **Execute** ([`campaign`]): [`run_campaign`] replays every
//!    (witness, schedule) pair over
//!    [`achilles_symvm::parallel_map`] — replay is pure, so matrices are
//!    bit-identical for every worker count — with a persistent
//!    [`SweepCache`] that makes re-campaigns incremental. Fresh cells go
//!    through the replay fork-server
//!    ([`achilles_replay::replay_session_forked`]) when the target is
//!    snapshottable: schedules sharing a delivery prefix resume from a
//!    snapshot instead of cold-booting, with classifications pinned
//!    bit-identical to cold replay (disable via
//!    [`CampaignConfig::without_fork`]).
//! 3. **Triage** ([`matrix`]): each outcome is classified
//!    [`Armed`](ScheduleClass::Armed) /
//!    [`Diverged`](ScheduleClass::Diverged) /
//!    [`Disarmed`](ScheduleClass::Disarmed) /
//!    [`Masked`](ScheduleClass::Masked) /
//!    [`NewSignature`](ScheduleClass::NewSignature) by diffing its
//!    slot-aware crash signature against the fault-free baseline, and the
//!    per-witness [`SensitivityMatrix`] serializes through the shared
//!    `achilles::export` record vocabulary. `Diverged` is the armed
//!    refinement for multi-node targets whose detonation is a *silent
//!    root split* (every node keeps running; replicas disagree) rather
//!    than a crash — keyed on the `diverge:at:` markers a
//!    [`DivergenceProbe`](achilles::DivergenceProbe) folds into the
//!    effect stream.
//!
//! Like the rest of the pipeline, the crate names **no protocol**: the
//! `sweep_campaign` bench bin drives any registered
//! [`TargetSpec`](achilles::TargetSpec), and `achilles-gossip` (whose
//! seed→sync→read session is inherently schedule-sensitive) is the
//! shipped proving ground.
//!
//! ```
//! use achilles_gossip::GossipSpec;
//! use achilles_sweep::{run_campaign, CampaignConfig, SweepCache};
//!
//! let mut cache = SweepCache::new();
//! let sweeps = run_campaign(&GossipSpec::default(), &CampaignConfig::default(), &mut cache);
//! let matrix = &sweeps[0].matrices[0];
//! assert!(matrix.armed().count() >= 1, "some fault leaves the Trojan armed");
//! assert!(matrix.disarmed().count() >= 1, "some fault defuses it");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod campaign;
pub mod matrix;
pub mod planner;

pub use cache::{cell_key, CacheParseError, CachedCell, SweepCache};
pub use campaign::{
    run_campaign, sweep_report, sweep_witness, sweep_witness_on, CampaignConfig, SessionSweep,
    WitnessSweepStats,
};
pub use matrix::{
    classify, parse_schedule_token, schedule_token, Baseline, ScheduleClass, SensitivityCell,
    SensitivityMatrix,
};
pub use planner::{canonicalize, SchedulePlanner, SweepConfig};
