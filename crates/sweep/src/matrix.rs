//! Sensitivity classification and the per-witness [`SensitivityMatrix`].
//!
//! A campaign replays one witness under many schedules and asks, per
//! schedule: did the fault leave the Trojan armed (or *diverged*, when
//! the reproduced detonation is a silent multi-node root split rather
//! than a crash), disarm it, mask the question, or change the failure
//! into something new? The answer comes
//! from diffing the faulted replay's slot-aware
//! [`CrashSignature`](achilles_replay::CrashSignature) against the
//! fault-free baseline's — trustworthy precisely because
//! `SessionReplayResult::applied` records the faults that actually
//! touched the wire (an out-of-range flip can never masquerade as a
//! survived fault).
//!
//! The matrix serializes to a line-oriented text report through the
//! shared `achilles::export` vocabulary
//! ([`session_witness_record`](achilles::export::session_witness_record)
//! for the witness line), so sweep artifacts round-trip with the same
//! records the replay corpus uses.

use achilles::export::session_witness_record;
use achilles_replay::{
    CrashSignature, DeliveryFault, FaultSchedule, ReplayVerdict, SessionReplayResult,
    SessionWitness,
};

/// What one fault schedule did to one witness, relative to the fault-free
/// baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScheduleClass {
    /// The session still confirms as a Trojan with the baseline's exact
    /// crash signature: the fault does not defuse it.
    Armed,
    /// [`Armed`](ScheduleClass::Armed), and the detonation is a *silent
    /// multi-node split*: the baseline's signature carries a
    /// `diverge:at:` marker (replicas of the same state ended the run
    /// with different roots, nobody crashed) and the fault reproduces it
    /// exactly. Split out from `Armed` because the operational response
    /// differs — a crash pages someone, a divergence corrupts reads until
    /// an anti-entropy pass happens to notice.
    Diverged,
    /// The fault neutralized the Trojan: the session was rejected, became
    /// benign (e.g. a bit flip pulled the poison back into the legal
    /// domain), or the schedule dropped an arming slot outright.
    Disarmed,
    /// The schedule dropped a slot that was *not* arming the Trojan and
    /// the incomplete replay carries no evidence of the Trojan's failure:
    /// the replay proves nothing either way.
    Masked,
    /// The Trojan's failure still fired, with a crash signature different
    /// from the baseline's — either the session still confirms (a fault
    /// changed or re-armed the failure mode, the paper's S3 bit-flip
    /// shape), or a non-arming slot was dropped yet the delivered poison
    /// detonated anyway (every baseline failure marker survives in the
    /// faulted effects).
    NewSignature,
}

impl ScheduleClass {
    /// Stable report/cache-form name.
    pub fn as_str(self) -> &'static str {
        match self {
            ScheduleClass::Armed => "armed",
            ScheduleClass::Diverged => "diverged",
            ScheduleClass::Disarmed => "disarmed",
            ScheduleClass::Masked => "masked",
            ScheduleClass::NewSignature => "new-signature",
        }
    }

    /// Parses the [`ScheduleClass::as_str`] form.
    pub fn parse(s: &str) -> Option<ScheduleClass> {
        Some(match s {
            "armed" => ScheduleClass::Armed,
            "diverged" => ScheduleClass::Diverged,
            "disarmed" => ScheduleClass::Disarmed,
            "masked" => ScheduleClass::Masked,
            "new-signature" => ScheduleClass::NewSignature,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ScheduleClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// The baseline facts one witness's classifications are judged against —
/// exactly what the fault-free replay establishes, in a form a
/// [`SweepCache`](crate::SweepCache) entry can reconstruct.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Baseline {
    /// The fault-free replay's verdict.
    pub verdict: ReplayVerdict,
    /// The fault-free replay's slot-aware crash signature.
    pub signature: CrashSignature,
    /// The slots the fault-free replay attributes the Trojan to.
    pub trojan_slots: Vec<usize>,
}

impl Baseline {
    /// The baseline facts of a fault-free replay result.
    pub fn of(result: &SessionReplayResult) -> Baseline {
        Baseline {
            verdict: result.verdict,
            signature: result.signature.clone(),
            trojan_slots: result.trojan_slots.clone(),
        }
    }

    /// Rebuilds a baseline from its cached verdict + signature: the slot
    /// attribution rides in the signature's `trojan-slot:<N>` effect
    /// markers, which [`replay_session`](achilles_replay::replay_session)
    /// folds in for every delivered un-generable slot.
    pub fn from_signature(verdict: ReplayVerdict, signature: CrashSignature) -> Baseline {
        let mut trojan_slots: Vec<usize> = signature
            .effects
            .iter()
            .filter_map(|e| e.strip_prefix("trojan-slot:")?.parse().ok())
            .collect();
        trojan_slots.sort_unstable();
        trojan_slots.dedup();
        Baseline {
            verdict,
            signature,
            trojan_slots,
        }
    }

    /// The baseline's *failure markers*: the effect notes that name the
    /// concrete failure itself (`crash:` / `family:` / `leak:` prefixes —
    /// the triage-family convention every shipped deployment follows —
    /// plus the `diverge:` markers of a silent multi-node split), as
    /// opposed to delivery bookkeeping like `seed:stored`.
    fn failure_markers(&self) -> impl Iterator<Item = &String> {
        self.signature.effects.iter().filter(|e| {
            ["crash:", "family:", "leak:", "diverge:"]
                .iter()
                .any(|p| e.starts_with(p))
        })
    }
}

/// Classifies one faulted replay against the fault-free baseline of the
/// same witness.
pub fn classify(baseline: &Baseline, faulted: &SessionReplayResult) -> ScheduleClass {
    match faulted.verdict {
        ReplayVerdict::ConfirmedTrojan => {
            if baseline.verdict == ReplayVerdict::ConfirmedTrojan
                && faulted.signature == baseline.signature
            {
                // An exact reproduction of a silently-splitting baseline
                // is its own class: still armed, but the failure is a
                // multi-node root divergence, not a crash.
                if baseline.signature.diverged() {
                    ScheduleClass::Diverged
                } else {
                    ScheduleClass::Armed
                }
            } else {
                ScheduleClass::NewSignature
            }
        }
        ReplayVerdict::Dropped => {
            // Judged against the *applied* schedule: only drops that
            // actually happened count, and only drops of a slot the
            // baseline attributes the Trojan to disarm it.
            let dropped_arming = faulted
                .applied
                .slots
                .iter()
                .enumerate()
                .any(|(slot, fault)| fault.drop && baseline.trojan_slots.contains(&slot));
            if dropped_arming {
                return ScheduleClass::Disarmed;
            }
            // A non-arming slot was dropped, so the session-complete
            // verdict is unavailable — but the replay may still have
            // *proved* the fault does not defuse the Trojan: the poison
            // was delivered (an arming slot is still attributed) and every
            // baseline failure marker fired anyway. Discarding that
            // evidence as "masked" would under-report armedness.
            let poison_delivered = faulted
                .trojan_slots
                .iter()
                .any(|s| baseline.trojan_slots.contains(s));
            let mut markers = baseline.failure_markers().peekable();
            let evidence_survives =
                markers.peek().is_some() && markers.all(|m| faulted.signature.effects.contains(m));
            if poison_delivered && evidence_survives {
                ScheduleClass::NewSignature
            } else {
                ScheduleClass::Masked
            }
        }
        ReplayVerdict::Rejected | ReplayVerdict::AcceptedGenerable => ScheduleClass::Disarmed,
    }
}

/// Serializes a schedule as a compact, stable token: per-slot fault lists
/// joined by `,` (`"drop@s0,dup+flip17@s2"`), or `"none"` for the
/// fault-free schedule — the schedule half of a sweep-cache key.
pub fn schedule_token(schedule: &FaultSchedule) -> String {
    let mut parts = Vec::new();
    for (slot, fault) in schedule.slots.iter().enumerate() {
        let mut names = Vec::new();
        if fault.drop {
            names.push("drop".to_string());
        }
        if fault.duplicate {
            names.push("dup".to_string());
        }
        if fault.benign_before {
            names.push("benign".to_string());
        }
        if let Some(bit) = fault.flip_bit {
            names.push(format!("flip{bit}"));
        }
        if !names.is_empty() {
            parts.push(format!("{}@s{slot}", names.join("+")));
        }
    }
    if parts.is_empty() {
        "none".to_string()
    } else {
        parts.join(",")
    }
}

/// Parses the [`schedule_token`] form back into a schedule.
///
/// Returns `None` on any malformed component.
pub fn parse_schedule_token(token: &str) -> Option<FaultSchedule> {
    if token == "none" {
        return Some(FaultSchedule::none());
    }
    let mut schedule = FaultSchedule::none();
    for part in token.split(',') {
        let (names, slot) = part.split_once("@s")?;
        let slot: usize = slot.parse().ok()?;
        let mut fault = DeliveryFault::none();
        for name in names.split('+') {
            match name {
                "drop" => fault.drop = true,
                "dup" => fault.duplicate = true,
                "benign" => fault.benign_before = true,
                _ => {
                    let bit = name.strip_prefix("flip")?;
                    fault.flip_bit = Some(bit.parse().ok()?);
                }
            }
        }
        schedule = schedule.with(slot, fault);
    }
    Some(schedule)
}

/// One (schedule → outcome) row of a sensitivity matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SensitivityCell {
    /// The replayed schedule (canonical form).
    pub schedule: FaultSchedule,
    /// Classification against the fault-free baseline.
    pub class: ScheduleClass,
    /// The faulted replay's verdict.
    pub verdict: ReplayVerdict,
    /// The faulted replay's slot-aware crash signature.
    pub signature: CrashSignature,
}

/// The per-witness triage artifact of a sweep campaign: every schedule's
/// classification against the fault-free baseline.
#[derive(Clone, Debug)]
pub struct SensitivityMatrix {
    /// The swept witness (pre-fault).
    pub witness: SessionWitness,
    /// The fault-free baseline's verdict.
    pub baseline_verdict: ReplayVerdict,
    /// The fault-free baseline's crash signature.
    pub baseline_signature: CrashSignature,
    /// The slots the fault-free replay attributes the Trojan to.
    pub baseline_trojan_slots: Vec<usize>,
    /// One cell per planned schedule, in plan order.
    pub cells: Vec<SensitivityCell>,
}

impl SensitivityMatrix {
    /// Number of cells with `class`.
    pub fn count(&self, class: ScheduleClass) -> usize {
        self.cells.iter().filter(|c| c.class == class).count()
    }

    /// The schedules classified [`ScheduleClass::Armed`], in plan order.
    pub fn armed(&self) -> impl Iterator<Item = &FaultSchedule> {
        self.schedules_of(ScheduleClass::Armed)
    }

    /// The schedules classified [`ScheduleClass::Diverged`], in plan
    /// order.
    pub fn diverged(&self) -> impl Iterator<Item = &FaultSchedule> {
        self.schedules_of(ScheduleClass::Diverged)
    }

    /// The schedules classified [`ScheduleClass::Disarmed`], in plan order.
    pub fn disarmed(&self) -> impl Iterator<Item = &FaultSchedule> {
        self.schedules_of(ScheduleClass::Disarmed)
    }

    /// The schedules classified `class`, in plan order.
    pub fn schedules_of(&self, class: ScheduleClass) -> impl Iterator<Item = &FaultSchedule> {
        self.cells
            .iter()
            .filter(move |c| c.class == class)
            .map(|c| &c.schedule)
    }

    /// Serializes the matrix as a line-oriented text report: a witness
    /// line (the shared
    /// [`session_witness_record`](achilles::export::session_witness_record)
    /// form), a baseline line, then one `token|class|verdict|signature`
    /// line per cell, in plan order.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "witness {}\n",
            session_witness_record(&self.witness.fields)
        ));
        out.push_str(&format!(
            "baseline {}|slots={}\n",
            self.baseline_signature.to_line(),
            self.baseline_trojan_slots
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(","),
        ));
        for cell in &self.cells {
            out.push_str(&format!(
                "{}|{}|{}|{}\n",
                schedule_token(&cell.schedule),
                cell.class,
                cell.verdict.as_str(),
                cell.signature.to_line(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(
        verdict: ReplayVerdict,
        effects: Vec<&str>,
        trojan_slots: Vec<usize>,
        applied: FaultSchedule,
    ) -> SessionReplayResult {
        let witness = SessionWitness {
            index: 0,
            server_path_id: 0,
            fields: vec![vec![0], vec![0]],
            wire: vec![vec![0], vec![0]],
        };
        SessionReplayResult {
            witness,
            outcome: Default::default(),
            applied,
            generable_slots: vec![Some(false), Some(true)],
            trojan_slots,
            verdict,
            signature: CrashSignature::for_session(
                "t",
                verdict,
                2,
                effects.into_iter().map(String::from).collect(),
            ),
        }
    }

    fn baseline() -> SessionReplayResult {
        result(
            ReplayVerdict::ConfirmedTrojan,
            vec!["crash:x", "trojan-slot:0"],
            vec![0],
            FaultSchedule::none(),
        )
    }

    #[test]
    fn same_signature_confirms_armed_and_new_signature_splits() {
        let armed = result(
            ReplayVerdict::ConfirmedTrojan,
            vec!["crash:x", "trojan-slot:0"],
            vec![0],
            FaultSchedule::none(),
        );
        assert_eq!(
            classify(&Baseline::of(&baseline()), &armed),
            ScheduleClass::Armed
        );
        let changed = result(
            ReplayVerdict::ConfirmedTrojan,
            vec!["crash:y", "trojan-slot:0"],
            vec![0],
            FaultSchedule::none(),
        );
        assert_eq!(
            classify(&Baseline::of(&baseline()), &changed),
            ScheduleClass::NewSignature
        );
    }

    #[test]
    fn diverging_baselines_classify_exact_reproductions_as_diverged() {
        let diverging = || {
            result(
                ReplayVerdict::ConfirmedTrojan,
                vec![
                    "diverge:at:0",
                    "diverge:root:shard0:00000000000000aa",
                    "diverge:root:shard1:00000000000000bb",
                    "family:sender-spoof",
                    "trojan-slot:0",
                ],
                vec![0],
                FaultSchedule::none(),
            )
        };
        let baseline = Baseline::of(&diverging());
        // Exact reproduction of the splitting signature: Diverged, the
        // armed-with-silent-split refinement.
        assert_eq!(classify(&baseline, &diverging()), ScheduleClass::Diverged);
        // A different split (changed digest partition) is a new signature.
        let resplit = result(
            ReplayVerdict::ConfirmedTrojan,
            vec![
                "diverge:at:0",
                "diverge:root:shard0:00000000000000aa",
                "diverge:root:shard1:00000000000000aa",
                "family:sender-spoof",
                "trojan-slot:0",
            ],
            vec![0],
            FaultSchedule::none(),
        );
        assert_eq!(classify(&baseline, &resplit), ScheduleClass::NewSignature);
        // Dropping a non-arming slot while every diverge marker survives:
        // the split still happened, evidence intact — NewSignature, not
        // Masked (the `diverge:` prefix counts as a failure marker).
        let mut survived = diverging();
        survived.verdict = ReplayVerdict::Dropped;
        survived.signature = CrashSignature::for_session(
            "t",
            ReplayVerdict::Dropped,
            2,
            diverging().signature.effects.clone(),
        );
        survived.applied = FaultSchedule::at(
            1,
            DeliveryFault {
                drop: true,
                ..DeliveryFault::none()
            },
        );
        assert_eq!(classify(&baseline, &survived), ScheduleClass::NewSignature);
        // The class name round-trips through its cache form.
        assert_eq!(
            ScheduleClass::parse(ScheduleClass::Diverged.as_str()),
            Some(ScheduleClass::Diverged)
        );
        assert_eq!(ScheduleClass::Diverged.to_string(), "diverged");
    }

    #[test]
    fn drops_split_into_disarmed_and_masked_by_arming_slot() {
        let drop_at = |slot: usize| {
            result(
                ReplayVerdict::Dropped,
                vec![],
                vec![],
                FaultSchedule::at(
                    slot,
                    DeliveryFault {
                        drop: true,
                        ..DeliveryFault::none()
                    },
                ),
            )
        };
        assert_eq!(
            classify(&Baseline::of(&baseline()), &drop_at(0)),
            ScheduleClass::Disarmed
        );
        assert_eq!(
            classify(&Baseline::of(&baseline()), &drop_at(1)),
            ScheduleClass::Masked
        );
    }

    #[test]
    fn surviving_failure_evidence_upgrades_masked_to_new_signature() {
        // A non-arming slot dropped, but the delivered poison still fired:
        // the baseline's failure markers all appear in the faulted effects
        // and the arming slot is still attributed — the replay *proved*
        // the fault does not defuse the Trojan.
        let fired = result(
            ReplayVerdict::Dropped,
            vec!["crash:x", "trojan-slot:0"],
            vec![0],
            FaultSchedule::at(
                1,
                DeliveryFault {
                    drop: true,
                    ..DeliveryFault::none()
                },
            ),
        );
        assert_eq!(
            classify(&Baseline::of(&baseline()), &fired),
            ScheduleClass::NewSignature
        );
        // Same drop, but the detonation evidence is gone: inconclusive.
        let silent = result(
            ReplayVerdict::Dropped,
            vec!["trojan-slot:0"],
            vec![0],
            FaultSchedule::at(
                1,
                DeliveryFault {
                    drop: true,
                    ..DeliveryFault::none()
                },
            ),
        );
        assert_eq!(
            classify(&Baseline::of(&baseline()), &silent),
            ScheduleClass::Masked
        );
    }

    #[test]
    fn baseline_round_trips_through_its_signature() {
        let base = baseline();
        let rebuilt = Baseline::from_signature(base.verdict, base.signature.clone());
        assert_eq!(rebuilt, Baseline::of(&base));
        assert_eq!(rebuilt.trojan_slots, vec![0]);
    }

    #[test]
    fn rejections_and_benign_accepts_disarm() {
        let rejected = result(
            ReplayVerdict::Rejected,
            vec![],
            vec![],
            FaultSchedule::none(),
        );
        assert_eq!(
            classify(&Baseline::of(&baseline()), &rejected),
            ScheduleClass::Disarmed
        );
        let benign = result(
            ReplayVerdict::AcceptedGenerable,
            vec![],
            vec![],
            FaultSchedule::none(),
        );
        assert_eq!(
            classify(&Baseline::of(&baseline()), &benign),
            ScheduleClass::Disarmed
        );
    }

    #[test]
    fn schedule_tokens_round_trip() {
        let schedule = FaultSchedule::at(
            0,
            DeliveryFault {
                drop: true,
                benign_before: true,
                ..DeliveryFault::none()
            },
        )
        .with(
            2,
            DeliveryFault {
                duplicate: true,
                flip_bit: Some(17),
                ..DeliveryFault::none()
            },
        );
        let token = schedule_token(&schedule);
        assert_eq!(token, "drop+benign@s0,dup+flip17@s2");
        assert_eq!(parse_schedule_token(&token), Some(schedule));
        assert_eq!(parse_schedule_token("none"), Some(FaultSchedule::none()));
        assert_eq!(schedule_token(&FaultSchedule::none()), "none");
        assert_eq!(parse_schedule_token("garbage"), None);
        assert_eq!(parse_schedule_token("flop3@s0"), None);
    }

    #[test]
    fn matrix_text_lists_every_cell_in_plan_order() {
        let base = baseline();
        let matrix = SensitivityMatrix {
            witness: base.witness.clone(),
            baseline_verdict: base.verdict,
            baseline_signature: base.signature.clone(),
            baseline_trojan_slots: base.trojan_slots.clone(),
            cells: vec![SensitivityCell {
                schedule: FaultSchedule::at(
                    0,
                    DeliveryFault {
                        drop: true,
                        ..DeliveryFault::none()
                    },
                ),
                class: ScheduleClass::Disarmed,
                verdict: ReplayVerdict::Dropped,
                signature: CrashSignature::for_session("t", ReplayVerdict::Dropped, 2, vec![]),
            }],
        };
        let text = matrix.to_text();
        assert!(text.starts_with("witness 0/0\n"), "{text}");
        assert!(text.contains("baseline t/confirmed@s2/"), "{text}");
        assert!(
            text.contains("drop@s0|disarmed|dropped|t/dropped@s2/"),
            "{text}"
        );
        assert_eq!(matrix.count(ScheduleClass::Disarmed), 1);
        assert_eq!(matrix.disarmed().count(), 1);
        assert_eq!(matrix.armed().count(), 0);
    }
}
