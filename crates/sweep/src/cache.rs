//! The persistent sweep cache: (witness, schedule) classifications
//! remembered across runs.
//!
//! A campaign's cost is `witnesses × schedules` replays, and re-running an
//! unchanged system re-derives exactly the same cells. The cache remembers
//! each cell under a `witness-record@schedule-token` key, so a later run
//! replays only genuinely new (witness, schedule) pairs — the same
//! incrementality contract [`ReplayCorpus`](achilles_replay::ReplayCorpus)
//! gives validation.
//!
//! The text format is versioned at least as fast as the replay corpus's
//! witness-record format (`/`-separated per-slot records since corpus
//! v2): the keys embed that record form verbatim, so a corpus format bump
//! is a sweep-cache format bump, and the CI cache keyed on the sweep
//! version invalidates both together. The cache may also bump alone
//! (**v3** gated the fork-server rollout on one full re-derivation;
//! **v4** rides the corpus-v3 divergence bump — cells may now carry the
//! `diverged` class and `diverge:*` effect markers). A file with a stale
//! or foreign header is rejected with a line-1 error naming the expected
//! version; only an absent (or zero-byte) file loads empty.

use std::collections::HashMap;
use std::fmt;

use achilles::export::session_witness_record;
use achilles_replay::{CrashSignature, FaultSchedule, ReplayVerdict, SessionWitness};

use crate::matrix::{schedule_token, ScheduleClass};

/// File-format version tag (first line of every sweep-cache file). The
/// `v4` bump marks divergence-aware triage: cells may carry the
/// `diverged` class and `diverge:*` / `root:agree:*` effect markers, and
/// pre-divergence caches classified silently-splitting baselines as
/// plain `armed` — they must be re-derived, not reinterpreted.
const HEADER: &str = "# achilles-sweep cache v4";

/// A malformed sweep-cache cell line, with the 1-based line it sits on.
///
/// The same contract [`CorpusParseError`](achilles_replay::CorpusParseError)
/// gives the replay corpus: within a well-versioned file, a cell that
/// cannot be parsed is a **hard error**, never a silent skip — a
/// long-running service answers queries from this store, so a truncated
/// line that quietly vanished would silently re-classify its cell as
/// unswept (or let a half-written file pass for a smaller one).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheParseError {
    /// 1-based line number of the malformed cell.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for CacheParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep cache line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for CacheParseError {}

/// One cached (witness, schedule) classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedCell {
    /// Classification against the fault-free baseline.
    pub class: ScheduleClass,
    /// The faulted replay's verdict.
    pub verdict: ReplayVerdict,
    /// The faulted replay's crash signature.
    pub signature: CrashSignature,
}

/// A persistent map from (witness, schedule) to sweep classification.
#[derive(Clone, Debug, Default)]
pub struct SweepCache {
    cells: HashMap<String, CachedCell>,
}

/// The cache key of one (witness, schedule) pair within `scope` — the
/// `target/session` namespace. The scope is part of the identity: two
/// sessions (or targets) whose witnesses serialize to the same field
/// record are still replayed against different deployments, so their
/// cells must never answer for each other.
pub fn cell_key(scope: &str, witness: &SessionWitness, schedule: &FaultSchedule) -> String {
    format!(
        "{scope}::{}@{}",
        session_witness_record(&witness.fields),
        schedule_token(schedule)
    )
}

impl SweepCache {
    /// An empty cache.
    pub fn new() -> SweepCache {
        SweepCache::default()
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cached cell for a (witness, schedule) pair in `scope`, if any.
    pub fn get(
        &self,
        scope: &str,
        witness: &SessionWitness,
        schedule: &FaultSchedule,
    ) -> Option<&CachedCell> {
        self.cells.get(&cell_key(scope, witness, schedule))
    }

    /// Caches a cell; later inserts under the same key win (replay is a
    /// pure function of the scoped pair, so they can only re-assert the
    /// value).
    pub fn insert(
        &mut self,
        scope: &str,
        witness: &SessionWitness,
        schedule: &FaultSchedule,
        cell: CachedCell,
    ) {
        self.cells.insert(cell_key(scope, witness, schedule), cell);
    }

    /// Serializes to the line-oriented cache text form (keys sorted, so
    /// the file is reproducible).
    pub fn to_text(&self) -> String {
        let mut keys: Vec<&String> = self.cells.keys().collect();
        keys.sort();
        let mut out = String::from(HEADER);
        out.push('\n');
        for key in keys {
            let cell = &self.cells[key];
            out.push_str(&format!(
                "{key}|{}|{}|{}\n",
                cell.class,
                cell.verdict.as_str(),
                cell.signature.to_line()
            ));
        }
        out
    }

    /// Parses the [`SweepCache::to_text`] form. Empty text is an empty
    /// cache (a freshly-created file); anything else must lead with the
    /// current version header — a stale or foreign header is a line-1
    /// [`CacheParseError`] naming the expected version, so an operator
    /// pointing a service at a pre-bump store learns it needs re-deriving
    /// instead of watching it silently load as empty. Within a
    /// well-versioned file a malformed cell line is equally hard — a
    /// results store must not quietly shed cells.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheParseError`] for the first malformed line: a
    /// missing or outdated version header, a truncated
    /// `key|class|verdict|signature` record, a key without the `::` scope
    /// or `@` schedule separators, or an unparsable class / verdict /
    /// signature.
    pub fn from_text(text: &str) -> Result<SweepCache, CacheParseError> {
        let mut cache = SweepCache::new();
        let mut lines = text.lines().enumerate();
        match lines.next() {
            None => return Ok(cache),
            Some((_, first)) if first.trim() == HEADER => {}
            Some((_, first)) => {
                return Err(CacheParseError {
                    line: 1,
                    reason: format!(
                        "unsupported cache header {:?} (expected {HEADER:?}; \
                         older formats must be re-derived)",
                        first.trim()
                    ),
                });
            }
        }
        for (index, line) in lines {
            let lineno = index + 1;
            let err = |reason: String| CacheParseError {
                line: lineno,
                reason,
            };
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, '|');
            let (Some(key), Some(class), Some(verdict), Some(sig)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(err(format!(
                    "truncated cell (expected key|class|verdict|signature): {line:?}"
                )));
            };
            if !key.contains("::") || !key.contains('@') {
                return Err(err(format!(
                    "malformed cell key (expected scope::witness@schedule): {key:?}"
                )));
            }
            let class = ScheduleClass::parse(class)
                .ok_or_else(|| err(format!("unknown schedule class {class:?}")))?;
            let verdict = ReplayVerdict::parse(verdict)
                .ok_or_else(|| err(format!("unknown replay verdict {verdict:?}")))?;
            let signature = CrashSignature::from_line(sig)
                .ok_or_else(|| err(format!("unparsable crash signature {sig:?}")))?;
            cache.cells.insert(
                key.to_string(),
                CachedCell {
                    class,
                    verdict,
                    signature,
                },
            );
        }
        Ok(cache)
    }

    /// Writes the cache to a file, crash-safely: the text is written to a
    /// sibling temp file and atomically renamed over `path`, so a crash
    /// mid-save leaves either the old complete file or the new complete
    /// file — never a truncated hybrid that would fail
    /// [`SweepCache::from_text`] on the next boot.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a cache from a file; a missing file is an empty cache.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `NotFound`; a present but
    /// malformed file surfaces its [`CacheParseError`] as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &std::path::Path) -> std::io::Result<SweepCache> {
        match std::fs::read_to_string(path) {
            Ok(text) => SweepCache::from_text(&text).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            }),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(SweepCache::new()),
            Err(e) => Err(e),
        }
    }

    /// Iterates the cached cells as `(key, cell)` pairs, in arbitrary
    /// order (keys sort in [`SweepCache::to_text`]).
    pub fn cells(&self) -> impl Iterator<Item = (&str, &CachedCell)> {
        self.cells.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Absorbs every cell of `other`; later inserts win (replay is a pure
    /// function of the scoped pair, so they can only re-assert).
    pub fn merge(&mut self, other: &SweepCache) {
        for (key, cell) in &other.cells {
            self.cells.insert(key.clone(), cell.clone());
        }
    }

    /// Drops every cell within `scope` (the `target/session` namespace),
    /// returning how many were invalidated — the spec-epoch-bump lever: a
    /// changed spec invalidates exactly its own scope's cells, nobody
    /// else's.
    pub fn invalidate_scope(&mut self, scope: &str) -> usize {
        let prefix = format!("{scope}::");
        let before = self.cells.len();
        self.cells.retain(|key, _| !key.starts_with(&prefix));
        before - self.cells.len()
    }

    /// Drops every cell of one witness within `scope` (the baseline cell
    /// included), returning how many were invalidated — the corpus-bump
    /// lever: re-deriving one changed witness record touches exactly that
    /// witness's cells.
    pub fn invalidate_witness(&mut self, scope: &str, witness: &SessionWitness) -> usize {
        let prefix = witness_prefix(scope, witness);
        let before = self.cells.len();
        self.cells.retain(|key, _| !key.starts_with(&prefix));
        before - self.cells.len()
    }

    /// Clones every cell of one witness within `scope` into a fresh
    /// mini-cache — the unit a campaign executor carries to a worker:
    /// sweeping against the extract replays exactly the cells missing
    /// from it, with no lock on the shared store.
    pub fn extract_witness(&self, scope: &str, witness: &SessionWitness) -> SweepCache {
        let prefix = witness_prefix(scope, witness);
        SweepCache {
            cells: self
                .cells
                .iter()
                .filter(|(key, _)| key.starts_with(&prefix))
                .map(|(key, cell)| (key.clone(), cell.clone()))
                .collect(),
        }
    }

    /// Clones every cell whose scope starts with `prefix` (e.g. a
    /// `"target/"` prefix selects every session of one target) into a
    /// fresh cache — how a service shards one store into per-target
    /// durable files.
    pub fn extract_scope_prefix(&self, prefix: &str) -> SweepCache {
        SweepCache {
            cells: self
                .cells
                .iter()
                .filter(|(key, _)| {
                    key.split_once("::")
                        .is_some_and(|(scope, _)| scope.starts_with(prefix))
                })
                .map(|(key, cell)| (key.clone(), cell.clone()))
                .collect(),
        }
    }
}

/// The shared key prefix of every cell of one witness within `scope`
/// (baseline and schedule cells alike) — what witness-level invalidation
/// and extraction match on.
fn witness_prefix(scope: &str, witness: &SessionWitness) -> String {
    format!("{scope}::{}@", session_witness_record(&witness.fields))
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_replay::DeliveryFault;

    fn witness() -> SessionWitness {
        SessionWitness {
            index: 0,
            server_path_id: 0,
            fields: vec![vec![1, 2], vec![3]],
            wire: vec![vec![1, 2], vec![3]],
        }
    }

    fn drop0() -> FaultSchedule {
        FaultSchedule::at(
            0,
            DeliveryFault {
                drop: true,
                ..DeliveryFault::none()
            },
        )
    }

    #[test]
    fn cells_round_trip_through_text() {
        let mut cache = SweepCache::new();
        cache.insert(
            "g/seed-sync-read",
            &witness(),
            &drop0(),
            CachedCell {
                class: ScheduleClass::Disarmed,
                verdict: ReplayVerdict::Dropped,
                signature: CrashSignature::for_session("g", ReplayVerdict::Dropped, 2, vec![]),
            },
        );
        let text = cache.to_text();
        assert!(
            text.contains("g/seed-sync-read::1,2/3@drop@s0|disarmed|dropped|g/dropped@s2/"),
            "{text}"
        );
        let back = SweepCache::from_text(&text).expect("round-trip text parses");
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.get("g/seed-sync-read", &witness(), &drop0()),
            cache.get("g/seed-sync-read", &witness(), &drop0())
        );
        assert!(back
            .get("g/seed-sync-read", &witness(), &FaultSchedule::none())
            .is_none());
        // The scope is part of the identity: another session's cells never
        // answer for this one, even with byte-identical witness fields.
        assert!(back.get("g/other-session", &witness(), &drop0()).is_none());
    }

    #[test]
    fn diverged_cells_round_trip_through_text() {
        let mut cache = SweepCache::new();
        cache.insert(
            "shardexec/write-sync-read",
            &witness(),
            &drop0(),
            CachedCell {
                class: ScheduleClass::Diverged,
                verdict: ReplayVerdict::ConfirmedTrojan,
                signature: CrashSignature::for_session(
                    "shardexec",
                    ReplayVerdict::ConfirmedTrojan,
                    3,
                    vec![
                        "diverge:at:0".into(),
                        "diverge:root:shard0:00000000000000aa".into(),
                        "diverge:root:shard1:00000000000000bb".into(),
                        "family:sender-spoof".into(),
                    ],
                ),
            },
        );
        let text = cache.to_text();
        assert!(text.contains("|diverged|confirmed|"), "{text}");
        let back = SweepCache::from_text(&text).expect("diverged cells parse back");
        let cell = back
            .get("shardexec/write-sync-read", &witness(), &drop0())
            .expect("cell survives the round trip");
        assert_eq!(cell.class, ScheduleClass::Diverged);
        assert!(cell.signature.diverged());
        assert_eq!(
            cell.signature.divergence().unwrap().split_sets(),
            vec![vec!["shard0"], vec!["shard1"]]
        );
    }

    #[test]
    fn stale_headers_are_line_one_errors_naming_the_expected_version() {
        // Regression: pre-v4 loaders treated a stale header as "load as
        // empty", silently discarding the store — a long-running service
        // would re-derive everything without telling anyone.
        for stale in [
            "no header\nx|y|z|w\n",
            "# achilles-sweep cache v1\nk|armed|confirmed|g/confirmed/\n",
            "# achilles-sweep cache v3\ns::w@none|armed|confirmed|g/confirmed/\n",
        ] {
            let err = SweepCache::from_text(stale).expect_err("stale header must error");
            assert_eq!(err.line, 1, "{stale:?}");
            assert!(
                err.reason.contains("v4"),
                "names the expected version: {err}"
            );
        }
        // A zero-byte file stays an empty cache, matching the
        // missing-file path of `load`.
        assert!(SweepCache::from_text("").unwrap().is_empty());
    }

    #[test]
    fn malformed_cells_are_line_numbered_hard_errors() {
        let truncated = format!("{HEADER}\n\ngarbage\n");
        let err = SweepCache::from_text(&truncated).expect_err("truncated cell must error");
        assert_eq!(err.line, 3, "blank lines still count toward numbering");
        assert!(err.reason.contains("truncated"), "{err}");

        let bad_key = format!("{HEADER}\nno-separators|armed|confirmed|g/confirmed/\n");
        let err = SweepCache::from_text(&bad_key).expect_err("key without :: or @ must error");
        assert_eq!(err.line, 2);

        let bad_class = format!("{HEADER}\ns::w@none|bogus|confirmed|g/confirmed/\n");
        let err = SweepCache::from_text(&bad_class).expect_err("unknown class must error");
        assert!(err.reason.contains("bogus"), "{err}");
    }

    #[test]
    fn save_is_atomic_and_load_reports_malformed_files() {
        let dir = std::env::temp_dir().join(format!("achilles-sweep-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sweep");
        let mut cache = SweepCache::new();
        cache.insert(
            "g/s",
            &witness(),
            &drop0(),
            CachedCell {
                class: ScheduleClass::Armed,
                verdict: ReplayVerdict::ConfirmedTrojan,
                signature: CrashSignature::for_session(
                    "g",
                    ReplayVerdict::ConfirmedTrojan,
                    2,
                    vec![],
                ),
            },
        );
        cache.save(&path).unwrap();
        // The temp file never survives a completed save.
        assert!(!dir.join("t.sweep.tmp").exists());
        assert_eq!(SweepCache::load(&path).unwrap().len(), 1);

        std::fs::write(&path, format!("{HEADER}\ntruncated\n")).unwrap();
        let err = SweepCache::load(&path).expect_err("malformed file must not load silently");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalidation_is_scoped_to_exactly_the_bumped_keys() {
        let cell = || CachedCell {
            class: ScheduleClass::Armed,
            verdict: ReplayVerdict::ConfirmedTrojan,
            signature: CrashSignature::for_session("g", ReplayVerdict::ConfirmedTrojan, 2, vec![]),
        };
        let other = SessionWitness {
            index: 1,
            server_path_id: 0,
            fields: vec![vec![9, 9], vec![9]],
            wire: vec![vec![9, 9], vec![9]],
        };
        let mut cache = SweepCache::new();
        cache.insert("g/a", &witness(), &drop0(), cell());
        cache.insert("g/a", &witness(), &FaultSchedule::none(), cell());
        cache.insert("g/a", &other, &drop0(), cell());
        cache.insert("g/b", &witness(), &drop0(), cell());

        // Witness-level: exactly that witness's cells, baseline included.
        let extracted = cache.extract_witness("g/a", &witness());
        assert_eq!(extracted.len(), 2);
        let mut bumped = cache.clone();
        assert_eq!(bumped.invalidate_witness("g/a", &witness()), 2);
        assert!(bumped.get("g/a", &other, &drop0()).is_some());
        assert!(bumped.get("g/b", &witness(), &drop0()).is_some());

        // Scope-level: every witness of the scope, no neighbor scopes.
        let mut bumped = cache.clone();
        assert_eq!(bumped.invalidate_scope("g/a"), 3);
        assert_eq!(bumped.len(), 1);

        // Prefix extraction shards a store by target.
        assert_eq!(cache.extract_scope_prefix("g/").len(), 4);
        assert_eq!(cache.extract_scope_prefix("h/").len(), 0);

        // Merge re-absorbs an extract.
        let mut merged = bumped;
        merged.merge(&extracted);
        assert_eq!(merged.len(), 3);
    }
}
