//! The persistent sweep cache: (witness, schedule) classifications
//! remembered across runs.
//!
//! A campaign's cost is `witnesses × schedules` replays, and re-running an
//! unchanged system re-derives exactly the same cells. The cache remembers
//! each cell under a `witness-record@schedule-token` key, so a later run
//! replays only genuinely new (witness, schedule) pairs — the same
//! incrementality contract [`ReplayCorpus`](achilles_replay::ReplayCorpus)
//! gives validation.
//!
//! The text format is versioned at least as fast as the replay corpus's
//! witness-record format (**v2** — `/`-separated per-slot records): the
//! keys embed that record form verbatim, so a corpus format bump is a
//! sweep-cache format bump, and the CI cache keyed on the sweep version
//! invalidates both together. The cache may also bump alone (**v3**
//! gated the fork-server rollout on one full re-derivation). A file with
//! a missing or wrong header loads as an empty cache by design.

use std::collections::HashMap;

use achilles::export::session_witness_record;
use achilles_replay::{CrashSignature, FaultSchedule, ReplayVerdict, SessionWitness};

use crate::matrix::{schedule_token, ScheduleClass};

/// File-format version tag (first line of every sweep-cache file). The
/// `v3` bump invalidates caches written before the fork-server era so
/// every cell is re-derived once through the snapshot replay path (cell
/// semantics are unchanged — the bump is a one-time revalidation gate).
const HEADER: &str = "# achilles-sweep cache v3";

/// One cached (witness, schedule) classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedCell {
    /// Classification against the fault-free baseline.
    pub class: ScheduleClass,
    /// The faulted replay's verdict.
    pub verdict: ReplayVerdict,
    /// The faulted replay's crash signature.
    pub signature: CrashSignature,
}

/// A persistent map from (witness, schedule) to sweep classification.
#[derive(Clone, Debug, Default)]
pub struct SweepCache {
    cells: HashMap<String, CachedCell>,
}

/// The cache key of one (witness, schedule) pair within `scope` — the
/// `target/session` namespace. The scope is part of the identity: two
/// sessions (or targets) whose witnesses serialize to the same field
/// record are still replayed against different deployments, so their
/// cells must never answer for each other.
pub fn cell_key(scope: &str, witness: &SessionWitness, schedule: &FaultSchedule) -> String {
    format!(
        "{scope}::{}@{}",
        session_witness_record(&witness.fields),
        schedule_token(schedule)
    )
}

impl SweepCache {
    /// An empty cache.
    pub fn new() -> SweepCache {
        SweepCache::default()
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cached cell for a (witness, schedule) pair in `scope`, if any.
    pub fn get(
        &self,
        scope: &str,
        witness: &SessionWitness,
        schedule: &FaultSchedule,
    ) -> Option<&CachedCell> {
        self.cells.get(&cell_key(scope, witness, schedule))
    }

    /// Caches a cell; later inserts under the same key win (replay is a
    /// pure function of the scoped pair, so they can only re-assert the
    /// value).
    pub fn insert(
        &mut self,
        scope: &str,
        witness: &SessionWitness,
        schedule: &FaultSchedule,
        cell: CachedCell,
    ) {
        self.cells.insert(cell_key(scope, witness, schedule), cell);
    }

    /// Serializes to the line-oriented cache text form (keys sorted, so
    /// the file is reproducible).
    pub fn to_text(&self) -> String {
        let mut keys: Vec<&String> = self.cells.keys().collect();
        keys.sort();
        let mut out = String::from(HEADER);
        out.push('\n');
        for key in keys {
            let cell = &self.cells[key];
            out.push_str(&format!(
                "{key}|{}|{}|{}\n",
                cell.class,
                cell.verdict.as_str(),
                cell.signature.to_line()
            ));
        }
        out
    }

    /// Parses the [`SweepCache::to_text`] form. A missing or wrong header
    /// yields an empty cache (stale format by definition); malformed lines
    /// are skipped — a cache is advisory, never authoritative.
    pub fn from_text(text: &str) -> SweepCache {
        let mut cache = SweepCache::new();
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return cache;
        }
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, '|');
            let (Some(key), Some(class), Some(verdict), Some(sig)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let (Some(class), Some(verdict), Some(signature)) = (
                ScheduleClass::parse(class),
                ReplayVerdict::parse(verdict),
                CrashSignature::from_line(sig),
            ) else {
                continue;
            };
            cache.cells.insert(
                key.to_string(),
                CachedCell {
                    class,
                    verdict,
                    signature,
                },
            );
        }
        cache
    }

    /// Writes the cache to a file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a cache from a file; a missing file is an empty cache.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `NotFound`.
    pub fn load(path: &std::path::Path) -> std::io::Result<SweepCache> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(SweepCache::from_text(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(SweepCache::new()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_replay::DeliveryFault;

    fn witness() -> SessionWitness {
        SessionWitness {
            index: 0,
            server_path_id: 0,
            fields: vec![vec![1, 2], vec![3]],
            wire: vec![vec![1, 2], vec![3]],
        }
    }

    fn drop0() -> FaultSchedule {
        FaultSchedule::at(
            0,
            DeliveryFault {
                drop: true,
                ..DeliveryFault::none()
            },
        )
    }

    #[test]
    fn cells_round_trip_through_text() {
        let mut cache = SweepCache::new();
        cache.insert(
            "g/seed-sync-read",
            &witness(),
            &drop0(),
            CachedCell {
                class: ScheduleClass::Disarmed,
                verdict: ReplayVerdict::Dropped,
                signature: CrashSignature::for_session("g", ReplayVerdict::Dropped, 2, vec![]),
            },
        );
        let text = cache.to_text();
        assert!(
            text.contains("g/seed-sync-read::1,2/3@drop@s0|disarmed|dropped|g/dropped@s2/"),
            "{text}"
        );
        let back = SweepCache::from_text(&text);
        assert_eq!(back.len(), 1);
        assert_eq!(
            back.get("g/seed-sync-read", &witness(), &drop0()),
            cache.get("g/seed-sync-read", &witness(), &drop0())
        );
        assert!(back
            .get("g/seed-sync-read", &witness(), &FaultSchedule::none())
            .is_none());
        // The scope is part of the identity: another session's cells never
        // answer for this one, even with byte-identical witness fields.
        assert!(back.get("g/other-session", &witness(), &drop0()).is_none());
    }

    #[test]
    fn wrong_header_or_malformed_lines_degrade_gracefully() {
        assert!(SweepCache::from_text("no header\nx|y|z|w\n").is_empty());
        assert!(SweepCache::from_text(
            "# achilles-sweep cache v1\nk|armed|confirmed|g/confirmed/\n"
        )
        .is_empty());
        let partial = format!("{HEADER}\ngarbage\nk@none|armed|confirmed|g/confirmed/\n");
        assert_eq!(SweepCache::from_text(&partial).len(), 1);
    }
}
