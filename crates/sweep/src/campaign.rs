//! The campaign executor: every (witness, schedule) pair replayed,
//! classified, and folded into per-witness sensitivity matrices.
//!
//! [`run_campaign`] is registry-drivable: it takes any
//! [`TargetSpec`](achilles::TargetSpec), discovers the spec's declared
//! session Trojans through
//! [`AchillesSession::run_sessions`](achilles::AchillesSession::run_sessions),
//! and hands each [`SessionReport`] to [`sweep_report`] — which
//! establishes every witness's fault-free baseline and fans the schedule
//! space out over [`achilles_symvm::parallel_map`]. Replay is a pure
//! function of the (witness, schedule) pair, so every matrix is
//! bit-identical for every worker count. A [`SweepCache`] makes
//! re-campaigns incremental: known pairs — the baseline included, under
//! the `none` schedule token — are looked up, not replayed. Callers that
//! already hold a [`SessionReport`] (a bench comparing worker counts,
//! say) use [`sweep_report`] directly and pay for discovery once.

use std::time::{Duration, Instant};

use achilles::{AchillesSession, ReplayTarget, SessionReport, TargetSpec};
use achilles_replay::{
    session_from_report, FaultSchedule, ForkServer, ForkStats, ReplayVerdict, SessionWitness,
};

use crate::cache::{CachedCell, SweepCache};
use crate::matrix::{classify, Baseline, ScheduleClass, SensitivityCell, SensitivityMatrix};
use crate::planner::{SchedulePlanner, SweepConfig};

/// Configuration of one sweep campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The schedule space enumerated per witness.
    pub sweep: SweepConfig,
    /// Worker threads for the per-witness schedule fan-out (and the
    /// session discovery; 0/1 = inline).
    pub workers: usize,
    /// Replay fresh cells through the snapshot fork-server when the target
    /// supports it (default). `false` forces cold per-cell boots — the
    /// `--no-fork` baseline; classifications are bit-identical either way.
    pub fork: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            sweep: SweepConfig::default(),
            workers: 0,
            fork: true,
        }
    }
}

impl CampaignConfig {
    /// Fan the replays out over `n` threads.
    pub fn with_workers(mut self, n: usize) -> CampaignConfig {
        self.workers = n.max(1);
        self
    }

    /// Disable the fork-server: cold-boot every fresh cell.
    pub fn without_fork(mut self) -> CampaignConfig {
        self.fork = false;
        self
    }
}

/// Replay accounting of one witness sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WitnessSweepStats {
    /// Replays actually performed (schedule cells plus the fault-free
    /// baseline when it was not cached).
    pub replayed: usize,
    /// Lookups answered from the [`SweepCache`] (baseline included).
    pub cache_hits: usize,
    /// Worker threads the replay fan-out could actually use
    /// (`min(workers, independent replay units)`, at least 1 — cold
    /// replay's units are the fresh cells, the fork-server's are the
    /// prefix trie's root subtrees).
    pub workers_effective: usize,
    /// Fork-server accounting for the fresh-cell fan-out (cold stats —
    /// one boot per cell, nothing shared — when the fork path was off or
    /// unsupported).
    pub fork: ForkStats,
}

/// Sweeps one witness within `scope` (the `target/session` cache
/// namespace): fault-free baseline, planned schedule space, one
/// classified [`SensitivityCell`] per schedule — all cache-assisted,
/// the baseline included.
///
/// One-shot form: builds a detached [`ForkServer`] reproducing the batch
/// executor exactly and delegates to [`sweep_witness_on`]. Callers that
/// sweep a *stream* of witnesses against one target (the fleetd campaign
/// executors) hold a persistent server instead and pay one boot for the
/// whole stream.
pub fn sweep_witness(
    target: &dyn ReplayTarget,
    scope: &str,
    witness: &SessionWitness,
    planner: &SchedulePlanner,
    workers: usize,
    fork: bool,
    cache: &mut SweepCache,
) -> (SensitivityMatrix, WitnessSweepStats) {
    let mut server = ForkServer::detached(target, workers, fork);
    sweep_witness_on(&mut server, scope, witness, planner, cache)
}

/// Sweeps one witness through an existing [`ForkServer`] — the shared
/// body behind [`sweep_witness`] and the fleetd campaign executors, so
/// service answers are bit-identical to batch answers by construction:
/// same baseline, same planner, same replay entry points, same
/// classification.
pub fn sweep_witness_on(
    server: &mut ForkServer<'_>,
    scope: &str,
    witness: &SessionWitness,
    planner: &SchedulePlanner,
    cache: &mut SweepCache,
) -> (SensitivityMatrix, WitnessSweepStats) {
    let _span = achilles_obs::span("sweep:witness", "sweep");
    let mut stats = WitnessSweepStats::default();
    let workers = server.workers();

    // The baseline is a (witness, schedule) cell like any other — cached
    // under the `none` schedule token, with the slot attribution riding in
    // the signature's `trojan-slot:<N>` markers.
    let fault_free = FaultSchedule::none();
    let baseline = match cache.get(scope, witness, &fault_free) {
        Some(cell) => {
            stats.cache_hits += 1;
            Baseline::from_signature(cell.verdict, cell.signature.clone())
        }
        None => {
            stats.replayed += 1;
            let result = server.replay_baseline(witness);
            let baseline = Baseline::of(&result);
            cache.insert(
                scope,
                witness,
                &fault_free,
                CachedCell {
                    // The baseline judged against itself: armed — or
                    // diverged, when its own detonation is a silent
                    // multi-node split — when it confirms (the value is
                    // never consulted for classification — the verdict
                    // and signature are).
                    class: if result.verdict == ReplayVerdict::ConfirmedTrojan {
                        if result.signature.diverged() {
                            ScheduleClass::Diverged
                        } else {
                            ScheduleClass::Armed
                        }
                    } else {
                        ScheduleClass::Disarmed
                    },
                    verdict: result.verdict,
                    signature: result.signature,
                },
            );
            baseline
        }
    };

    let schedules = planner.plan(witness);
    let mut cached: Vec<Option<CachedCell>> = Vec::with_capacity(schedules.len());
    let mut fresh: Vec<&FaultSchedule> = Vec::new();
    for schedule in &schedules {
        match cache.get(scope, witness, schedule) {
            Some(cell) => {
                stats.cache_hits += 1;
                cached.push(Some(cell.clone()));
            }
            None => {
                fresh.push(schedule);
                cached.push(None);
            }
        }
    }
    stats.replayed += fresh.len();
    let (replayed, fork_stats) = server.replay(witness, &fresh);
    stats.workers_effective = workers.max(1).min(fork_stats.branches).max(1);
    stats.fork = fork_stats;

    let mut replayed = replayed.into_iter();
    let cells: Vec<SensitivityCell> = schedules
        .iter()
        .zip(cached)
        .map(|(schedule, hit)| match hit {
            Some(cell) => SensitivityCell {
                schedule: schedule.clone(),
                class: cell.class,
                verdict: cell.verdict,
                signature: cell.signature,
            },
            None => {
                let result = replayed.next().expect("one replay per fresh schedule");
                let class = classify(&baseline, &result);
                cache.insert(
                    scope,
                    witness,
                    schedule,
                    CachedCell {
                        class,
                        verdict: result.verdict,
                        signature: result.signature.clone(),
                    },
                );
                SensitivityCell {
                    schedule: schedule.clone(),
                    class,
                    verdict: result.verdict,
                    signature: result.signature,
                }
            }
        })
        .collect();

    record_witness_metrics(&stats, &cells);

    (
        SensitivityMatrix {
            witness: witness.clone(),
            baseline_verdict: baseline.verdict,
            baseline_signature: baseline.signature,
            baseline_trojan_slots: baseline.trojan_slots,
            cells,
        },
        stats,
    )
}

/// Mirrors one witness sweep's counters into the process metrics registry
/// as `achilles_sweep_*` series. Cell totals, the replayed/cached split,
/// and the per-class breakdown are all fixed by (witness, planner, cache
/// state), so every series is
/// [`Deterministic`](achilles_obs::Class::Deterministic); the fork-server's
/// own wall-varying counters are recorded separately by
/// [`ForkStats::record_metrics`].
fn record_witness_metrics(stats: &WitnessSweepStats, cells: &[SensitivityCell]) {
    use achilles_obs::Class::Deterministic;
    let reg = achilles_obs::global();
    reg.add(Deterministic, "achilles_sweep_witnesses_total", &[], 1);
    reg.add(
        Deterministic,
        "achilles_sweep_cells_total",
        &[],
        cells.len() as u64,
    );
    reg.add(
        Deterministic,
        "achilles_sweep_replays_total",
        &[],
        stats.replayed as u64,
    );
    reg.add(
        Deterministic,
        "achilles_sweep_cache_hits_total",
        &[],
        stats.cache_hits as u64,
    );
    for (class, label) in [
        (ScheduleClass::Armed, "armed"),
        (ScheduleClass::Diverged, "diverged"),
        (ScheduleClass::Disarmed, "disarmed"),
        (ScheduleClass::Masked, "masked"),
        (ScheduleClass::NewSignature, "new_signature"),
    ] {
        let count = cells.iter().filter(|c| c.class == class).count() as u64;
        reg.add(
            Deterministic,
            "achilles_sweep_cells_by_class_total",
            &[("class", label)],
            count,
        );
    }
}

/// Everything one campaign produced for one declared session.
#[derive(Debug)]
pub struct SessionSweep {
    /// The swept target's registry name.
    pub target: &'static str,
    /// The declared session's name.
    pub session: String,
    /// Session Trojans discovered by the symbolic analysis.
    pub discovered: usize,
    /// Witnesses whose fault-free baseline confirmed concretely.
    pub confirmed_fault_free: usize,
    /// One sensitivity matrix per witness, in report order.
    pub matrices: Vec<SensitivityMatrix>,
    /// Total matrix cells (witnesses × planned schedules; baselines are
    /// accounted in `replayed`/`cache_hits`, not here).
    pub cells: usize,
    /// Replays actually performed (the rest were sweep-cache hits).
    pub replayed: usize,
    /// Lookups answered from the sweep cache (baselines included).
    pub cache_hits: usize,
    /// Cells classified [`ScheduleClass::Armed`].
    pub armed: usize,
    /// Cells classified [`ScheduleClass::Diverged`] — armed, with the
    /// reproduced detonation a silent multi-node root split.
    pub diverged: usize,
    /// Cells classified [`ScheduleClass::Disarmed`].
    pub disarmed: usize,
    /// Cells classified [`ScheduleClass::Masked`].
    pub masked: usize,
    /// Cells classified [`ScheduleClass::NewSignature`].
    pub new_signature: usize,
    /// Worker threads the replay fan-out could actually use (max over the
    /// witnesses; 1 when everything was cached).
    pub workers_effective: usize,
    /// Fork-server accounting summed over the witnesses (cold stats when
    /// the fork path was off or unsupported).
    pub fork: ForkStats,
    /// Wall-clock time of the whole session sweep (discovery excluded).
    pub elapsed: Duration,
}

impl SessionSweep {
    /// Count of cells with `class`, summed over the matrices.
    pub fn count(&self, class: ScheduleClass) -> usize {
        match class {
            ScheduleClass::Armed => self.armed,
            ScheduleClass::Diverged => self.diverged,
            ScheduleClass::Disarmed => self.disarmed,
            ScheduleClass::Masked => self.masked,
            ScheduleClass::NewSignature => self.new_signature,
        }
    }

    /// Deployment boots the fork-server avoided relative to cold replay.
    pub fn boots_saved(&self) -> usize {
        self.fork.boots_saved()
    }

    /// Mean prefix-trie depth replayed cells were resumed from.
    pub fn mean_shared_prefix_depth(&self) -> f64 {
        self.fork.mean_shared_prefix_depth()
    }
}

/// Sweeps every witness of one discovered [`SessionReport`] — the unit a
/// caller that already paid for discovery composes with: the report can
/// be swept several times (different worker counts, different caches)
/// without re-running the symbolic analysis.
pub fn sweep_report(
    spec: &dyn TargetSpec,
    report: &SessionReport,
    config: &CampaignConfig,
    cache: &mut SweepCache,
) -> SessionSweep {
    let workers = config.workers.max(1);
    let started = Instant::now();
    let target = spec.session_replay_target(&report.session);
    let scope = format!("{}/{}", spec.name(), report.session);
    let planner = SchedulePlanner::new(config.sweep.clone());
    let mut sweep = SessionSweep {
        target: spec.name(),
        session: report.session.clone(),
        discovered: report.trojans.len(),
        confirmed_fault_free: 0,
        matrices: Vec::with_capacity(report.trojans.len()),
        cells: 0,
        replayed: 0,
        cache_hits: 0,
        armed: 0,
        diverged: 0,
        disarmed: 0,
        masked: 0,
        new_signature: 0,
        workers_effective: 1,
        fork: ForkStats::default(),
        elapsed: Duration::ZERO,
    };
    for (i, trojan) in report.trojans.iter().enumerate() {
        let witness = session_from_report(&report.layouts, i, trojan)
            .expect("session layouts are wire-encodable");
        let (matrix, stats) = sweep_witness(
            &*target,
            &scope,
            &witness,
            &planner,
            workers,
            config.fork,
            cache,
        );
        if matrix.baseline_verdict == ReplayVerdict::ConfirmedTrojan {
            sweep.confirmed_fault_free += 1;
        }
        sweep.cells += matrix.cells.len();
        sweep.replayed += stats.replayed;
        sweep.cache_hits += stats.cache_hits;
        sweep.workers_effective = sweep.workers_effective.max(stats.workers_effective);
        sweep.fork.absorb(&stats.fork);
        sweep.armed += matrix.count(ScheduleClass::Armed);
        sweep.diverged += matrix.count(ScheduleClass::Diverged);
        sweep.disarmed += matrix.count(ScheduleClass::Disarmed);
        sweep.masked += matrix.count(ScheduleClass::Masked);
        sweep.new_signature += matrix.count(ScheduleClass::NewSignature);
        sweep.matrices.push(matrix);
    }
    sweep.elapsed = started.elapsed();
    sweep
}

/// Runs the campaign for every session a spec declares: discovery via
/// [`AchillesSession::run_sessions`], then a cache-assisted
/// [`sweep_report`] per session. Returns one [`SessionSweep`] per
/// declared session, in declaration order (empty when the spec declares
/// none).
pub fn run_campaign(
    spec: &dyn TargetSpec,
    config: &CampaignConfig,
    cache: &mut SweepCache,
) -> Vec<SessionSweep> {
    let workers = config.workers.max(1);
    let mut driver = AchillesSession::new(spec).workers(workers);
    let reports = driver.run_sessions();
    reports
        .iter()
        .map(|report| sweep_report(spec, report, config, cache))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::schedule_token;
    use achilles_gossip::GossipSpec;

    fn matrix_key(sweep: &SessionSweep) -> Vec<Vec<(String, ScheduleClass, String)>> {
        sweep
            .matrices
            .iter()
            .map(|m| {
                m.cells
                    .iter()
                    .map(|c| (schedule_token(&c.schedule), c.class, c.signature.to_line()))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn gossip_campaign_finds_armed_and_disarmed_schedules() {
        let spec = GossipSpec::default();
        let mut cache = SweepCache::new();
        let sweeps = run_campaign(&spec, &CampaignConfig::default(), &mut cache);
        assert_eq!(sweeps.len(), 1);
        let sweep = &sweeps[0];
        assert_eq!(sweep.session, "seed-sync-read");
        assert_eq!(sweep.discovered, 1);
        assert_eq!(
            sweep.confirmed_fault_free, sweep.discovered,
            "every session Trojan confirms fault-free"
        );
        assert!(sweep.armed >= 1, "some schedule keeps the Trojan armed");
        assert!(sweep.disarmed >= 1, "some schedule disarms it");
        let matrix = &sweep.matrices[0];
        assert_eq!(matrix.baseline_trojan_slots, vec![0]);
        // Duplicating the seed is idempotent: still armed, same signature.
        assert!(matrix.armed().any(|s| schedule_token(s) == "dup@s0"));
        // Dropping the arming slot disarms.
        assert!(matrix.disarmed().any(|s| schedule_token(s) == "drop@s0"));
        // Dropping the sync leaves the detonation evidence intact (the
        // poison still crashes the read): a new signature, not "masked".
        assert!(matrix
            .schedules_of(ScheduleClass::NewSignature)
            .any(|s| schedule_token(s) == "drop@s1"));
        // Dropping the read removes the detonation itself: genuinely
        // inconclusive.
        assert!(matrix
            .schedules_of(ScheduleClass::Masked)
            .any(|s| schedule_token(s) == "drop@s2"));
        // Duplicating the read hits the wedged node: a new failure mode.
        assert!(matrix
            .schedules_of(ScheduleClass::NewSignature)
            .any(|s| schedule_token(s) == "dup@s2"));
    }

    #[test]
    fn shardexec_campaign_triages_the_silent_split() {
        let spec = achilles_shardexec::ShardexecSpec::default();
        let mut cache = SweepCache::new();
        let sweeps = run_campaign(&spec, &CampaignConfig::default(), &mut cache);
        assert_eq!(sweeps.len(), 1);
        let sweep = &sweeps[0];
        assert_eq!(sweep.session, "write-sync-read");
        assert_eq!(sweep.discovered, 1);
        assert_eq!(
            sweep.confirmed_fault_free, sweep.discovered,
            "the forged-sender session confirms fault-free"
        );
        assert!(
            sweep.diverged >= 1,
            "some schedule reproduces the silent split exactly"
        );
        assert!(sweep.disarmed >= 1, "some schedule defuses it");
        let matrix = &sweep.matrices[0];
        // The detonation itself is a divergence, not a crash: the
        // baseline signature carries the split markers.
        assert!(matrix.baseline_signature.diverged());
        assert_eq!(matrix.baseline_trojan_slots, vec![0]);
        // Duplicating the forged write is idempotent: same split, same
        // signature — Diverged, the armed-with-silent-split class.
        assert!(matrix.diverged().any(|s| schedule_token(s) == "dup@s0"));
        assert!(
            matrix.armed().count() == 0,
            "every exact reproduction of a splitting baseline is Diverged, never plain Armed"
        );
        // Dropping the forged write restores agreement: disarmed, and the
        // replay carries no divergence evidence.
        assert!(matrix.disarmed().any(|s| schedule_token(s) == "drop@s0"));
        let drop0 = matrix
            .cells
            .iter()
            .find(|c| schedule_token(&c.schedule) == "drop@s0")
            .expect("the drop-arming schedule is planned");
        assert!(
            !drop0.signature.diverged(),
            "dropping the arming slot restores root agreement: {}",
            drop0.signature.to_line()
        );
    }

    #[test]
    fn cache_makes_the_second_campaign_replay_free() {
        let spec = GossipSpec::default();
        let mut cache = SweepCache::new();
        let first = run_campaign(&spec, &CampaignConfig::default(), &mut cache);
        assert!(first[0].replayed > 0);
        assert_eq!(first[0].cache_hits, 0);

        // Round-trip the cache through its text form, like the CI cache
        // does across commits.
        let mut reloaded = SweepCache::from_text(&cache.to_text()).expect("cache text round-trips");
        let second = run_campaign(&spec, &CampaignConfig::default(), &mut reloaded);
        assert_eq!(
            second[0].replayed, 0,
            "every cell — the baseline included — is a cache hit"
        );
        assert_eq!(
            second[0].cache_hits,
            second[0].cells + second[0].discovered,
            "one baseline hit per witness on top of the schedule cells"
        );
        assert_eq!(matrix_key(&first[0]), matrix_key(&second[0]));
        // The reconstructed baseline carries the slot attribution.
        assert_eq!(
            second[0].matrices[0].baseline_trojan_slots,
            first[0].matrices[0].baseline_trojan_slots
        );
    }

    #[test]
    fn campaigns_are_worker_count_invariant() {
        let spec = GossipSpec::default();
        let mut c1 = SweepCache::new();
        let mut c4 = SweepCache::new();
        let seq = run_campaign(&spec, &CampaignConfig::default(), &mut c1);
        let par = run_campaign(&spec, &CampaignConfig::default().with_workers(4), &mut c4);
        assert_eq!(matrix_key(&seq[0]), matrix_key(&par[0]));
        assert_eq!(c1.to_text(), c4.to_text());
    }

    #[test]
    fn sweep_report_reuses_one_discovery() {
        // The bench-bin shape: discover once, sweep the same report under
        // several configurations.
        let spec = GossipSpec::default();
        let reports = achilles::AchillesSession::new(&spec).run_sessions();
        let a = sweep_report(
            &spec,
            &reports[0],
            &CampaignConfig::default(),
            &mut SweepCache::new(),
        );
        let b = sweep_report(
            &spec,
            &reports[0],
            &CampaignConfig::default().with_workers(4),
            &mut SweepCache::new(),
        );
        assert_eq!(matrix_key(&a), matrix_key(&b));
        let via_campaign = run_campaign(&spec, &CampaignConfig::default(), &mut SweepCache::new());
        assert_eq!(matrix_key(&a), matrix_key(&via_campaign[0]));
    }
}
