//! The fleetd service: control handlers, campaign executors, durability.
//!
//! [`Fleetd`] owns four pieces wired through one `Arc`d shared core:
//!
//! - the **witness store** ([`WitnessStore`]) and the **sweep cache**
//!   behind a single state mutex — handlers and executors hold it only
//!   for validation and publication, never across a replay;
//! - the **work queue** ([`WorkQueue`]): ingest extracts a per-witness
//!   mini-cache ([`SweepCache::extract_witness`]) and enqueues a
//!   self-contained [`WorkItem`], so executors replay without touching
//!   shared state until the one short publish lock at the end;
//! - the **campaign executors**: `shards` threads, each draining its
//!   queue lane (stealing from siblings) in same-scope batches served by
//!   one persistent [`ForkServer`] — per-target fork-server affinity, one
//!   boot per batch instead of one per witness;
//! - the **incremental layer**: every unit of work is keyed by the sweep
//!   cache's `cell_key`, so a no-op re-ingest is answered inline with
//!   zero replays, a single-witness ingest replays exactly that witness's
//!   missing cells, and an `EPOCH` bump invalidates exactly the bumped
//!   target's scopes (results derived against an older epoch are dropped
//!   on publish, never mixed in).
//!
//! Service answers are bit-identical to the batch pipeline by
//! construction: handlers and executors call the same
//! [`sweep_witness_on`] body `sweep_campaign` runs, against the same
//! planner and cache keys.

use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use achilles::export::session_witness_record;
use achilles::{TargetRegistry, TargetSpec};
use achilles_obs::Class;
use achilles_replay::{FaultSchedule, ForkServer, ReplayCorpus, SessionWitness};
use achilles_sweep::{
    sweep_witness_on, SchedulePlanner, SweepCache, SweepConfig, WitnessSweepStats,
};

use crate::protocol::{parse_request, Reply, Request};
use crate::queue::{WorkItem, WorkQueue};
use crate::store::{SessionShard, WitnessResult, WitnessStore};

/// Service configuration.
#[derive(Clone, Debug)]
pub struct FleetdConfig {
    /// Campaign executor threads (and queue lanes). `0` runs no
    /// background executors: work queues up until [`Fleetd::pump`] drains
    /// it on the calling thread — the deterministic harness mode.
    pub shards: usize,
    /// Per-item replay fan-out for the delegated batch paths (cold
    /// replay, `fork` off). Executors keep `1` live session each
    /// regardless — service parallelism comes from `shards`.
    pub workers: usize,
    /// Backpressure bound: an ingest whose fresh cells would push the
    /// queue past this depth is refused with `BUSY` instead of queuing
    /// unboundedly.
    pub max_queued_cells: usize,
    /// The schedule space planned per witness (must match the batch
    /// campaign's for bit-identical answers).
    pub sweep: SweepConfig,
    /// Replay through the snapshot fork-server when targets support it.
    pub fork: bool,
    /// Durable state directory (`<target>.sweep` caches +
    /// `<target>.<session>.witnesses` corpora); `None` = in-memory only.
    pub state_dir: Option<PathBuf>,
}

impl Default for FleetdConfig {
    fn default() -> FleetdConfig {
        FleetdConfig {
            shards: 1,
            workers: 1,
            max_queued_cells: 1 << 16,
            sweep: SweepConfig::default(),
            fork: true,
            state_dir: None,
        }
    }
}

impl FleetdConfig {
    /// Run `n` campaign executor threads (0 = pump-driven).
    pub fn shards(mut self, n: usize) -> FleetdConfig {
        self.shards = n;
        self
    }

    /// Bound the queue at `cells` fresh cells.
    pub fn max_queued_cells(mut self, cells: usize) -> FleetdConfig {
        self.max_queued_cells = cells;
        self
    }

    /// Plan the reduced [`SweepConfig::quick`] schedule space.
    pub fn quick(mut self) -> FleetdConfig {
        self.sweep = SweepConfig::quick();
        self
    }

    /// Cold-boot every cell (no fork-server).
    pub fn without_fork(mut self) -> FleetdConfig {
        self.fork = false;
        self
    }

    /// Persist store and cache under `dir`.
    pub fn state_dir(mut self, dir: PathBuf) -> FleetdConfig {
        self.state_dir = Some(dir);
        self
    }
}

/// A point-in-time snapshot of the service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Registered targets.
    pub targets: usize,
    /// Stored witnesses across every shard.
    pub witnesses: usize,
    /// Witnesses with a published result.
    pub results: usize,
    /// Fresh cells queued or in flight.
    pub pending_cells: usize,
    /// High-water mark of `pending_cells`.
    pub peak_cells: usize,
    /// Witnesses accepted (duplicates excluded).
    pub ingested: usize,
    /// Ingests answered `dup`.
    pub duplicates: usize,
    /// Replays performed by campaign executors (baselines included).
    pub replays: usize,
    /// Cells answered from the sweep cache.
    pub cache_hits: usize,
    /// Cells executed through the fork path.
    pub fork_plans: usize,
    /// Deployment boots performed.
    pub boots: usize,
    /// Snapshot restores performed.
    pub snapshot_restores: usize,
    /// Ingests refused with `BUSY`.
    pub busy_rejections: usize,
    /// Completed campaigns dropped because their epoch was stale or
    /// their witness was evicted mid-flight.
    pub stale_results: usize,
}

impl ServiceStats {
    /// Boots the fork-servers avoided relative to cold replay.
    pub fn boots_saved(&self) -> usize {
        self.fork_plans.saturating_sub(self.boots)
    }

    /// Renders the `STATS` reply payload.
    pub fn render(&self) -> String {
        format!(
            "targets={} witnesses={} results={} pending_cells={} peak_cells={} \
             ingested={} dup={} replays={} cache_hits={} plans={} boots={} \
             boots_saved={} restores={} busy={} stale={}",
            self.targets,
            self.witnesses,
            self.results,
            self.pending_cells,
            self.peak_cells,
            self.ingested,
            self.duplicates,
            self.replays,
            self.cache_hits,
            self.fork_plans,
            self.boots,
            self.boots_saved(),
            self.snapshot_restores,
            self.busy_rejections,
            self.stale_results,
        )
    }
}

#[derive(Debug, Default)]
struct Counters {
    ingested: AtomicUsize,
    duplicates: AtomicUsize,
    replays: AtomicUsize,
    cache_hits: AtomicUsize,
    fork_plans: AtomicUsize,
    boots: AtomicUsize,
    snapshot_restores: AtomicUsize,
    busy_rejections: AtomicUsize,
    stale_results: AtomicUsize,
}

/// Store + cache behind the one state mutex.
#[derive(Debug)]
struct State {
    store: WitnessStore,
    cache: SweepCache,
}

#[derive(Debug)]
struct Shared {
    config: FleetdConfig,
    registry: TargetRegistry,
    queue: WorkQueue,
    state: Mutex<State>,
    counters: Counters,
    /// Per-service metrics (request/error counters, latency histograms,
    /// queue gauges). Kept off the process-global registry so multiple
    /// `Fleetd` instances in one process (the test suites) never mix
    /// series; `METRICS` merges this with [`achilles_obs::global`].
    metrics: achilles_obs::MetricsRegistry,
    stopped: AtomicBool,
}

/// The running service. In-process embedders drive it through
/// [`Fleetd::handle_line`] (exactly what the TCP/unix-socket transports
/// feed it); [`Fleetd::stats`] / [`Fleetd::query_text`] are typed
/// conveniences over the same state.
#[derive(Debug)]
pub struct Fleetd {
    shared: Arc<Shared>,
    executors: Mutex<Vec<JoinHandle<()>>>,
}

impl Fleetd {
    /// Boots a service over `registry`. With a configured state dir, any
    /// durable caches and witness corpora for registered specs are
    /// reloaded first — cached witnesses complete warm (zero replays),
    /// anything else is re-enqueued.
    ///
    /// # Errors
    ///
    /// Propagates state-dir I/O errors; a present but malformed durable
    /// cache or corpus is an error, never silently shed.
    pub fn start(registry: TargetRegistry, config: FleetdConfig) -> io::Result<Fleetd> {
        let shards = config.shards;
        let shared = Arc::new(Shared {
            queue: WorkQueue::new(shards.max(1)),
            registry,
            config,
            state: Mutex::new(State {
                store: WitnessStore::new(),
                cache: SweepCache::new(),
            }),
            counters: Counters::default(),
            metrics: achilles_obs::MetricsRegistry::new(),
            stopped: AtomicBool::new(false),
        });
        let service = Fleetd {
            shared,
            executors: Mutex::new(Vec::new()),
        };
        service.load()?;
        let mut executors = service.executors.lock().expect("executor list lock");
        for worker in 0..shards {
            let shared = Arc::clone(&service.shared);
            executors.push(
                std::thread::Builder::new()
                    .name(format!("fleetd-exec-{worker}"))
                    .spawn(move || executor_loop(&shared, worker))
                    .expect("spawn campaign executor"),
            );
        }
        drop(executors);
        Ok(service)
    }

    /// Parses and serves one protocol line, returning the rendered reply.
    /// Malformed lines are counted per malformation class in
    /// `achilles_fleetd_errors_total{class=...}` before the `ERR` reply.
    pub fn handle_line(&self, line: &str) -> String {
        match parse_request(line) {
            Ok(request) => self.handle(request).render(),
            Err(error) => {
                self.count_error(error.class);
                Reply::Err(error.reason).render()
            }
        }
    }

    /// Serves one parsed request: counts it, times it into the per-verb
    /// latency histogram, spans it for the trace, and counts handler-level
    /// `ERR` replies (well-formed but impossible requests) under the
    /// `rejected` error class.
    pub fn handle(&self, request: Request) -> Reply {
        let (verb, span_name) = verb_names(&request);
        let span = achilles_obs::timed(span_name, "fleetd");
        let reply = self.dispatch(request);
        let elapsed = span.finish();
        let m = &self.shared.metrics;
        m.add(
            Class::Deterministic,
            "achilles_fleetd_requests_total",
            &[("verb", verb)],
            1,
        );
        m.observe_ns(
            "achilles_fleetd_request_latency_ns",
            &[("verb", verb)],
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        );
        if matches!(reply, Reply::Err(_)) {
            self.count_error("rejected");
        }
        reply
    }

    fn count_error(&self, class: &str) {
        self.shared.metrics.add(
            Class::Deterministic,
            "achilles_fleetd_errors_total",
            &[("class", class)],
            1,
        );
    }

    fn dispatch(&self, request: Request) -> Reply {
        match request {
            Request::Hello => Reply::Ok(format!(
                "achilles-fleetd specs={}",
                self.shared.registry.names().join(",")
            )),
            Request::Stats => Reply::Ok(self.stats().render()),
            Request::Metrics => {
                let lines: Vec<String> = self.metrics_text().lines().map(str::to_string).collect();
                Reply::Lines("metrics".to_string(), lines)
            }
            Request::Register { target } => self.register(&target),
            Request::Ingest {
                target,
                session,
                record,
            } => self.ingest(&target, &session, &record, true),
            Request::Query {
                target,
                witness,
                class,
            } => self.query(&target, witness, class),
            Request::Drain => {
                self.drain();
                Reply::Ok("drained".to_string())
            }
            Request::Recampaign { target } => self.recampaign(&target),
            Request::Epoch { target } => self.epoch(&target),
            Request::Evict {
                target,
                session,
                record,
            } => self.evict(&target, &session, &record),
            Request::Save => match self.save() {
                Ok(()) => Reply::Ok("saved".to_string()),
                Err(e) => Reply::Err(format!("save failed: {e}")),
            },
            Request::Shutdown => match self.shutdown() {
                Ok(()) => Reply::Ok("bye".to_string()),
                Err(e) => Reply::Err(format!("shutdown failed: {e}")),
            },
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let state = self.shared.state.lock().expect("fleetd state lock");
        let c = &self.shared.counters;
        ServiceStats {
            targets: state.store.targets.len(),
            witnesses: state.store.witnesses(),
            results: state.store.results(),
            pending_cells: self.shared.queue.depth_cells(),
            peak_cells: self.shared.queue.peak_cells(),
            ingested: c.ingested.load(Ordering::SeqCst),
            duplicates: c.duplicates.load(Ordering::SeqCst),
            replays: c.replays.load(Ordering::SeqCst),
            cache_hits: c.cache_hits.load(Ordering::SeqCst),
            fork_plans: c.fork_plans.load(Ordering::SeqCst),
            boots: c.boots.load(Ordering::SeqCst),
            snapshot_restores: c.snapshot_restores.load(Ordering::SeqCst),
            busy_rejections: c.busy_rejections.load(Ordering::SeqCst),
            stale_results: c.stale_results.load(Ordering::SeqCst),
        }
    }

    /// The full metrics snapshot the `METRICS` verb serves: service
    /// counters and queue gauges mirrored into the service registry, then
    /// rendered merged with the process-global registry (solver, cache,
    /// fork, sweep series) — `# deterministic` section first, `# wall`
    /// second, each sorted.
    pub fn metrics_text(&self) -> String {
        self.record_metrics();
        achilles_obs::render_sections(&[achilles_obs::global(), &self.shared.metrics])
    }

    /// Mirrors [`Fleetd::stats`] and the per-shard queue backlog into the
    /// service registry. Deterministic series are those fixed by the
    /// request sequence alone (store sizes, ingest/replay/cache-hit
    /// totals — per-item replay sets are pinned at enqueue time by the
    /// extracted seed cache); anything shaped by executor scheduling
    /// (boots per batch, queue depths, busy/stale races) is wall-classed.
    fn record_metrics(&self) {
        let stats = self.stats();
        let m = &self.shared.metrics;
        let as_u64 = |n: usize| u64::try_from(n).unwrap_or(u64::MAX);
        let det: [(&str, usize); 7] = [
            ("achilles_fleetd_targets", stats.targets),
            ("achilles_fleetd_witnesses", stats.witnesses),
            ("achilles_fleetd_results", stats.results),
            ("achilles_fleetd_ingested_total", stats.ingested),
            ("achilles_fleetd_duplicates_total", stats.duplicates),
            ("achilles_fleetd_replays_total", stats.replays),
            ("achilles_fleetd_cache_hits_total", stats.cache_hits),
        ];
        for (name, value) in det {
            m.set(Class::Deterministic, name, &[], as_u64(value));
        }
        let wall: [(&str, usize); 8] = [
            ("achilles_fleetd_pending_cells", stats.pending_cells),
            ("achilles_fleetd_peak_cells", stats.peak_cells),
            ("achilles_fleetd_fork_plans_total", stats.fork_plans),
            ("achilles_fleetd_boots_total", stats.boots),
            ("achilles_fleetd_boots_saved_total", stats.boots_saved()),
            (
                "achilles_fleetd_snapshot_restores_total",
                stats.snapshot_restores,
            ),
            (
                "achilles_fleetd_busy_rejections_total",
                stats.busy_rejections,
            ),
            ("achilles_fleetd_stale_results_total", stats.stale_results),
        ];
        for (name, value) in wall {
            m.set(Class::Wall, name, &[], as_u64(value));
        }
        for (shard, cells) in self.shared.queue.lane_depth_cells().into_iter().enumerate() {
            let label = shard.to_string();
            m.set(
                Class::Wall,
                "achilles_fleetd_queue_depth_cells",
                &[("shard", &label)],
                as_u64(cells),
            );
        }
    }

    /// Snapshot of one verb's request-latency histogram (`None` before
    /// any request of that verb was served).
    pub fn request_latency(&self, verb: &str) -> Option<achilles_obs::HistogramSnapshot> {
        self.shared
            .metrics
            .histogram("achilles_fleetd_request_latency_ns", &[("verb", verb)])
    }

    /// The `QUERY` payload for `target` as one newline-joined string —
    /// the form compat asserts compare against batch matrices.
    pub fn query_text(
        &self,
        target: &str,
        witness: Option<usize>,
        class: Option<achilles_sweep::ScheduleClass>,
    ) -> Option<String> {
        match self.query(target, witness, class) {
            Reply::Lines(_, lines) => Some(lines.join("\n")),
            _ => None,
        }
    }

    /// Drains the queue: blocks until every enqueued campaign completed
    /// (with no executor threads, pumps on the calling thread instead).
    pub fn drain(&self) {
        if self.shared.config.shards == 0 {
            self.pump();
        } else {
            self.shared.queue.wait_idle();
        }
    }

    /// Processes queued work on the calling thread until the queue is
    /// empty, returning the items processed. The harness mode for
    /// `shards == 0`, and safe alongside running executors.
    pub fn pump(&self) -> usize {
        let mut processed = 0;
        while let Some(batch) = self.shared.queue.claim(0) {
            processed += batch.len();
            process_batch(&self.shared, batch);
        }
        processed
    }

    /// Persists the store and cache to the state dir (no-op without one):
    /// one `<target>.sweep` cache and one `<target>.<session>.witnesses`
    /// corpus per shard, every file written atomically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self) -> io::Result<()> {
        let Some(dir) = &self.shared.config.state_dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir)?;
        let state = self.shared.state.lock().expect("fleetd state lock");
        for shard in &state.store.targets {
            state
                .cache
                .extract_scope_prefix(&format!("{}/", shard.target))
                .save(&dir.join(format!("{}.sweep", shard.target)))?;
            for session in &shard.sessions {
                session
                    .to_corpus()
                    .save(&dir.join(format!("{}.{}.witnesses", shard.target, session.session)))?;
            }
        }
        Ok(())
    }

    /// Graceful shutdown: refuse new ingest, drain the queue, persist,
    /// and join the executors. Idempotent. (The `SHUTDOWN` command and
    /// the transport's signal handling both land here.)
    ///
    /// # Errors
    ///
    /// Propagates persistence I/O errors and executor panics.
    pub fn shutdown(&self) -> io::Result<()> {
        if self.shared.stopped.swap(true, Ordering::SeqCst) {
            return Ok(());
        }
        self.drain();
        self.shared.queue.close();
        let executors = std::mem::take(&mut *self.executors.lock().expect("executor list lock"));
        for handle in executors {
            handle
                .join()
                .map_err(|_| io::Error::other("campaign executor panicked"))?;
        }
        self.save()
    }

    fn register(&self, target: &str) -> Reply {
        if self.shared.stopped.load(Ordering::SeqCst) {
            return Reply::Err("shutting down".to_string());
        }
        let Some(spec) = self.shared.registry.get(target).cloned() else {
            return Reply::Err(format!("unknown target {target:?}"));
        };
        let mut state = self.shared.state.lock().expect("fleetd state lock");
        let sessions = state.store.register(&*spec);
        Reply::Ok(format!("target={target} sessions={sessions}"))
    }

    /// Validate → dedupe → (complete warm | enqueue) one witness record.
    /// `enforce_backpressure` is off for internal re-ingest (state-dir
    /// reload), which must never be refused.
    fn ingest(
        &self,
        target: &str,
        session: &str,
        record: &str,
        enforce_backpressure: bool,
    ) -> Reply {
        if self.shared.stopped.load(Ordering::SeqCst) {
            return Reply::Err("shutting down".to_string());
        }
        let Some(spec) = self.shared.registry.get(target).cloned() else {
            return Reply::Err(format!("unknown target {target:?}"));
        };
        let planner = SchedulePlanner::new(self.shared.config.sweep.clone());
        let mut guard = self.shared.state.lock().expect("fleetd state lock");
        let state = &mut *guard;
        let Some(tshard) = state.store.target_mut(target) else {
            return Reply::Err(format!("target {target:?} not registered (REGISTER first)"));
        };
        let epoch = tshard.epoch;
        let Some(shard) = tshard.session_mut(session) else {
            return Reply::Err(format!("target {target:?} declares no session {session:?}"));
        };
        let (canonical, witness) = match shard.witness_from_record(record) {
            Ok(parsed) => parsed,
            Err(reason) => return Reply::Err(reason),
        };
        if let Some(id) = shard.lookup(&canonical) {
            self.shared
                .counters
                .duplicates
                .fetch_add(1, Ordering::SeqCst);
            return Reply::Ok(format!("dup id={id}"));
        }
        let scope = format!("{target}/{session}");
        let seed = state.cache.extract_witness(&scope, &witness);
        let fresh = fresh_cells(&seed, &scope, &witness, &planner);
        if fresh > 0
            && enforce_backpressure
            && self.shared.queue.depth_cells() + fresh > self.shared.config.max_queued_cells
        {
            self.shared
                .counters
                .busy_rejections
                .fetch_add(1, Ordering::SeqCst);
            return Reply::Busy(format!(
                "queue at {} of {} cells ({fresh} needed) — drain and retry",
                self.shared.queue.depth_cells(),
                self.shared.config.max_queued_cells
            ));
        }
        let id = shard.store(canonical, witness.clone());
        self.shared.counters.ingested.fetch_add(1, Ordering::SeqCst);
        if fresh == 0 {
            // Every cell is already in the cache: complete inline with
            // zero replays — the no-op re-ingest contract.
            let mut seed = seed;
            let stats = complete_warm(
                &self.shared,
                &spec,
                shard,
                &planner,
                &scope,
                id,
                &witness,
                &mut seed,
            );
            return Reply::Ok(format!("id={id} cells=0 warm={}", stats.cache_hits));
        }
        self.shared.queue.enqueue(WorkItem {
            target: target.to_string(),
            session: session.to_string(),
            scope,
            id,
            witness,
            seed,
            cells: fresh,
            epoch,
        });
        Reply::Ok(format!("id={id} cells={fresh}"))
    }

    fn query(
        &self,
        target: &str,
        witness: Option<usize>,
        class: Option<achilles_sweep::ScheduleClass>,
    ) -> Reply {
        let state = self.shared.state.lock().expect("fleetd state lock");
        let Some(tshard) = state.store.target(target) else {
            return Reply::Err(format!("target {target:?} not registered"));
        };
        let mut lines = Vec::new();
        for shard in &tshard.sessions {
            for stored in &shard.witnesses {
                if witness.is_some_and(|want| want != stored.id) {
                    continue;
                }
                match &stored.result {
                    Some(result) => {
                        for (i, line) in result.matrix.to_text().lines().enumerate() {
                            // Lines 0 and 1 are the witness and baseline
                            // headers; cell rows are `token|class|…`.
                            if i >= 2 {
                                if let Some(class) = class {
                                    if line.split('|').nth(1) != Some(class.as_str()) {
                                        continue;
                                    }
                                }
                            }
                            lines.push(line.to_string());
                        }
                    }
                    None => lines.push(format!("pending {}", stored.record)),
                }
            }
        }
        Reply::Lines(format!("target={target}"), lines)
    }

    fn recampaign(&self, target: &str) -> Reply {
        if self.shared.stopped.load(Ordering::SeqCst) {
            return Reply::Err("shutting down".to_string());
        }
        let Some(spec) = self.shared.registry.get(target).cloned() else {
            return Reply::Err(format!("unknown target {target:?}"));
        };
        let planner = SchedulePlanner::new(self.shared.config.sweep.clone());
        let mut guard = self.shared.state.lock().expect("fleetd state lock");
        let state = &mut *guard;
        let Some(tshard) = state.store.target_mut(target) else {
            return Reply::Err(format!("target {target:?} not registered"));
        };
        let epoch = tshard.epoch;
        let (mut enqueued, mut warm) = (0usize, 0usize);
        for shard in &mut tshard.sessions {
            let scope = format!("{target}/{}", shard.session);
            for id in 0..shard.witnesses.len() {
                let witness = shard.witnesses[id].witness.clone();
                let mut seed = state.cache.extract_witness(&scope, &witness);
                let fresh = fresh_cells(&seed, &scope, &witness, &planner);
                if fresh == 0 {
                    complete_warm(
                        &self.shared,
                        &spec,
                        shard,
                        &planner,
                        &scope,
                        id,
                        &witness,
                        &mut seed,
                    );
                    warm += 1;
                } else {
                    shard.witnesses[id].result = None;
                    self.shared.queue.enqueue(WorkItem {
                        target: target.to_string(),
                        session: shard.session.clone(),
                        scope: scope.clone(),
                        id,
                        witness,
                        seed,
                        cells: fresh,
                        epoch,
                    });
                    enqueued += 1;
                }
            }
        }
        Reply::Ok(format!("enqueued={enqueued} warm={warm}"))
    }

    fn epoch(&self, target: &str) -> Reply {
        if self.shared.stopped.load(Ordering::SeqCst) {
            return Reply::Err("shutting down".to_string());
        }
        if self.shared.registry.get(target).is_none() {
            return Reply::Err(format!("unknown target {target:?}"));
        };
        let invalidated = {
            let mut guard = self.shared.state.lock().expect("fleetd state lock");
            let state = &mut *guard;
            let Some(tshard) = state.store.target_mut(target) else {
                return Reply::Err(format!("target {target:?} not registered"));
            };
            tshard.epoch += 1;
            let mut invalidated = 0;
            for shard in &mut tshard.sessions {
                invalidated += state
                    .cache
                    .invalidate_scope(&format!("{target}/{}", shard.session));
                for witness in &mut shard.witnesses {
                    witness.result = None;
                }
            }
            invalidated
        };
        // Re-derive everything under the new epoch: with the scope's
        // cells gone, every witness is fresh and re-enqueues.
        match self.recampaign(target) {
            Reply::Ok(info) => Reply::Ok(format!("invalidated={invalidated} {info}")),
            other => other,
        }
    }

    fn evict(&self, target: &str, session: &str, record: &str) -> Reply {
        if self.shared.stopped.load(Ordering::SeqCst) {
            return Reply::Err("shutting down".to_string());
        }
        let mut guard = self.shared.state.lock().expect("fleetd state lock");
        let state = &mut *guard;
        let Some(tshard) = state.store.target_mut(target) else {
            return Reply::Err(format!("target {target:?} not registered"));
        };
        let Some(shard) = tshard.session_mut(session) else {
            return Reply::Err(format!("target {target:?} declares no session {session:?}"));
        };
        let (canonical, witness) = match shard.witness_from_record(record) {
            Ok(parsed) => parsed,
            Err(reason) => return Reply::Err(reason),
        };
        let Some(id) = shard.lookup(&canonical) else {
            return Reply::Err(format!("unknown witness {record:?}"));
        };
        shard.evict(id);
        let invalidated = state
            .cache
            .invalidate_witness(&format!("{target}/{session}"), &witness);
        Reply::Ok(format!("evicted id={id} invalidated={invalidated}"))
    }

    /// Reloads durable state: per-target sweep caches first, then every
    /// registered spec's witness corpora through the normal ingest path
    /// (cached witnesses complete warm; the rest re-enqueue).
    fn load(&self) -> io::Result<()> {
        let Some(dir) = self.shared.config.state_dir.clone() else {
            return Ok(());
        };
        for name in self.shared.registry.names() {
            let cache = SweepCache::load(&dir.join(format!("{name}.sweep")))?;
            if !cache.is_empty() {
                self.shared
                    .state
                    .lock()
                    .expect("fleetd state lock")
                    .cache
                    .merge(&cache);
            }
        }
        let specs: Vec<Arc<dyn TargetSpec>> = self.shared.registry.iter().cloned().collect();
        for spec in specs {
            for session in spec.sessions() {
                let path = dir.join(format!("{}.{}.witnesses", spec.name(), session.name));
                let corpus = ReplayCorpus::load(&path)?;
                if corpus.is_empty() {
                    continue;
                }
                self.register(spec.name());
                for entry in corpus.entries() {
                    let record = session_witness_record(&entry.slot_fields());
                    let reply = self.ingest(spec.name(), &session.name, &record, false);
                    if !reply.is_ok() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "{}: stored witness {record:?} rejected on reload: {}",
                                path.display(),
                                reply.render()
                            ),
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Drop for Fleetd {
    fn drop(&mut self) {
        // Leak no executor threads: close the queue (they drain what is
        // left and exit) and join. An explicit shutdown already did this.
        self.shared.stopped.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        let executors = std::mem::take(&mut *self.executors.lock().expect("executor list lock"));
        for handle in executors {
            let _ = handle.join();
        }
    }
}

/// The wire verb (metric label) and span name for a parsed request.
fn verb_names(request: &Request) -> (&'static str, &'static str) {
    match request {
        Request::Hello => ("HELLO", "fleetd:HELLO"),
        Request::Register { .. } => ("REGISTER", "fleetd:REGISTER"),
        Request::Ingest { .. } => ("INGEST", "fleetd:INGEST"),
        Request::Query { .. } => ("QUERY", "fleetd:QUERY"),
        Request::Stats => ("STATS", "fleetd:STATS"),
        Request::Metrics => ("METRICS", "fleetd:METRICS"),
        Request::Drain => ("DRAIN", "fleetd:DRAIN"),
        Request::Recampaign { .. } => ("RECAMPAIGN", "fleetd:RECAMPAIGN"),
        Request::Epoch { .. } => ("EPOCH", "fleetd:EPOCH"),
        Request::Evict { .. } => ("EVICT", "fleetd:EVICT"),
        Request::Save => ("SAVE", "fleetd:SAVE"),
        Request::Shutdown => ("SHUTDOWN", "fleetd:SHUTDOWN"),
    }
}

/// Fresh (un-cached) cells a witness's campaign will replay: the
/// baseline plus every planned schedule missing from `seed`.
fn fresh_cells(
    seed: &SweepCache,
    scope: &str,
    witness: &SessionWitness,
    planner: &SchedulePlanner,
) -> usize {
    let fault_free = FaultSchedule::none();
    let mut fresh = usize::from(seed.get(scope, witness, &fault_free).is_none());
    fresh += planner
        .plan(witness)
        .iter()
        .filter(|schedule| seed.get(scope, witness, schedule).is_none())
        .count();
    fresh
}

/// Completes a fully-cached witness inline (zero replays) and publishes
/// its result. Caller holds the state lock (`shard` borrows it).
#[allow(clippy::too_many_arguments)]
fn complete_warm(
    shared: &Shared,
    spec: &Arc<dyn TargetSpec>,
    shard: &mut SessionShard,
    planner: &SchedulePlanner,
    scope: &str,
    id: usize,
    witness: &SessionWitness,
    seed: &mut SweepCache,
) -> WitnessSweepStats {
    let target_impl = spec.session_replay_target(&shard.session);
    let mut server = ForkServer::detached(&*target_impl, 1, shared.config.fork);
    let (matrix, stats) = sweep_witness_on(&mut server, scope, witness, planner, seed);
    debug_assert_eq!(stats.replayed, 0, "warm completion must not replay");
    shared
        .counters
        .cache_hits
        .fetch_add(stats.cache_hits, Ordering::SeqCst);
    shared
        .counters
        .replays
        .fetch_add(stats.replayed, Ordering::SeqCst);
    shard.witnesses[id].result = Some(WitnessResult {
        matrix,
        replayed: stats.replayed,
        cache_hits: stats.cache_hits,
    });
    stats
}

fn executor_loop(shared: &Shared, worker: usize) {
    loop {
        match shared.queue.claim(worker) {
            Some(batch) => process_batch(shared, batch),
            None => {
                if shared.queue.is_closed() && shared.queue.is_idle() {
                    return;
                }
                shared.queue.wait_for_work();
            }
        }
    }
}

/// Sweeps one same-scope batch through a single fork-server (persistent
/// when the config forks: one boot for the whole batch), publishing each
/// result under the state lock.
fn process_batch(shared: &Shared, batch: Vec<WorkItem>) {
    let _span = achilles_obs::span("fleetd:batch", "fleetd");
    let Some(spec) = shared.registry.get(&batch[0].target).cloned() else {
        for item in batch {
            shared.counters.stale_results.fetch_add(1, Ordering::SeqCst);
            shared.queue.complete(item.cells);
        }
        return;
    };
    let planner = SchedulePlanner::new(shared.config.sweep.clone());
    let target_impl = spec.session_replay_target(&batch[0].session);
    let mut server = if shared.config.fork {
        ForkServer::new(&*target_impl)
    } else {
        ForkServer::detached(&*target_impl, shared.config.workers, false)
    };
    for mut item in batch {
        let before = server.lifetime_stats();
        let mut seed = std::mem::replace(&mut item.seed, SweepCache::new());
        let (matrix, stats) =
            sweep_witness_on(&mut server, &item.scope, &item.witness, &planner, &mut seed);
        // Persistent-mode baselines replay through the server but are
        // folded into its lifetime stats only; credit the per-item delta
        // (everything absorbed beyond the published replay call) before
        // releasing the item's queue depth, so a drained service's
        // counters are exact — never "0 boots" for a batch that booted.
        let after = server.lifetime_stats();
        let c = &shared.counters;
        c.fork_plans.fetch_add(
            (after.plans - before.plans).saturating_sub(stats.fork.plans),
            Ordering::SeqCst,
        );
        c.boots.fetch_add(
            (after.boots - before.boots).saturating_sub(stats.fork.boots),
            Ordering::SeqCst,
        );
        c.snapshot_restores.fetch_add(
            (after.snapshot_restores - before.snapshot_restores)
                .saturating_sub(stats.fork.snapshot_restores),
            Ordering::SeqCst,
        );
        publish(shared, &item, &seed, matrix, &stats);
        shared.queue.complete(item.cells);
    }
}

fn publish(
    shared: &Shared,
    item: &WorkItem,
    seed: &SweepCache,
    matrix: achilles_sweep::SensitivityMatrix,
    stats: &WitnessSweepStats,
) {
    let c = &shared.counters;
    c.replays.fetch_add(stats.replayed, Ordering::SeqCst);
    c.cache_hits.fetch_add(stats.cache_hits, Ordering::SeqCst);
    c.fork_plans.fetch_add(stats.fork.plans, Ordering::SeqCst);
    c.boots.fetch_add(stats.fork.boots, Ordering::SeqCst);
    c.snapshot_restores
        .fetch_add(stats.fork.snapshot_restores, Ordering::SeqCst);

    let canonical = session_witness_record(&item.witness.fields);
    let mut guard = shared.state.lock().expect("fleetd state lock");
    let state = &mut *guard;
    let current = state
        .store
        .target_mut(&item.target)
        .filter(|t| t.epoch == item.epoch)
        .and_then(|t| t.session_mut(&item.session))
        .and_then(|s| {
            let id = s.lookup(&canonical)?;
            Some(&mut s.witnesses[id])
        });
    match current {
        Some(stored) => {
            stored.result = Some(WitnessResult {
                matrix,
                replayed: stats.replayed,
                cache_hits: stats.cache_hits,
            });
            state.cache.merge(seed);
        }
        // Epoch bumped or witness evicted while we replayed: the result
        // describes a spec state the store no longer holds — drop it.
        None => {
            c.stale_results.fetch_add(1, Ordering::SeqCst);
        }
    }
}
