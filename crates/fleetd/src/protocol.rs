//! The fleetd control protocol: line-based requests, line-based replies.
//!
//! One request per line, one reply per request. Replies start with a
//! status word — `OK`, `BUSY`, or `ERR` — so clients never parse
//! free-form prose to learn whether they succeeded. Multi-line replies
//! (QUERY) frame themselves: the status line carries the count of payload
//! lines that follow, so a stream client knows exactly how much to read
//! without sentinels or timeouts.
//!
//! The vocabulary (a superset of the ISSUE's REGISTER / INGEST / QUERY
//! triple):
//!
//! | request | effect |
//! |---|---|
//! | `HELLO` | protocol + service identification |
//! | `REGISTER <target>` | activate a built-in spec for ingest |
//! | `INGEST <target>/<session> <record>` | validate + dedupe + enqueue a witness |
//! | `QUERY <target> [witness-id\|*] [class]` | sensitivity-matrix rows |
//! | `STATS` | one-line counter snapshot |
//! | `METRICS` | framed Prometheus-style metrics snapshot (see `achilles-obs`) |
//! | `DRAIN` | block until the work queue is empty |
//! | `RECAMPAIGN <target>` | re-enqueue every stored witness (cache-warm) |
//! | `EPOCH <target>` | bump the spec epoch: invalidate + re-derive its cells |
//! | `EVICT <target>/<session> <record>` | drop one witness and its cells |
//! | `SAVE` | persist store + cache to the state dir |
//! | `SHUTDOWN` | graceful drain, persist, stop |
//!
//! Witness *records* are the shared `achilles::export` session form the
//! corpus and sweep cache already speak (`"3,150/68,0,1"`): the wire
//! protocol introduces no new serialization of witnesses, so a record cut
//! from a corpus file or a `QUERY` reply pastes straight into `INGEST`.

use achilles_sweep::ScheduleClass;

/// A parsed control request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Identify the service.
    Hello,
    /// Activate the named built-in spec for ingest and queries.
    Register {
        /// Registry name of the spec.
        target: String,
    },
    /// Validate, dedupe, and enqueue one witness record.
    Ingest {
        /// Registry name of the spec.
        target: String,
        /// Declared session name within the spec.
        session: String,
        /// The `achilles::export` session witness record.
        record: String,
    },
    /// Read sensitivity-matrix rows from the results store.
    Query {
        /// Registry name of the spec.
        target: String,
        /// Restrict to one witness id (`None` = every witness).
        witness: Option<usize>,
        /// Restrict cell rows to one class.
        class: Option<ScheduleClass>,
    },
    /// Counter snapshot.
    Stats,
    /// Full metrics snapshot: every registry series, deterministic and
    /// wall sections segregated, framed like a `QUERY` reply.
    Metrics,
    /// Block until the queue is fully drained.
    Drain,
    /// Re-enqueue every stored witness of the target (warm cells complete
    /// without replays — the zero-replay no-op re-campaign).
    Recampaign {
        /// Registry name of the spec.
        target: String,
    },
    /// Bump the target's spec epoch: invalidate its scopes' cells and
    /// re-derive everything.
    Epoch {
        /// Registry name of the spec.
        target: String,
    },
    /// Drop one witness and invalidate exactly its cells.
    Evict {
        /// Registry name of the spec.
        target: String,
        /// Declared session name within the spec.
        session: String,
        /// The witness record to drop.
        record: String,
    },
    /// Persist the store and cache to the state directory.
    Save,
    /// Graceful drain + persist + stop.
    Shutdown,
}

/// A control reply, rendered to text with [`Reply::render`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// Success; `info` rides on the status line.
    Ok(String),
    /// Success with a framed payload: `OK <n> <info>` then `n` lines.
    Lines(String, Vec<String>),
    /// The queue is at its depth bound — retry after a drain.
    Busy(String),
    /// The request was malformed or impossible.
    Err(String),
}

impl Reply {
    /// Renders the reply as protocol text (no trailing newline; the
    /// transport appends one per line).
    pub fn render(&self) -> String {
        match self {
            Reply::Ok(info) => format!("OK {info}"),
            Reply::Lines(info, lines) => {
                let mut out = format!("OK {} {info}", lines.len());
                for line in lines {
                    out.push('\n');
                    out.push_str(line);
                }
                out
            }
            Reply::Busy(info) => format!("BUSY {info}"),
            Reply::Err(info) => format!("ERR {info}"),
        }
    }

    /// Whether the reply is a success (`OK`).
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Ok(_) | Reply::Lines(_, _))
    }
}

/// Splits `target/session` — the scope form the sweep cache keys on.
fn split_scope(s: &str) -> Option<(&str, &str)> {
    let (target, session) = s.split_once('/')?;
    (!target.is_empty() && !session.is_empty()).then_some((target, session))
}

/// A classed parse failure. `class` is a small closed vocabulary of
/// malformation kinds (`empty`, `unknown-verb`, `arity`, `scope`,
/// `witness-id`, `schedule-class`) that the service counts per class in
/// its `achilles_fleetd_errors_total{class=...}` metric; `reason` is the
/// human-readable text sent back as the `ERR` reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Malformation class (stable label for the error counter).
    pub class: &'static str,
    /// Human-readable description, sent back on the `ERR` line.
    pub reason: String,
}

impl ParseError {
    fn new(class: &'static str, reason: impl Into<String>) -> ParseError {
        ParseError {
            class,
            reason: reason.into(),
        }
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a [`ParseError`] carrying both the malformation class (for the
/// per-class error counters) and a human-readable description; transports
/// send the description back as an `ERR` reply.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let line = line.trim();
    let mut words = line.split_whitespace();
    let verb = words
        .next()
        .ok_or_else(|| ParseError::new("empty", "empty request"))?;
    let rest: Vec<&str> = words.collect();
    let exactly = |n: usize| -> Result<(), ParseError> {
        if rest.len() == n {
            Ok(())
        } else {
            Err(ParseError::new(
                "arity",
                format!("{verb} takes {n} argument(s), got {}", rest.len()),
            ))
        }
    };
    match verb {
        "HELLO" => exactly(0).map(|()| Request::Hello),
        "STATS" => exactly(0).map(|()| Request::Stats),
        "METRICS" => exactly(0).map(|()| Request::Metrics),
        "DRAIN" => exactly(0).map(|()| Request::Drain),
        "SAVE" => exactly(0).map(|()| Request::Save),
        "SHUTDOWN" => exactly(0).map(|()| Request::Shutdown),
        "REGISTER" => exactly(1).map(|()| Request::Register {
            target: rest[0].to_string(),
        }),
        "RECAMPAIGN" => exactly(1).map(|()| Request::Recampaign {
            target: rest[0].to_string(),
        }),
        "EPOCH" => exactly(1).map(|()| Request::Epoch {
            target: rest[0].to_string(),
        }),
        "INGEST" | "EVICT" => {
            exactly(2)?;
            let (target, session) = split_scope(rest[0]).ok_or_else(|| {
                ParseError::new(
                    "scope",
                    format!("{verb} scope must be target/session, got {:?}", rest[0]),
                )
            })?;
            let (target, session, record) =
                (target.to_string(), session.to_string(), rest[1].to_string());
            Ok(if verb == "INGEST" {
                Request::Ingest {
                    target,
                    session,
                    record,
                }
            } else {
                Request::Evict {
                    target,
                    session,
                    record,
                }
            })
        }
        "QUERY" => {
            if rest.is_empty() || rest.len() > 3 {
                return Err(ParseError::new(
                    "arity",
                    "QUERY takes 1-3 arguments: target [witness-id|*] [class]",
                ));
            }
            let target = rest[0].to_string();
            let witness = match rest.get(1) {
                None => None,
                Some(&"*") => None,
                Some(id) => Some(id.parse::<usize>().map_err(|_| {
                    ParseError::new(
                        "witness-id",
                        format!("witness id must be a number or *, got {id:?}"),
                    )
                })?),
            };
            let class = match rest.get(2) {
                None => None,
                Some(word) => Some(ScheduleClass::parse(word).ok_or_else(|| {
                    ParseError::new("schedule-class", format!("unknown schedule class {word:?}"))
                })?),
            };
            Ok(Request::Query {
                target,
                witness,
                class,
            })
        }
        other => Err(ParseError::new(
            "unknown-verb",
            format!("unknown request {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_reject() {
        assert_eq!(parse_request("HELLO"), Ok(Request::Hello));
        assert_eq!(
            parse_request("  REGISTER gossip "),
            Ok(Request::Register {
                target: "gossip".to_string()
            })
        );
        assert_eq!(
            parse_request("INGEST gossip/seed-sync-read 3,150/68/7"),
            Ok(Request::Ingest {
                target: "gossip".to_string(),
                session: "seed-sync-read".to_string(),
                record: "3,150/68/7".to_string(),
            })
        );
        assert_eq!(
            parse_request("QUERY gossip * armed"),
            Ok(Request::Query {
                target: "gossip".to_string(),
                witness: None,
                class: Some(ScheduleClass::Armed),
            })
        );
        assert_eq!(
            parse_request("QUERY gossip 2"),
            Ok(Request::Query {
                target: "gossip".to_string(),
                witness: Some(2),
                class: None,
            })
        );
        assert_eq!(
            parse_request("QUERY shardexec * diverged"),
            Ok(Request::Query {
                target: "shardexec".to_string(),
                witness: None,
                class: Some(ScheduleClass::Diverged),
            })
        );
        assert_eq!(parse_request("METRICS"), Ok(Request::Metrics));
        assert_eq!(parse_request("").unwrap_err().class, "empty");
        assert_eq!(
            parse_request("INGEST gossip 1,2").unwrap_err().class,
            "scope",
            "scope needs a /"
        );
        assert_eq!(
            parse_request("QUERY gossip x").unwrap_err().class,
            "witness-id"
        );
        assert_eq!(
            parse_request("QUERY gossip * bogus").unwrap_err().class,
            "schedule-class"
        );
        assert_eq!(parse_request("HELLO now").unwrap_err().class, "arity");
        assert_eq!(
            parse_request("FROBNICATE").unwrap_err().class,
            "unknown-verb"
        );
    }

    #[test]
    fn replies_render_with_framed_payloads() {
        assert_eq!(Reply::Ok("id=3".to_string()).render(), "OK id=3");
        assert_eq!(
            Reply::Lines(
                "target=g".to_string(),
                vec!["a".to_string(), "b".to_string()]
            )
            .render(),
            "OK 2 target=g\na\nb"
        );
        assert_eq!(
            Reply::Busy("queue at 512 cells".to_string()).render(),
            "BUSY queue at 512 cells"
        );
        assert!(!Reply::Err("nope".to_string()).is_ok());
    }
}
