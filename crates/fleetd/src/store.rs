//! The sharded witness store: per-target shards of session-witness
//! corpora plus their sweep results.
//!
//! The store is plain data behind the service's state lock — shards hold
//! witnesses in ingest order (witness ids are indices, so a re-seeded
//! store answers queries in the same order the batch pipeline reports
//! witnesses), dedupe on the *canonical* record form
//! ([`session_witness_record`] of the parsed fields, so `"03,2/1"` and
//! `"3,2/1"` are one witness), and carry one optional [`WitnessResult`]
//! per witness — present once a campaign executor has published the
//! witness's sensitivity matrix for the current spec epoch.
//!
//! Durability reuses the **v2 replay corpus format** verbatim: a session
//! shard serializes as one [`ReplayCorpus`] whose entry signatures are
//! the witnesses' fault-free baseline signatures. No new witness
//! serialization, no format bump — a corpus file written by the replay
//! pipeline seeds a fleetd shard and vice versa.

use std::collections::HashMap;
use std::sync::Arc;

use achilles::export::{parse_session_witness_record, session_witness_record};
use achilles::{SessionSpec, TargetSpec};
use achilles_replay::witness::fields_to_wire;
use achilles_replay::{CorpusEntry, ReplayCorpus, SessionWitness};
use achilles_sweep::SensitivityMatrix;
use achilles_symvm::MessageLayout;

/// One witness's published campaign result.
#[derive(Clone, Debug)]
pub struct WitnessResult {
    /// The sensitivity matrix, bit-identical to the batch pipeline's.
    pub matrix: SensitivityMatrix,
    /// Replays the campaign actually performed for this witness.
    pub replayed: usize,
    /// Cells answered from the sweep cache.
    pub cache_hits: usize,
}

/// One stored witness within a session shard.
#[derive(Clone, Debug)]
pub struct StoredWitness {
    /// Witness id — the index within the shard, in ingest order.
    pub id: usize,
    /// Canonical record form (the dedupe key).
    pub record: String,
    /// The concretized witness.
    pub witness: SessionWitness,
    /// The published result, once a campaign has completed for the
    /// current epoch.
    pub result: Option<WitnessResult>,
}

/// One declared session's witnesses and layouts.
#[derive(Clone, Debug)]
pub struct SessionShard {
    /// The declared session name.
    pub session: String,
    /// Per-slot wire layouts (validation + concretization at ingest).
    pub layouts: Vec<Arc<MessageLayout>>,
    /// Stored witnesses in ingest order (id = index).
    pub witnesses: Vec<StoredWitness>,
    known: HashMap<String, usize>,
}

impl SessionShard {
    fn new(spec: &SessionSpec) -> SessionShard {
        SessionShard {
            session: spec.name.clone(),
            layouts: spec.slots.iter().map(|slot| slot.layout.clone()).collect(),
            witnesses: Vec::new(),
            known: HashMap::new(),
        }
    }

    /// Parses, validates, and concretizes a witness record against this
    /// shard's slot layouts, returning the canonical record form and the
    /// witness.
    ///
    /// # Errors
    ///
    /// Describes the malformation: unparsable record, wrong slot count,
    /// wrong per-slot field count, or a field value the slot's wire
    /// layout cannot encode.
    pub fn witness_from_record(&self, record: &str) -> Result<(String, SessionWitness), String> {
        let fields = parse_session_witness_record(record)
            .ok_or_else(|| format!("unparsable witness record {record:?}"))?;
        if fields.len() != self.layouts.len() {
            return Err(format!(
                "session {} has {} slot(s), record has {}",
                self.session,
                self.layouts.len(),
                fields.len()
            ));
        }
        let mut wire = Vec::with_capacity(fields.len());
        for (slot, (slot_fields, layout)) in fields.iter().zip(&self.layouts).enumerate() {
            if slot_fields.len() != layout.num_fields() {
                return Err(format!(
                    "slot {slot} of session {} has {} field(s), record has {}",
                    self.session,
                    layout.num_fields(),
                    slot_fields.len()
                ));
            }
            wire.push(
                fields_to_wire(layout, slot_fields)
                    .map_err(|e| format!("slot {slot} is not wire-encodable: {e:?}"))?,
            );
        }
        let canonical = session_witness_record(&fields);
        let id = self.witnesses.len();
        Ok((
            canonical,
            SessionWitness {
                index: id,
                server_path_id: 0,
                fields,
                wire,
            },
        ))
    }

    /// The stored id of a canonical record, if present.
    pub fn lookup(&self, canonical: &str) -> Option<usize> {
        self.known.get(canonical).copied()
    }

    /// Stores a new witness, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the canonical record is already stored — callers dedupe
    /// via [`SessionShard::lookup`] first.
    pub fn store(&mut self, canonical: String, witness: SessionWitness) -> usize {
        assert!(
            !self.known.contains_key(&canonical),
            "dedupe before storing"
        );
        let id = self.witnesses.len();
        self.known.insert(canonical.clone(), id);
        self.witnesses.push(StoredWitness {
            id,
            record: canonical,
            witness,
            result: None,
        });
        id
    }

    /// Drops one witness by id. Later ids shift down (ids are indices);
    /// their published results stay valid — only the eviction's cells are
    /// invalidated by the caller.
    pub fn evict(&mut self, id: usize) -> Option<StoredWitness> {
        if id >= self.witnesses.len() {
            return None;
        }
        let gone = self.witnesses.remove(id);
        self.known.remove(&gone.record);
        for witness in &mut self.witnesses[id..] {
            witness.id -= 1;
            *self
                .known
                .get_mut(&witness.record)
                .expect("stored witnesses stay indexed") = witness.id;
        }
        Some(gone)
    }

    /// Serializes the shard's *completed* witnesses as a v2 replay corpus
    /// (entry signature = the witness's fault-free baseline signature).
    /// Pending witnesses are skipped — a drain precedes every save.
    pub fn to_corpus(&self) -> ReplayCorpus {
        let mut corpus = ReplayCorpus::new();
        for stored in &self.witnesses {
            if let Some(result) = &stored.result {
                corpus.insert(CorpusEntry::session(
                    result.matrix.baseline_signature.clone(),
                    &stored.witness.fields,
                    &[],
                ));
            }
        }
        corpus
    }
}

/// One registered target's shards.
#[derive(Clone, Debug)]
pub struct TargetShard {
    /// The target's registry name.
    pub target: String,
    /// Spec epoch: bumped by `EPOCH`, stamped onto enqueued work so
    /// results derived against an older spec are dropped, not published.
    pub epoch: u64,
    /// One shard per declared session, in declaration order (matching
    /// the batch pipeline's report order).
    pub sessions: Vec<SessionShard>,
}

impl TargetShard {
    /// The shard of one declared session.
    pub fn session(&self, name: &str) -> Option<&SessionShard> {
        self.sessions.iter().find(|s| s.session == name)
    }

    /// Mutable form of [`TargetShard::session`].
    pub fn session_mut(&mut self, name: &str) -> Option<&mut SessionShard> {
        self.sessions.iter_mut().find(|s| s.session == name)
    }
}

/// The whole witness store: one [`TargetShard`] per registered target.
#[derive(Clone, Debug, Default)]
pub struct WitnessStore {
    /// Registered targets in registration order.
    pub targets: Vec<TargetShard>,
}

impl WitnessStore {
    /// An empty store.
    pub fn new() -> WitnessStore {
        WitnessStore::default()
    }

    /// Activates a spec: one empty shard per declared session. Idempotent
    /// — re-registering keeps the existing shards and witnesses. Returns
    /// the number of session shards.
    pub fn register(&mut self, spec: &dyn TargetSpec) -> usize {
        if let Some(shard) = self.target(spec.name()) {
            return shard.sessions.len();
        }
        let sessions: Vec<SessionShard> = spec.sessions().iter().map(SessionShard::new).collect();
        let count = sessions.len();
        self.targets.push(TargetShard {
            target: spec.name().to_string(),
            epoch: 0,
            sessions,
        });
        count
    }

    /// The shard of one registered target.
    pub fn target(&self, name: &str) -> Option<&TargetShard> {
        self.targets.iter().find(|t| t.target == name)
    }

    /// Mutable form of [`WitnessStore::target`].
    pub fn target_mut(&mut self, name: &str) -> Option<&mut TargetShard> {
        self.targets.iter_mut().find(|t| t.target == name)
    }

    /// Total stored witnesses across every shard.
    pub fn witnesses(&self) -> usize {
        self.targets
            .iter()
            .flat_map(|t| &t.sessions)
            .map(|s| s.witnesses.len())
            .sum()
    }

    /// Total published results across every shard.
    pub fn results(&self) -> usize {
        self.targets
            .iter()
            .flat_map(|t| &t.sessions)
            .flat_map(|s| &s.witnesses)
            .filter(|w| w.result.is_some())
            .count()
    }
}
