//! achilles-fleetd — a long-running campaign service over the Achilles
//! sweep pipeline.
//!
//! The batch tools (`session_replay`, `sweep_campaign`) run one corpus to
//! completion and exit; fleetd inverts that shape for fleets that *keep
//! producing* witnesses: a resident service that ingests witness records
//! as they stream in, keeps per-target sensitivity matrices continuously
//! up to date, and answers queries from a durable results store. Three
//! properties anchor the design:
//!
//! - **Bit-identical answers.** The service runs the exact batch sweep
//!   body ([`achilles_sweep::sweep_witness_on`]) over the exact batch
//!   cache keys — a matrix queried from fleetd equals the matrix
//!   `sweep_campaign` prints for the same corpus, byte for byte
//!   (`sweep_campaign --serve-compat` asserts this).
//! - **Incrementality.** Work is keyed by sweep-cache cells: re-ingesting
//!   a known corpus replays nothing, ingesting one new witness replays
//!   exactly that witness's cells, and an `EPOCH` bump re-derives exactly
//!   the bumped target's scopes.
//! - **Bounded debt.** The work queue counts *cells*, not items, and
//!   ingest past the bound answers `BUSY` instead of queuing unboundedly.
//!
//! Embed the service in-process via [`Fleetd::start`] +
//! [`Fleetd::handle_line`], or run the `achilles-fleetd` binary for the
//! localhost-TCP / unix-socket transports (same lines either way — the
//! transport is ~100 lines of socket plumbing over `handle_line`).

pub mod protocol;
pub mod queue;
pub mod service;
pub mod store;

pub use protocol::{parse_request, Reply, Request};
pub use queue::{WorkItem, WorkQueue};
pub use service::{Fleetd, FleetdConfig, ServiceStats};
pub use store::{SessionShard, StoredWitness, TargetShard, WitnessResult, WitnessStore};
