//! The `achilles-fleetd` binary: socket transports over the in-process
//! service.
//!
//! Serves the line protocol on localhost TCP (`--listen`, default
//! `127.0.0.1:7177`) and optionally a unix socket (`--uds PATH`).
//! Listeners run non-blocking and poll a shutdown flag, so a `SHUTDOWN`
//! request (from either transport) drains the queue, persists the state
//! dir, and exits the process cleanly.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use achilles_fleetd::{Fleetd, FleetdConfig};
use achilles_targets::builtin_registry;

const USAGE: &str = "usage: achilles-fleetd [--listen ADDR] [--uds PATH] [--state DIR] \
     [--shards N] [--workers N] [--max-cells N] [--quick] [--no-fork]";

struct Options {
    listen: String,
    uds: Option<PathBuf>,
    config: FleetdConfig,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        listen: "127.0.0.1:7177".to_string(),
        uds: None,
        config: FleetdConfig::default(),
    };
    let mut i = 0;
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                options.listen = value(args, i, "--listen")?;
                i += 2;
            }
            "--uds" => {
                options.uds = Some(PathBuf::from(value(args, i, "--uds")?));
                i += 2;
            }
            "--state" => {
                options.config.state_dir = Some(PathBuf::from(value(args, i, "--state")?));
                i += 2;
            }
            "--shards" => {
                options.config.shards = value(args, i, "--shards")?
                    .parse()
                    .map_err(|_| "--shards needs a number".to_string())?;
                i += 2;
            }
            "--workers" => {
                options.config.workers = value(args, i, "--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?;
                i += 2;
            }
            "--max-cells" => {
                options.config.max_queued_cells = value(args, i, "--max-cells")?
                    .parse()
                    .map_err(|_| "--max-cells needs a number".to_string())?;
                i += 2;
            }
            "--quick" => {
                options.config = options.config.quick();
                i += 1;
            }
            "--no-fork" => {
                options.config.fork = false;
                i += 1;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(options)
}

/// Serves one connection: a line in, a reply out, until EOF or shutdown.
fn serve<S: std::io::Read + Write>(service: &Fleetd, stop: &AtomicBool, stream: S) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let shutdown = line.trim().eq_ignore_ascii_case("SHUTDOWN");
        let reply = service.handle_line(&line);
        let stream = reader.get_mut();
        if stream.write_all(reply.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
            return;
        }
        let _ = stream.flush();
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(e) => {
            eprintln!("achilles-fleetd: {e}");
            return ExitCode::FAILURE;
        }
    };

    let service = match Fleetd::start(builtin_registry(), options.config) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("achilles-fleetd: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stop = Arc::new(AtomicBool::new(false));
    let mut acceptors = Vec::new();

    let tcp = match TcpListener::bind(&options.listen) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("achilles-fleetd: cannot listen on {}: {e}", options.listen);
            return ExitCode::FAILURE;
        }
    };
    println!("achilles-fleetd listening on {}", options.listen);
    acceptors.push(spawn_acceptor(tcp, &service, &stop));

    if let Some(path) = &options.uds {
        let _ = std::fs::remove_file(path);
        match UnixListener::bind(path) {
            Ok(listener) => {
                println!("achilles-fleetd listening on {}", path.display());
                acceptors.push(spawn_acceptor(listener, &service, &stop));
            }
            Err(e) => {
                eprintln!("achilles-fleetd: cannot bind {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    for acceptor in acceptors {
        let _ = acceptor.join();
    }
    if let Some(path) = &options.uds {
        let _ = std::fs::remove_file(path);
    }
    // SHUTDOWN already drained + saved; this is the idempotent backstop.
    if let Err(e) = service.shutdown() {
        eprintln!("achilles-fleetd: shutdown: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Accept loop for one listener: non-blocking accept polling the stop
/// flag, one serving thread per connection.
fn spawn_acceptor<L>(
    listener: L,
    service: &Arc<Fleetd>,
    stop: &Arc<AtomicBool>,
) -> std::thread::JoinHandle<()>
where
    L: Acceptor + Send + 'static,
{
    listener.set_nonblocking();
    let service = Arc::clone(service);
    let stop = Arc::clone(stop);
    std::thread::spawn(move || {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !stop.load(Ordering::SeqCst) {
            match listener.accept_stream() {
                Ok(stream) => {
                    let service = Arc::clone(&service);
                    let stop = Arc::clone(&stop);
                    handlers.push(std::thread::spawn(move || {
                        serve(&service, &stop, stream);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => break,
            }
        }
        for handler in handlers {
            let _ = handler.join();
        }
    })
}

/// The two listener flavors behind one accept shape (their streams only
/// need `Read + Write`, which `serve` is generic over).
trait Acceptor {
    type Stream: std::io::Read + Write + Send + 'static;
    fn set_nonblocking(&self);
    fn accept_stream(&self) -> std::io::Result<Self::Stream>;
}

impl Acceptor for TcpListener {
    type Stream = std::net::TcpStream;
    fn set_nonblocking(&self) {
        let _ = TcpListener::set_nonblocking(self, true);
    }
    fn accept_stream(&self) -> std::io::Result<Self::Stream> {
        let (stream, _) = self.accept()?;
        let _ = stream.set_nonblocking(false);
        Ok(stream)
    }
}

impl Acceptor for UnixListener {
    type Stream = std::os::unix::net::UnixStream;
    fn set_nonblocking(&self) {
        let _ = UnixListener::set_nonblocking(self, true);
    }
    fn accept_stream(&self) -> std::io::Result<Self::Stream> {
        let (stream, _) = self.accept()?;
        let _ = stream.set_nonblocking(false);
        Ok(stream)
    }
}

// `serve` needs the generic bound spelled once; a type assertion that the
// two stream flavors satisfy it keeps the bound honest at compile time.
#[cfg(test)]
mod tests {
    use super::parse_options;

    #[test]
    fn options_parse_and_reject() {
        let options = parse_options(&[
            "--listen".into(),
            "127.0.0.1:0".into(),
            "--shards".into(),
            "4".into(),
            "--quick".into(),
            "--no-fork".into(),
        ])
        .expect("valid flags parse");
        assert_eq!(options.listen, "127.0.0.1:0");
        assert_eq!(options.config.shards, 4);
        assert!(!options.config.fork);
        assert!(parse_options(&["--bogus".into()]).is_err());
        assert!(
            parse_options(&["--shards".into()]).is_err(),
            "missing value"
        );
    }
}
