//! The sharded campaign work queue.
//!
//! The unit of queued work is one *witness* — a [`WorkItem`] carrying the
//! witness, its scope, and the mini-cache of already-known cells — but
//! the unit of *depth accounting* is the cell: backpressure must bound
//! replay debt, and one FSP witness is hundreds of cells while one gossip
//! witness is a hundred, so counting items would let the debt vary by
//! orders of magnitude under one bound.
//!
//! Items land on shards round-robin; executor `i` drains shard `i` and
//! steals from siblings when its own runs dry (the same discipline as the
//! symbolic pool's work-stealing deques, rebuilt over `std::sync` because
//! items here are heavyweight enough that a mutex per shard is noise).
//! [`WorkQueue::claim`] hands back a *batch* of consecutive same-scope
//! items so the executor can serve them all from one persistent
//! fork-server — per-target affinity falls out of FIFO order plus the
//! batch rule, no placement logic needed.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use achilles_replay::SessionWitness;
use achilles_sweep::SweepCache;

/// Longest same-scope batch one claim hands an executor: bounds how long
/// a fork-server monopolizes a worker before other scopes get a turn.
const MAX_BATCH: usize = 32;

/// One enqueued campaign unit: a witness plus everything the executor
/// needs to sweep it without touching shared state.
#[derive(Debug)]
pub struct WorkItem {
    /// Registry name of the spec.
    pub target: String,
    /// Declared session name.
    pub session: String,
    /// The `target/session` cache scope.
    pub scope: String,
    /// Witness id within its session shard.
    pub id: usize,
    /// The witness to sweep.
    pub witness: SessionWitness,
    /// Cells already classified (extracted from the shared cache at
    /// enqueue time); the sweep replays exactly what is missing here.
    pub seed: SweepCache,
    /// Fresh cells this item will replay — the depth the item holds.
    pub cells: usize,
    /// The target's spec epoch at enqueue time; results from an older
    /// epoch are dropped, not published.
    pub epoch: u64,
}

/// The sharded, bounded, stealable work queue.
#[derive(Debug)]
pub struct WorkQueue {
    shards: Vec<Mutex<VecDeque<WorkItem>>>,
    /// Fresh cells queued or in flight (an item's cells are released on
    /// completion, not on claim — "idle" means *done*, not "claimed").
    depth_cells: AtomicUsize,
    /// Items queued or in flight.
    in_flight: AtomicUsize,
    peak_cells: AtomicUsize,
    next: AtomicUsize,
    closed: AtomicBool,
    signal: Mutex<()>,
    /// Woken on enqueue and close — executors sleep here.
    work_cv: Condvar,
    /// Woken when the last in-flight item completes — DRAIN sleeps here.
    idle_cv: Condvar,
}

impl WorkQueue {
    /// A queue with `shards` lanes (at least one).
    pub fn new(shards: usize) -> WorkQueue {
        WorkQueue {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            depth_cells: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            peak_cells: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
            signal: Mutex::new(()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        }
    }

    /// Fresh cells currently queued or in flight.
    pub fn depth_cells(&self) -> usize {
        self.depth_cells.load(Ordering::SeqCst)
    }

    /// High-water mark of [`WorkQueue::depth_cells`].
    pub fn peak_cells(&self) -> usize {
        self.peak_cells.load(Ordering::SeqCst)
    }

    /// Cells currently *queued* per shard lane (claimed items have left
    /// their lane and are not counted — this is the instantaneous backlog
    /// the `METRICS` per-shard queue-depth gauges report, not the
    /// in-flight debt [`WorkQueue::depth_cells`] tracks).
    pub fn lane_depth_cells(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .expect("queue shard lock")
                    .iter()
                    .map(|item| item.cells)
                    .sum()
            })
            .collect()
    }

    /// Whether every enqueued item has completed.
    pub fn is_idle(&self) -> bool {
        self.in_flight.load(Ordering::SeqCst) == 0
    }

    /// Whether the queue refuses further work (shutdown).
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Refuse further enqueues and wake every sleeper.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _guard = self.signal.lock().expect("queue signal lock");
        self.work_cv.notify_all();
        self.idle_cv.notify_all();
    }

    /// Enqueues one item round-robin across the shards.
    pub fn enqueue(&self, item: WorkItem) {
        let depth = self.depth_cells.fetch_add(item.cells, Ordering::SeqCst) + item.cells;
        self.peak_cells.fetch_max(depth, Ordering::SeqCst);
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let lane = self.next.fetch_add(1, Ordering::SeqCst) % self.shards.len();
        self.shards[lane]
            .lock()
            .expect("queue shard lock")
            .push_back(item);
        let _guard = self.signal.lock().expect("queue signal lock");
        self.work_cv.notify_all();
    }

    /// Claims a batch of consecutive same-scope items for executor
    /// `worker`: its own shard first, then stealing from siblings.
    /// Returns `None` when every shard is empty.
    pub fn claim(&self, worker: usize) -> Option<Vec<WorkItem>> {
        let lanes = self.shards.len();
        for offset in 0..lanes {
            let lane = (worker + offset) % lanes;
            let mut shard = self.shards[lane].lock().expect("queue shard lock");
            let Some(first) = shard.pop_front() else {
                continue;
            };
            let mut batch = vec![first];
            while batch.len() < MAX_BATCH
                && shard
                    .front()
                    .is_some_and(|next| next.scope == batch[0].scope)
            {
                batch.push(shard.pop_front().expect("front probed Some"));
            }
            return Some(batch);
        }
        None
    }

    /// Releases one claimed item's depth; wakes drain waiters when the
    /// queue goes idle.
    pub fn complete(&self, cells: usize) {
        self.depth_cells.fetch_sub(cells, Ordering::SeqCst);
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.signal.lock().expect("queue signal lock");
            self.idle_cv.notify_all();
        }
    }

    /// Parks the calling executor until work (or close) is signaled. The
    /// wait is timed, so a missed wakeup costs latency, never liveness.
    pub fn wait_for_work(&self) {
        let guard = self.signal.lock().expect("queue signal lock");
        if self.is_idle() && self.is_closed() {
            return;
        }
        let _unused = self
            .work_cv
            .wait_timeout(guard, Duration::from_millis(20))
            .expect("queue signal lock");
    }

    /// Blocks until every enqueued item has completed.
    pub fn wait_idle(&self) {
        let mut guard = self.signal.lock().expect("queue signal lock");
        while !self.is_idle() {
            guard = self
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(20))
                .expect("queue signal lock")
                .0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(scope: &str, cells: usize) -> WorkItem {
        WorkItem {
            target: scope.split('/').next().unwrap().to_string(),
            session: scope.split('/').nth(1).unwrap_or("s").to_string(),
            scope: scope.to_string(),
            id: 0,
            witness: SessionWitness {
                index: 0,
                server_path_id: 0,
                fields: vec![vec![1]],
                wire: vec![vec![1]],
            },
            seed: SweepCache::new(),
            cells,
            epoch: 0,
        }
    }

    #[test]
    fn claims_batch_same_scope_runs_and_steals_across_shards() {
        let queue = WorkQueue::new(2);
        queue.enqueue(item("a/s", 3)); // lane 0
        queue.enqueue(item("a/s", 2)); // lane 1
        queue.enqueue(item("b/s", 1)); // lane 0
        assert_eq!(queue.depth_cells(), 6);
        assert_eq!(queue.peak_cells(), 6);
        assert_eq!(queue.lane_depth_cells(), vec![4, 2]);

        // Worker 0 claims its own lane: the a/s item, then stops at b/s.
        let batch = queue.claim(0).expect("lane 0 has work");
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].scope, "a/s");

        // Worker 0 again: b/s from its own lane.
        let batch = queue.claim(0).expect("lane 0 still has b/s");
        assert_eq!(batch[0].scope, "b/s");

        // Worker 0 steals the remaining a/s item from lane 1.
        let batch = queue.claim(0).expect("steals from lane 1");
        assert_eq!(batch[0].scope, "a/s");
        assert!(queue.claim(0).is_none());

        // Depth releases on completion, not on claim.
        assert_eq!(queue.depth_cells(), 6);
        assert!(!queue.is_idle());
        queue.complete(3);
        queue.complete(2);
        queue.complete(1);
        assert_eq!(queue.depth_cells(), 0);
        assert!(queue.is_idle());
        queue.wait_idle();
    }
}
