//! Baselines Achilles is compared against (§6.2, §6.4).
//!
//! * [`classic_symex`] — vanilla symbolic execution of the server: enumerate
//!   accepting paths and generate concrete test messages per path. It finds
//!   every message the server accepts but cannot tell Trojan from valid —
//!   the developer must sift (Table 1's 7,520 false positives).
//! * [`a_posteriori_diff`] — the non-incremental differencing of §6.4:
//!   explore the *whole* server first, then difference each accepting path
//!   against the client predicate afterwards. Finds the same Trojans as
//!   Achilles but wastes work on paths that incremental pruning would have
//!   discarded early.

use std::time::{Duration, Instant};

use achilles_solver::{SatResult, Solver, TermId, TermPool};
use achilles_symvm::{Executor, ExploreConfig, ExploreStats, NodeProgram, SymMessage, Verdict};

use crate::predicate::FieldMask;
use crate::report::TrojanReport;
use crate::search::{canonical_witness_fields, PreparedClient};

/// One concrete message produced by classic symbolic execution.
#[derive(Clone, Debug)]
pub struct CandidateMessage {
    /// Id of the accepting server path it triggers.
    pub server_path_id: usize,
    /// Concrete per-field values.
    pub fields: Vec<u64>,
    /// Notes of the server path.
    pub notes: Vec<String>,
}

/// Result of a classic-symbolic-execution run.
#[derive(Clone, Debug, Default)]
pub struct ClassicSymexResult {
    /// Concrete test messages for accepting paths (what the developer must
    /// sift through).
    pub candidates: Vec<CandidateMessage>,
    /// Accepting server paths found.
    pub accepting_paths: usize,
    /// Total completed server paths.
    pub total_paths: usize,
    /// Exploration counters.
    pub explore: ExploreStats,
    /// Wall-clock time.
    pub time: Duration,
}

/// Runs vanilla symbolic execution of the server and enumerates up to
/// `models_per_path` distinct concrete messages per accepting path.
///
/// The per-path enumeration mirrors how a tester would use a classic engine
/// to produce test inputs; distinct models are forced by excluding previous
/// witnesses field-wise (the paper notes SMT solvers "are not designed to
/// enumerate all values that satisfy a given constraint" — each extra model
/// costs a full query).
pub fn classic_symex(
    pool: &mut TermPool,
    solver: &mut Solver,
    server: &(dyn NodeProgram + Sync),
    server_msg: &SymMessage,
    explore_config: &ExploreConfig,
    mask: &FieldMask,
    models_per_path: usize,
) -> ClassicSymexResult {
    let started = Instant::now();
    let mut config = explore_config.clone();
    config.recv_script = vec![server_msg.clone()];
    let result = {
        let mut exec = Executor::new(pool, solver, config);
        exec.explore_multi(server)
    };
    let mut out = ClassicSymexResult {
        total_paths: result.paths.len(),
        explore: result.stats,
        ..ClassicSymexResult::default()
    };
    for path in result.paths.iter().filter(|p| p.verdict == Verdict::Accept) {
        out.accepting_paths += 1;
        let mut query: Vec<TermId> = path.constraints.clone();
        for _ in 0..models_per_path {
            let model = match solver.check(pool, &query) {
                SatResult::Sat(m) => m,
                SatResult::Unsat(_) | SatResult::Unknown => break,
            };
            let fields = server_msg.concretize(pool, &model);
            out.candidates.push(CandidateMessage {
                server_path_id: path.id,
                fields: fields.clone(),
                notes: path.notes.clone(),
            });
            // Exclude this exact message (unmasked fields) and re-solve.
            let mut diffs = Vec::new();
            for (fi, (&sv, &value)) in server_msg.values().iter().zip(&fields).enumerate() {
                if mask.contains(fi) {
                    continue;
                }
                let w = pool.width(sv);
                let c = pool.constant(value, w);
                let ne = pool.ne(sv, c);
                diffs.push(ne);
            }
            let exclusion = pool.or_all(diffs);
            query.push(exclusion);
        }
    }
    out.time = started.elapsed();
    out
}

/// Result of the a-posteriori differencing baseline.
#[derive(Clone, Debug, Default)]
pub struct APosterioriResult {
    /// Trojan reports (same semantics as Achilles' incremental reports).
    pub trojans: Vec<TrojanReport>,
    /// Accepting server paths differenced.
    pub accepting_paths: usize,
    /// Total completed server paths.
    pub total_paths: usize,
    /// Time for the server exploration phase.
    pub explore_time: Duration,
    /// Time for the differencing phase.
    pub diff_time: Duration,
}

/// The non-optimized §6.4 configuration: run unmodified symbolic execution
/// on the server (no observer, no pruning), then compute Trojan messages
/// a posteriori over every accepting path.
///
/// Both phases honor [`ExploreConfig::workers`]: the exploration fans out
/// over the work-stealing pool (as everywhere), and the differencing loop
/// fans the per-path `pathS ∧ ⋀ negate(pathC_i)` queries out over
/// [`parallel_map_with`] with a forked pool and private solver per worker.
/// Every query is over terms interned *before* the fan-out and each model
/// is a function of its structural assertion set alone, so the Trojan set
/// and witnesses are bit-identical for every worker count (pinned by the
/// `parallel_determinism` suite).
pub fn a_posteriori_diff(
    pool: &mut TermPool,
    solver: &mut Solver,
    server: &(dyn NodeProgram + Sync),
    prepared: &PreparedClient,
    explore_config: &ExploreConfig,
) -> APosterioriResult {
    let t0 = Instant::now();
    let mut config = explore_config.clone();
    config.recv_script = vec![prepared.server_msg.clone()];
    let result = {
        let mut exec = Executor::new(pool, solver, config);
        exec.explore_multi(server)
    };
    let t1 = Instant::now();
    let mut out = APosterioriResult {
        total_paths: result.paths.len(),
        ..APosterioriResult::default()
    };
    let accepting: Vec<_> = result
        .paths
        .iter()
        .filter(|p| p.verdict == Verdict::Accept)
        .collect();
    out.accepting_paths = accepting.len();
    // The full negation conjunction is path-independent; if any client
    // path is un-negatable the whole baseline finds nothing (nothing is
    // dropped — that is exactly what the optimization would have avoided).
    let mut negations = Vec::with_capacity(prepared.negations.len());
    for neg in &prepared.negations {
        match neg.disjunction {
            Some(d) => negations.push(d),
            None => {
                out.explore_time = t1 - t0;
                out.diff_time = t1.elapsed();
                return out;
            }
        }
    }
    // Differencing fan-out. Sequential runs solve on the caller's pool and
    // solver (keeping their warm caches); parallel workers each solve in a
    // fork with a private solver. Fork nonces only salt terms interned
    // *during* a solve, which are discarded with the fork — witnesses
    // depend on the pre-existing query structure alone.
    let witnesses: Vec<Option<Vec<u64>>> = match explore_config.workers.max(1) {
        1 => accepting
            .iter()
            .map(|path| {
                let mut query = path.constraints.clone();
                query.extend_from_slice(&negations);
                match solver.check(pool, &query) {
                    SatResult::Sat(model) => Some(canonical_witness_fields(
                        pool,
                        solver,
                        &query,
                        prepared.server_msg.values(),
                        &model,
                    )),
                    SatResult::Unsat(_) | SatResult::Unknown => None,
                }
            })
            .collect(),
        workers => {
            let base = &*pool;
            achilles_symvm::parallel_map_with(
                workers,
                &accepting,
                |w| (base.fork(DIFF_FORK_SALT + w as u64), Solver::new()),
                |(wpool, wsolver), _i, path| {
                    let mut query = path.constraints.clone();
                    query.extend_from_slice(&negations);
                    match wsolver.check(wpool, &query) {
                        SatResult::Sat(model) => Some(canonical_witness_fields(
                            wpool,
                            wsolver,
                            &query,
                            prepared.server_msg.values(),
                            &model,
                        )),
                        SatResult::Unsat(_) | SatResult::Unknown => None,
                    }
                },
            )
        }
    };
    for (path, fields) in accepting.iter().zip(witnesses) {
        let Some(fields) = fields else { continue };
        out.trojans.push(TrojanReport {
            server_path_id: path.id,
            constraints: path.constraints.clone(),
            witness_fields: fields,
            active_clients: prepared.client.len(),
            verified: false,
            found_at: t0.elapsed(),
            notes: path.notes.clone(),
        });
    }
    out.explore_time = t1 - t0;
    out.diff_time = t1.elapsed();
    out
}

/// Tag-family salt for pools forked by the differencing fan-out (keeps
/// any in-solve interning disjoint from the exploration's fork nonces).
const DIFF_FORK_SALT: u64 = 0x4449_4600; // "DIF\0"

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Achilles, AchillesConfig};
    use crate::predicate::ClientPredicate;
    use crate::search::{prepare_client, Optimizations};
    use achilles_solver::Width;
    use achilles_symvm::{MessageLayout, PathResult, SymEnv};
    use std::sync::Arc;

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("kv")
            .field("op", Width::W8)
            .field("key", Width::W16)
            .build()
    }

    fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
        let key = env.sym("key", Width::W16);
        let limit = env.constant(100, Width::W16);
        if !env.if_ult(key, limit)? {
            return Ok(());
        }
        let op = env.constant(1, Width::W8);
        env.send(SymMessage::new(layout(), vec![op, key]));
        Ok(())
    }

    fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&layout())?;
        let one = env.constant(1, Width::W8);
        if !env.if_eq(msg.field("op"), one)? {
            return Ok(());
        }
        let limit = env.constant(200, Width::W16);
        if !env.if_ult(msg.field("key"), limit)? {
            return Ok(());
        }
        env.mark_accept();
        Ok(())
    }

    #[test]
    fn classic_symex_cannot_separate_trojans() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let server_msg = SymMessage::fresh(&mut pool, &layout(), "msg");
        let result = classic_symex(
            &mut pool,
            &mut solver,
            &server,
            &server_msg,
            &ExploreConfig::default(),
            &FieldMask::none(),
            8,
        );
        assert_eq!(result.accepting_paths, 1);
        assert_eq!(result.candidates.len(), 8, "one model per enumeration step");
        // The candidates mix valid (key < 100) and Trojan (100 <= key < 200)
        // messages — precisely the sifting problem of Table 1.
        assert!(result.candidates.iter().all(|c| c.fields[1] < 200));
    }

    #[test]
    fn a_posteriori_matches_incremental_achilles() {
        // Incremental (Achilles).
        let mut achilles = Achilles::new();
        let config = AchillesConfig::verified();
        let report = achilles.run(&client, &server, &layout(), &config);
        assert_eq!(report.trojans.len(), 1);

        // A-posteriori baseline, on a fresh engine.
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let client_result = {
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            exec.explore(&client)
        };
        let pred = ClientPredicate::from_exploration(&client_result);
        let server_msg = SymMessage::fresh(&mut pool, &layout(), "msg");
        let prepared = prepare_client(
            &mut pool,
            &mut solver,
            pred,
            server_msg,
            FieldMask::none(),
            Optimizations::none(),
        );
        let result = a_posteriori_diff(
            &mut pool,
            &mut solver,
            &server,
            &prepared,
            &ExploreConfig::default(),
        );
        assert_eq!(result.trojans.len(), 1);
        let key = result.trojans[0].witness_fields[1];
        assert!((100..200).contains(&key), "same Trojan window: {key}");
    }
}
