//! # Achilles — finding Trojan message vulnerabilities in distributed systems
//!
//! A reproduction of *"Finding Trojan Message Vulnerabilities in Distributed
//! Systems"* (Banabic, Candea, Guerraoui — ASPLOS 2014).
//!
//! **Trojan messages** are messages a correct *server* accepts that no
//! correct *client* can generate — `T = S \ C`. They sit outside everything
//! regular testing exercises, make ideal targets for attackers, and
//! propagate failures between nodes (the paper's motivating example is the
//! 2008 Amazon S3 outage caused by a single bit-flipped — yet intelligible —
//! gossip message).
//!
//! Achilles finds them in two phases:
//!
//! 1. symbolically execute the **client**, capturing every message it can
//!    send together with the constraints under which it sends it (the
//!    *client predicate* `P_C`);
//! 2. symbolically execute the **server** on an unconstrained symbolic
//!    message, and — incrementally, at every branch — solve
//!    `pathS ∧ ⋀ negate(pathC_i)`, pruning server paths that provably
//!    cannot accept a Trojan message.
//!
//! The [`negate`] operator under-approximates the (universally quantified)
//! complement of a client path field-by-field; the [`diff_matrix`]
//! pre-computation drops whole groups of similar client predicates at once.
//!
//! ## The paper's working example (§2)
//!
//! ```
//! use std::sync::Arc;
//! use achilles::{Achilles, AchillesConfig};
//! use achilles_solver::Width;
//! use achilles_symvm::{MessageLayout, PathResult, SymEnv, SymMessage};
//!
//! fn layout() -> Arc<MessageLayout> {
//!     MessageLayout::builder("msg")
//!         .field("request", Width::W8)
//!         .field("address", Width::W32)
//!         .build()
//! }
//!
//! // Figure 3: the client validates 0 <= address < 100 before sending.
//! fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
//!     let addr = env.sym("address", Width::W32);
//!     let hundred = env.constant(100, Width::W32);
//!     let zero = env.constant(0, Width::W32);
//!     if !env.if_slt(addr, hundred)? { return Ok(()); }
//!     if env.if_slt(addr, zero)? { return Ok(()); }
//!     let read = env.constant(1, Width::W8);
//!     env.send(SymMessage::new(layout(), vec![read, addr]));
//!     Ok(())
//! }
//!
//! // Figure 2: the server forgets the address < 0 check on READ.
//! fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
//!     let msg = env.recv(&layout())?;
//!     let one = env.constant(1, Width::W8);
//!     if !env.if_eq(msg.field("request"), one)? { return Ok(()); }
//!     let hundred = env.constant(100, Width::W32);
//!     if !env.if_slt(msg.field("address"), hundred)? { return Ok(()); }
//!     env.mark_accept(); // security vulnerability: no address < 0 check
//!     Ok(())
//! }
//!
//! let mut achilles = Achilles::new();
//! let report = achilles.run(&client, &server, &layout(), &AchillesConfig::verified());
//! assert_eq!(report.trojans.len(), 1);
//! let trojan_address = Width::W32.to_signed(report.trojans[0].witness_fields[1]);
//! assert!(trojan_address < 0, "READ with a negative address is the Trojan");
//! ```
//!
//! ## Crate map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`predicate`] | §3.1 | `P_C`, path predicates, masks, combination |
//! | [`negate`] | §3.2, §4 | the under-approximate negate operator |
//! | [`diff_matrix`] | §3.3 | the `differentFrom` pre-computation |
//! | [`search`] | §3.2–3.3 | the incremental Trojan search observer |
//! | [`pipeline`] | §3, §3.4 | the three-phase driver and local-state modes |
//! | [`refine`] | §4.1 | CEGAR-style witness refinement (the paper's future work) |
//! | [`sequence`] | §7 | multi-message session Trojans (beyond the paper) |
//! | [`baseline`] | §6.2, §6.4 | classic symex and a-posteriori differencing |
//! | [`report`] | §3.2 | symbolic + concrete Trojan reports |

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod diff_matrix;
pub mod export;
pub mod negate;
pub mod pipeline;
pub mod predicate;
pub mod refine;
pub mod report;
pub mod search;
pub mod sequence;

pub use baseline::{
    a_posteriori_diff, classic_symex, APosterioriResult, CandidateMessage, ClassicSymexResult,
};
pub use diff_matrix::DiffMatrix;
pub use export::{report_to_markdown, trojans_to_markdown};
pub use negate::{negate_field, negate_path, NegateStats, NegatedPath};
pub use pipeline::{Achilles, AchillesConfig, AchillesReport, LocalState, PhaseTimes};
pub use predicate::{combine, rename_fresh, ClientPathPredicate, ClientPredicate, FieldMask};
pub use refine::{refine_witness, Refinement};
pub use sequence::{analyze_sequence, SequenceObserver};
pub use report::TrojanReport;
pub use search::{
    prepare_client, MatchSample, Optimizations, PreparedClient, SearchStats, TrojanObserver,
};
