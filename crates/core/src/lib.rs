//! # Achilles — finding Trojan message vulnerabilities in distributed systems
//!
//! A reproduction of *"Finding Trojan Message Vulnerabilities in Distributed
//! Systems"* (Banabic, Candea, Guerraoui — ASPLOS 2014).
//!
//! **Trojan messages** are messages a correct *server* accepts that no
//! correct *client* can generate — `T = S \ C`. They sit outside everything
//! regular testing exercises, make ideal targets for attackers, and
//! propagate failures between nodes (the paper's motivating example is the
//! 2008 Amazon S3 outage caused by a single bit-flipped — yet intelligible —
//! gossip message).
//!
//! Achilles finds them in two phases:
//!
//! 1. symbolically execute the **client**, capturing every message it can
//!    send together with the constraints under which it sends it (the
//!    *client predicate* `P_C`);
//! 2. symbolically execute the **server** on an unconstrained symbolic
//!    message, and — incrementally, at every branch — solve
//!    `pathS ∧ ⋀ negate(pathC_i)`, pruning server paths that provably
//!    cannot accept a Trojan message.
//!
//! The [`negate`] operator under-approximates the (universally quantified)
//! complement of a client path field-by-field; the [`diff_matrix`]
//! pre-computation drops whole groups of similar client predicates at once.
//!
//! ## The front door: `TargetSpec` → `AchillesSession`
//!
//! The pipeline is protocol-agnostic, and the public API is built around
//! that fact. A protocol is described once by implementing [`TargetSpec`]
//! — client/server [`NodeProgram`](achilles_symvm::NodeProgram)s, the wire
//! [`MessageLayout`](achilles_symvm::MessageLayout), a field mask, codec
//! hooks, and a factory for the concrete [`ReplayTarget`] used by
//! validation — and every driver consumes specs generically:
//!
//! * [`AchillesSession`] runs discovery over a spec (builder-style knobs
//!   for workers, verification, local state);
//! * [`TargetRegistry`] selects specs by name (`--target fsp`), so bench
//!   bins, examples, and the conformance suite contain no per-protocol
//!   match arms;
//! * `achilles_replay::validate_spec` replays every finding against the
//!   spec's deployment.
//!
//! The shipped protocols (`achilles-fsp`, `achilles-pbft`,
//! `achilles-paxos`, `achilles-twopc`) each implement the trait in their
//! own crate and are assembled into the built-in registry by
//! `achilles-targets`.
//!
//! ## The paper's working example (§2)
//!
//! ```
//! use std::sync::Arc;
//! use achilles::{
//!     AchillesSession, Delivery, InjectionOutcome, ReplayTarget, TargetSpec,
//! };
//! use achilles_solver::Width;
//! use achilles_symvm::{MessageLayout, NodeProgram, PathResult, SymEnv, SymMessage};
//!
//! fn layout() -> Arc<MessageLayout> {
//!     MessageLayout::builder("msg")
//!         .field("request", Width::W8)
//!         .field("address", Width::W32)
//!         .build()
//! }
//!
//! // Figure 3: the client validates 0 <= address < 100 before sending.
//! fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
//!     let addr = env.sym("address", Width::W32);
//!     let hundred = env.constant(100, Width::W32);
//!     let zero = env.constant(0, Width::W32);
//!     if !env.if_slt(addr, hundred)? { return Ok(()); }
//!     if env.if_slt(addr, zero)? { return Ok(()); }
//!     let read = env.constant(1, Width::W8);
//!     env.send(SymMessage::new(layout(), vec![read, addr]));
//!     Ok(())
//! }
//!
//! // Figure 2: the server forgets the address < 0 check on READ.
//! fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
//!     let msg = env.recv(&layout())?;
//!     let one = env.constant(1, Width::W8);
//!     if !env.if_eq(msg.field("request"), one)? { return Ok(()); }
//!     let hundred = env.constant(100, Width::W32);
//!     if !env.if_slt(msg.field("address"), hundred)? { return Ok(()); }
//!     env.mark_accept(); // security vulnerability: no address < 0 check
//!     Ok(())
//! }
//!
//! // The concrete deployment replayed witnesses are fired at.
//! struct Figure2Target;
//! impl ReplayTarget for Figure2Target {
//!     fn name(&self) -> &'static str { "figure2" }
//!     fn layout(&self) -> Arc<MessageLayout> { layout() }
//!     fn benign_fields(&self) -> Vec<u64> { vec![1, 5] }
//!     fn client_generable(&self, fields: &[u64]) -> bool {
//!         fields[0] == 1 && (0..100).contains(&Width::W32.to_signed(fields[1]))
//!     }
//!     fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
//!         InjectionOutcome {
//!             accepted_each: deliveries
//!                 .iter()
//!                 .map(|(w, _)| w[0] == 1) // the buggy dispatch, concretely
//!                 .collect(),
//!             effects: vec![],
//!         }
//!     }
//! }
//!
//! // The spec bundles it all: this is the entire onboarding surface.
//! struct Figure2Spec;
//! impl TargetSpec for Figure2Spec {
//!     fn name(&self) -> &'static str { "figure2" }
//!     fn layout(&self) -> Arc<MessageLayout> { layout() }
//!     fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
//!         vec![Box::new(client)]
//!     }
//!     fn server(&self) -> Box<dyn NodeProgram + Sync + '_> { Box::new(server) }
//!     fn replay_target(&self) -> Box<dyn ReplayTarget> { Box::new(Figure2Target) }
//! }
//!
//! let spec = Figure2Spec;
//! let report = AchillesSession::new(&spec).run();
//! assert_eq!(report.trojans.len(), 1);
//! let trojan_address = Width::W32.to_signed(report.trojans[0].witness_fields[1]);
//! assert!(trojan_address < 0, "READ with a negative address is the Trojan");
//! ```
//!
//! (The lower-level [`Achilles::run`] entry point remains available for
//! ad-hoc client/server pairs that don't warrant a spec.)
//!
//! ## Porting a protocol
//!
//! Onboarding a protocol is a single-crate exercise — the `achilles-twopc`
//! crate is the reference (added with zero changes to this crate, the
//! replay harness, or any bench bin), and `examples/quickstart.rs` walks
//! the same steps inline:
//!
//! 1. **Model the nodes.** Write the client and server as
//!    [`NodeProgram`](achilles_symvm::NodeProgram)s over a shared
//!    [`MessageLayout`](achilles_symvm::MessageLayout). The client
//!    validates like the real client library; the server marks acceptance
//!    with `mark_accept()` where the real server commits to acting.
//! 2. **Build the concrete deployment.** Implement [`ReplayTarget`]:
//!    `inject` boots fresh state per call and reports per-delivery
//!    acceptance plus structural effect strings; `client_generable` is the
//!    concrete oracle for "could a correct client send these bytes?".
//! 3. **Implement [`TargetSpec`].** Return the programs, layout, mask
//!    (checksums/digests per §5.2), the analysis defaults, the supported
//!    [`LocalStateMode`]s, an expected-count hint if the bounded model
//!    makes it exact, and the `replay_target` factory. The default codec
//!    hooks (big-endian field packing) rarely need overriding.
//! 4. **Register.** Add one `registry.register(Arc::new(YourSpec))` call
//!    (for the shipped set: in `achilles-targets`). Every driver picks the
//!    protocol up by name: `--target yours` on the bench bins, a row in
//!    `BENCH_replay.json`, and the conformance suite
//!    (`tests/target_spec_conformance.rs`) automatically holds it to
//!    "≥ 1 Trojan discovered, 100% concretely confirmed, corpus
//!    round-trip".
//! 5. **Declare a session** (optional — for stateful findings). When the
//!    real server only reaches the vulnerable code after earlier messages
//!    establish local state (login → command, VOTE → DECIDE), return a
//!    [`SessionSpec`] from [`TargetSpec::sessions`]: an ordered
//!    [`SessionSlot`] list naming each slot's wire layout and which
//!    [`session_clients`](TargetSpec::session_clients) can legally fill
//!    it, plus an expected session-Trojan hint. Supply the session server
//!    (one `recv` per slot, in slot order) via
//!    [`session_server`](TargetSpec::session_server) and a deployment that
//!    consumes whole sequences via
//!    [`session_replay_target`](TargetSpec::session_replay_target)
//!    (override the [`ReplayTarget`] `slot_*` hooks for per-slot layouts,
//!    benign baselines, and generability). Then
//!    [`AchillesSession::run_sessions`] discovers session Trojans —
//!    `⋁ₛ ¬genₛ(mₛ)`, with slot attribution — over the work-stealing
//!    pool, and `achilles_replay::validate_spec_sessions` replays them
//!    under per-delivery `FaultSchedule`s (drop / duplicate / bit-flip /
//!    benign interleaving at any position). The conformance suite holds
//!    declared sessions to the same bar automatically;
//!    `examples/quickstart.rs` walks the whole step with a hello→request
//!    session.
//! 6. **Sweep fault schedules** (optional — for schedule-sensitive
//!    findings). A session Trojan validated under one fault plan says
//!    nothing about *which* delivery faults arm or disarm it — the
//!    question that decides whether an S3-style corruption survives real
//!    network weather. `achilles_sweep::run_campaign` takes the same spec
//!    and replays every witness under a bounded, canonically deduplicated
//!    schedule space (drop / duplicate / benign-interleave / single
//!    bit-flip, per slot and wire bit), classifying each outcome against
//!    the fault-free baseline as Armed / Disarmed / Masked / NewSignature
//!    and folding the rows into a per-witness `SensitivityMatrix` (text
//!    export through [`export`]'s record vocabulary). The `sweep_campaign`
//!    bench bin drives it per registry target and emits
//!    `BENCH_sweep.json`; the conformance suite automatically holds every
//!    declared session to "≥ 1 arming and ≥ 1 disarming schedule, and
//!    dropping the arming slot disarms". `achilles-gossip`'s 3-slot
//!    seed→sync→read session is the shipped reference;
//!    `examples/quickstart.rs` runs a mini-sweep on its hello→request
//!    session.
//! 7. **Make the target snapshottable** (optional — a pure speed lever for
//!    sweeps). A campaign cold-boots one [`ReplayTarget::inject`] per
//!    (witness, schedule) cell even though canonical schedules share long
//!    delivery prefixes. Implement [`SnapshotReplayTarget`] and override
//!    [`ReplayTarget::boot_fork`] to return it, and the sweep fork-server
//!    executes each witness's schedules as a delivery-prefix trie instead,
//!    restoring from the deepest shared ancestor. What to clone in
//!    [`snapshot`](SnapshotReplayTarget::snapshot): *every* piece of state
//!    a delivery can mutate — the protocol engine (node, cluster,
//!    coordinator, simulated filesystem + network) *and* the injection
//!    bookkeeping (login flags, tracked witness keys). Clones must be deep:
//!    a snapshot that aliases a live `Arc<Mutex<…>>` corrupts every sibling
//!    branch. The cold-boot fallback contract: `boot_fork` defaults to
//!    `None`, every driver then falls back to booting per cell, and
//!    snapshots may never change results — only wall time. The
//!    `fork_server_equivalence` suite and the snapshot conformance contract
//!    pin bit-identity per target; `examples/quickstart.rs` runs its
//!    mini-sweep through the fork-server and prints `boots_saved`.
//! 8. **Serve campaigns** (optional — for fleets that keep producing
//!    witnesses). The batch bins run one corpus to completion and exit;
//!    `achilles-fleetd` is the resident alternative: a campaign service
//!    that ingests witness *records* (the same `export` session form the
//!    corpus files use) over a line protocol, sweeps them incrementally
//!    through sharded work queues with per-target fork-server affinity,
//!    and answers `QUERY` with sensitivity matrices bit-identical to the
//!    batch campaign (`sweep_campaign --serve-compat` asserts this, and
//!    `tests/fleetd_service.rs` pins the incremental contract: a no-op
//!    re-ingest replays nothing, a one-witness ingest replays exactly
//!    that witness's cells). A registered spec needs *nothing* beyond
//!    steps 1–5 — the service is registry-driven like every other driver.
//!    Embed it in-process (`Fleetd::start` + `handle_line`) or run the
//!    `achilles-fleetd` binary for localhost-TCP / unix-socket
//!    transports; `--state DIR` persists the witness corpora and sweep
//!    cells in the versioned corpus / sweep-cache text formats, so a
//!    restart re-derives every result without a single replay.
//! 9. **Expose a state root** (optional — for multi-node targets). A
//!    crash or a wedge is a *single-process* symptom; a sharded executor
//!    detonates as *silent state divergence* — every node keeps running
//!    and two replicas produce different canonical state hashes. Give
//!    each modeled node a canonical digest (build it with
//!    [`RootHasher`](diverge::RootHasher)), embed a
//!    [`DivergenceProbe`](diverge::DivergenceProbe) in the fork session's
//!    snapshot payload, call
//!    [`observe`](diverge::DivergenceProbe::observe) after every applied
//!    delivery, and fold [`finish`](diverge::DivergenceProbe::finish)
//!    into the outcome's effects; override
//!    [`ReplayTarget::reports_state_roots`] and
//!    [`SnapshotReplayTarget::state_roots`] so drivers can see the roots
//!    directly. Divergence then flows through the ordinary signature
//!    path: the sweep classifier reports schedules that reproduce the
//!    baseline's split as `Diverged`, session ddmin can minimize to the
//!    field set that still splits the roots
//!    (`achilles_replay::minimize_session_divergence`), and the
//!    conformance suite holds every root-reporting session target to the
//!    divergence contract (benign traffic agrees, ≥ 1 schedule
//!    diverges, dropping the arming slot restores agreement).
//!    `crates/shardexec` — three shards exchanging cross-shard
//!    state-write messages whose sender-id field is unauthenticated — is
//!    the shipped reference; `examples/quickstart.rs` walks a two-node
//!    inline version.
//! 10. **Trust the pruning** (optional — zero code, one env var). Every
//!     path the discovery *discards* rests on an `Unsat` verdict, and every
//!     `Unsat` verdict carries a
//!     [`Certificate`](achilles_solver::Certificate): a deterministic
//!     refutation trace plus the unsat core (the assertion subset the proof
//!     actually used, by structural fingerprint). Set
//!     `ACHILLES_CHECK_PROOFS=1` — or pass `--check-proofs` to the
//!     `fig10_discovery` / `sweep_campaign` bins — and the independent
//!     checker in `achilles-proofcheck` (no shared code with the search
//!     beyond term and width definitions) re-derives every certificate on
//!     the spot, panicking on the first rejection. The cores also *work*:
//!     the engine's shared cache indexes them, and any later query whose
//!     assertion set contains a proven core is answered `Unsat` immediately
//!     (reported as `core_subsumption_hits`; the audit validates these
//!     subsumption-derived verdicts too, and the determinism suite pins
//!     that the index never changes a report). No spec hook is involved —
//!     a ported protocol gets auditable pruning for free.
//! 11. **Instrument the run** (optional — zero code for the built-in
//!     spans). Discovery, sweep, replay, and service runs are already
//!     instrumented through `achilles-obs`: pipeline phases, worker
//!     claim/steal/merge, solver verdicts, fork-server boots/restores,
//!     sweep cells, and fleetd requests all emit spans and counters.
//!     Pass `--trace FILE` to `sweep_campaign` / `fig10_discovery` /
//!     `parallel_scaling` / `fleetd_soak` and load the file in Perfetto
//!     or `chrome://tracing`; ask a running fleetd for `METRICS` to get
//!     the live Prometheus-style snapshot. To add target-specific spans,
//!     drop `let _span = achilles_obs::span("yours:step", "target");`
//!     around the interesting region — a disabled tracer costs one
//!     relaxed atomic load, so the call is safe on hot paths — and
//!     `achilles_obs::global().add(...)` for counters. One hard rule:
//!     anything you count as [`Class::Deterministic`](achilles_obs::Class)
//!     must be a pure function of the workload (no clocks, no schedule
//!     dependence) — the determinism suites diff those series
//!     bit-for-bit.
//!
//! ## Crate map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`target`] | — | [`TargetSpec`], [`SessionSpec`], [`ReplayTarget`], wire codec |
//! | [`session`] | — | [`AchillesSession`] (+ [`run_sessions`](AchillesSession::run_sessions)), [`TargetRegistry`] |
//! | [`predicate`] | §3.1 | `P_C`, path predicates, masks, combination |
//! | [`negate`] | §3.2, §4 | the under-approximate negate operator |
//! | [`diff_matrix`] | §3.3 | the `differentFrom` pre-computation |
//! | [`search`] | §3.2–3.3 | the incremental Trojan search observer + parallel driver |
//! | [`pipeline`] | §3, §3.4 | the three-phase driver and local-state modes |
//! | [`refine`] | §4.1 | CEGAR-style witness refinement (the paper's future work) |
//! | [`sequence`] | §7 | multi-message session Trojans (beyond the paper; registry-driven via [`TargetSpec::sessions`]) |
//! | [`baseline`] | §6.2, §6.4 | classic symex and a-posteriori differencing |
//! | [`report`] | §3.2 | symbolic + concrete Trojan reports |
//!
//! ## Parallel search architecture
//!
//! The server analysis scales across cores when
//! [`ExploreConfig::workers`](achilles_symvm::ExploreConfig::workers) is
//! raised above one (`AchillesConfig::server_explore.workers`, or
//! `with_workers` on the FSP/PBFT analysis configs). The design, bottom to
//! top:
//!
//! * **Unit of work.** The executor schedules paths as *decision prefixes*
//!   and re-executes the node program from the start for each one, so every
//!   worklist item is self-contained — the natural grain for a
//!   work-stealing pool (`achilles_symvm::parallel`). Workers keep their own
//!   deque LIFO (depth-first, hot caches) and steal the oldest item from a
//!   victim (shallow prefix = biggest subtree).
//! * **Ownership.** Each worker owns a fork of the base
//!   [`TermPool`](achilles_solver::TermPool) (snapshot ids stay valid; new
//!   terms intern worker-locally), its own
//!   [`Solver`](achilles_solver::Solver), and its own [`TrojanObserver`] —
//!   there is no shared mutable state on the hot path.
//! * **Sharing.** Workers share solved queries through a sharded
//!   [`SharedCache`](achilles_solver::SharedCache) keyed on *structural
//!   fingerprints*, so `TermId` divergence between pools doesn't matter:
//!   replaying a prefix another worker already solved is a cache hit.
//!   Within a path, the incremental
//!   [`ScopedSolver`](achilles_solver::ScopedSolver) answers most branch
//!   checks by re-evaluating the previous model instead of searching.
//! * **Why determinism holds.** A path's constraint structure is a function
//!   of its decision prefix alone (deterministic re-execution + tagged
//!   variable interning), and each solver query is deterministic given its
//!   structural assertion set. Results are re-interned into the base pool,
//!   sorted into canonical depth-first order (`true` before `false`), and
//!   renumbered — so the Trojan set, path counts, and witnesses are
//!   identical for every worker count and every scheduling. Budgets
//!   (`max_paths`/`max_runs`) are pool-global *and canonical*: in-flight
//!   items finish, provably-past-the-cut subtrees are pruned against a
//!   shared depth-first bound, and the merge truncates to exactly the set
//!   a sequential capped run completes — so even capped runs are
//!   bit-identical for every worker count (execution counters may exceed
//!   a sequential capped run's; the result set never differs).
//!   BFS-ordered explorations always run sequentially (the pool schedules
//!   depth-first per worker), and the downgrade is surfaced through
//!   `ExploreStats::workers_effective` rather than silently. The
//!   `parallel_determinism` integration suite pins the guarantee — capped
//!   and uncapped, single-message and session — on the quickstart, FSP,
//!   PBFT, Paxos, and twopc scenarios.
//!
//! **Picking `workers`:** the analysis is CPU-bound; `workers = number of
//! physical cores` is the right default for long discovery runs, and `1`
//! (the default) is best below ~100ms of server analysis, where pool
//! forking and merge overhead dominate. Budgets (`max_runs`, `max_paths`)
//! are enforced pool-globally, so raising `workers` never multiplies them.
//!
//! ## Observability
//!
//! Every subsystem reports through one layer, `achilles-obs`:
//!
//! * **Spans** (`achilles_obs::span` / `timed`) record into thread-local
//!   buffers — no locks on the hot path, drained at the same merge points
//!   where worker results join — and export as Chrome-trace JSON
//!   (`--trace FILE` on the bench bins). Tracing is off by default; when
//!   off, a span is one relaxed atomic load.
//! * **Metrics** accumulate in registries
//!   ([`achilles_obs::global`] for process-wide series, a per-service
//!   registry inside fleetd) and render as sorted Prometheus-style lines.
//!   The existing stats structs ([`TrojanSearchStats`],
//!   [`ExploreStats`](achilles_symvm::ExploreStats),
//!   [`SolverStats`](achilles_solver::SolverStats), fork/sweep/service
//!   counters) remain the canonical accumulators; each mirrors into the
//!   registry at its natural merge point, so the stats view and the
//!   metrics view are one measurement, never two.
//! * **Determinism segregation.** Every series is classed
//!   [`Deterministic`](achilles_obs::Class::Deterministic) (a pure
//!   function of the workload: runs, cells, verdict counts) or
//!   [`Wall`](achilles_obs::Class::Wall) (clocks, steal/boot/queue-depth
//!   scheduling artifacts), and the renderer emits the two sections
//!   separately — so CI can diff the deterministic section bit-for-bit
//!   across runs while wall timings float. The `parallel_determinism`
//!   suite additionally pins the observer-effect contract: full discovery
//!   plus sweep with tracing on is bit-identical to tracing off at
//!   worker counts 1 and 4.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod diff_matrix;
pub mod diverge;
pub mod export;
pub mod negate;
pub mod pipeline;
pub mod predicate;
pub mod refine;
pub mod report;
pub mod search;
pub mod sequence;
pub mod session;
pub mod target;

pub use baseline::{
    a_posteriori_diff, classic_symex, APosterioriResult, CandidateMessage, ClassicSymexResult,
};
pub use diff_matrix::DiffMatrix;
pub use diverge::{
    effects_diverged, roots_agree, DivergenceProbe, DivergenceSignature, RootHasher, StateRoot,
};
pub use export::{
    parse_session_witness_record, parse_witness_record, report_to_markdown, session_witness_record,
    split_fields_by_counts, trojans_to_markdown, witness_record,
};
pub use negate::{negate_field, negate_path, NegateStats, NegatedPath};
pub use pipeline::{Achilles, AchillesConfig, AchillesReport, LocalState, PhaseTimes};
pub use predicate::{
    combine, rename_fresh, rename_fresh_tagged, ClientPathPredicate, ClientPredicate, FieldMask,
};
pub use refine::{refine_witness, Refinement};
pub use report::TrojanReport;
pub use search::{
    canonical_witness_fields, prepare_client, prepare_client_workers, run_trojan_search,
    MatchSample, Optimizations, PreparedClient, TrojanObserver, TrojanSearchOutcome,
    TrojanSearchStats, WorkerSummary,
};
pub use sequence::{analyze_sequence, analyze_sequence_with, SequenceObserver};
pub use session::{AchillesSession, SessionReport, TargetRegistry};
pub use target::{
    fields_to_wire, layout_widths, wire_to_fields, Delivery, InjectionOutcome, LocalStateMode,
    ReplayTarget, SessionSlot, SessionSpec, SnapshotReplayTarget, TargetSnapshot, TargetSpec,
    WireError,
};
