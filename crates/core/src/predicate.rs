//! Client and server predicates.
//!
//! The client predicate `P_C` is the disjunction of *client path predicates*
//! (§3.1): one per execution path on which the client sends a message. Each
//! path predicate pairs the (partially symbolic) message the client built
//! with the path constraints under which it is sent — Figure 8 of the paper.
//!
//! The server predicate `P_S` is the disjunction of path constraints of
//! *accepting* server paths; Achilles never materializes it whole, it is
//! consumed incrementally during the server exploration (§3.2).

use std::collections::{HashMap, HashSet};

use achilles_solver::{TermId, TermPool, VarId};
use achilles_symvm::{ExploreResult, SymMessage};

/// One client execution path that sends a message.
#[derive(Clone, Debug)]
pub struct ClientPathPredicate {
    /// Index of this predicate within its [`ClientPredicate`].
    pub index: usize,
    /// Id of the originating exploration path.
    pub path_id: usize,
    /// The message sent on this path (fields may be symbolic expressions).
    pub message: SymMessage,
    /// Path constraints under which the message is sent.
    pub constraints: Vec<TermId>,
    /// Program notes from the path (labels like `cmd=rm`).
    pub notes: Vec<String>,
}

impl ClientPathPredicate {
    /// Variables appearing in the expression of field `field_idx`.
    pub fn field_vars(&self, pool: &TermPool, field_idx: usize) -> Vec<VarId> {
        pool.vars_of(self.message.value(field_idx))
    }

    /// The transitive closure of constraints that *influence* the given
    /// variables: starting from constraints mentioning any seed variable,
    /// pull in the variables of those constraints and iterate (§3.2's "the
    /// set of constraints that influence the respective variables").
    pub fn influencing_constraints(&self, pool: &TermPool, seed_vars: &[VarId]) -> Vec<TermId> {
        let mut vars: HashSet<VarId> = seed_vars.iter().copied().collect();
        let mut selected: Vec<TermId> = Vec::new();
        let mut selected_set: HashSet<TermId> = HashSet::new();
        loop {
            let mut grew = false;
            for &c in &self.constraints {
                if selected_set.contains(&c) {
                    continue;
                }
                let cvars = pool.vars_of(c);
                if cvars.iter().any(|v| vars.contains(v)) {
                    selected.push(c);
                    selected_set.insert(c);
                    for v in cvars {
                        vars.insert(v);
                    }
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        selected
    }

    /// Whether field `field_idx` is *independent*: its variables do not
    /// appear (directly or through shared constraints) in any other field's
    /// expression (§3.3).
    pub fn field_independent(&self, pool: &TermPool, field_idx: usize) -> bool {
        let seed = self.field_vars(pool, field_idx);
        if seed.is_empty() {
            // A concrete field is trivially independent.
            return true;
        }
        let mut closure: HashSet<VarId> = seed.iter().copied().collect();
        for c in self.influencing_constraints(pool, &seed) {
            closure.extend(pool.vars_of(c));
        }
        for (i, &other) in self.message.values().iter().enumerate() {
            if i == field_idx {
                continue;
            }
            if pool.vars_of(other).iter().any(|v| closure.contains(v)) {
                return false;
            }
        }
        true
    }
}

/// The client predicate `P_C`: every message a correct client can generate.
#[derive(Clone, Debug, Default)]
pub struct ClientPredicate {
    /// The client path predicates, in discovery order.
    pub paths: Vec<ClientPathPredicate>,
}

impl ClientPredicate {
    /// Builds `P_C` from a client exploration: one path predicate per
    /// *(path, sent message)* pair.
    pub fn from_exploration(result: &ExploreResult) -> ClientPredicate {
        let mut paths = Vec::new();
        for record in &result.paths {
            for msg in &record.sent {
                paths.push(ClientPathPredicate {
                    index: paths.len(),
                    path_id: record.id,
                    message: msg.clone(),
                    constraints: record.constraints.clone(),
                    notes: record.notes.clone(),
                });
            }
        }
        ClientPredicate { paths }
    }

    /// Merges predicates from several client programs (e.g. the eight FSP
    /// utilities) into one `P_C`, re-indexing the paths.
    pub fn merge(preds: impl IntoIterator<Item = ClientPredicate>) -> ClientPredicate {
        let mut paths = Vec::new();
        for pred in preds {
            for mut p in pred.paths {
                p.index = paths.len();
                paths.push(p);
            }
        }
        ClientPredicate { paths }
    }

    /// Number of client path predicates.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the client sends no messages at all.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Renders every path predicate (Figure 5 style) for reports.
    pub fn render(&self, pool: &TermPool) -> String {
        let mut out = String::new();
        for p in &self.paths {
            out.push_str(&format!(
                "path {} (from exploration path {}):\n",
                p.index, p.path_id
            ));
            out.push_str(&format!("  message: {}\n", p.message.render(pool)));
            if p.constraints.is_empty() {
                out.push_str("  constraints: (none)\n");
            } else {
                out.push_str("  constraints:\n");
                for &c in &p.constraints {
                    out.push_str(&format!("    {}\n", achilles_solver::render(pool, c)));
                }
            }
        }
        out
    }
}

/// The conjunction that combines a server path with a client path predicate
/// (§3.2 "Constraint Solving"): server constraints ∧ client constraints ∧
/// per-field equality `msg_S.f == msg_C.f` for every unmasked field.
///
/// `masked` lists field indices to hide from the analysis (§5.2's mask).
pub fn combine(
    pool: &mut TermPool,
    server_msg: &SymMessage,
    server_constraints: &[TermId],
    client: &ClientPathPredicate,
    masked: &HashSet<usize>,
) -> Vec<TermId> {
    assert_eq!(
        server_msg.layout().name(),
        client.message.layout().name(),
        "combine: layouts must match"
    );
    let mut out = Vec::with_capacity(
        server_constraints.len() + client.constraints.len() + server_msg.values().len(),
    );
    out.extend_from_slice(server_constraints);
    out.extend_from_slice(&client.constraints);
    for (i, (&sv, &cv)) in server_msg
        .values()
        .iter()
        .zip(client.message.values())
        .enumerate()
    {
        if masked.contains(&i) {
            continue;
        }
        let eq = pool.eq(sv, cv);
        out.push(eq);
    }
    out
}

/// A mask hiding message fields from the Trojan analysis (§5.2).
///
/// Masked fields still participate in the server's own branching, but
/// Achilles neither equates them with client fields nor negates them — the
/// paper uses this to skip checksums, digests, and authenticators.
#[derive(Clone, Debug, Default)]
pub struct FieldMask {
    masked: HashSet<usize>,
}

impl FieldMask {
    /// An empty mask (all fields analyzed).
    pub fn none() -> FieldMask {
        FieldMask::default()
    }

    /// Masks fields by name against a layout.
    ///
    /// # Panics
    ///
    /// Panics if a name does not exist in the layout.
    pub fn by_names(layout: &achilles_symvm::MessageLayout, names: &[&str]) -> FieldMask {
        let masked = names
            .iter()
            .map(|n| {
                layout
                    .field_index(n)
                    .unwrap_or_else(|| panic!("mask: no field {n:?} in layout {:?}", layout.name()))
            })
            .collect();
        FieldMask { masked }
    }

    /// The masked field indices.
    pub fn indices(&self) -> &HashSet<usize> {
        &self.masked
    }

    /// Whether `field_idx` is masked.
    pub fn contains(&self, field_idx: usize) -> bool {
        self.masked.contains(&field_idx)
    }
}

/// Renames all variables of the given terms to fresh copies (suffix `'`),
/// returning the substitution used.
///
/// The fresh copies are the existentially quantified `λ'` variables of the
/// paper's negate operator.
pub fn rename_fresh(
    pool: &mut TermPool,
    terms: &[TermId],
) -> (Vec<TermId>, HashMap<VarId, TermId>) {
    let mut all_vars: Vec<VarId> = Vec::new();
    for &t in terms {
        pool.collect_vars(t, &mut all_vars);
    }
    let mut map: HashMap<VarId, TermId> = HashMap::new();
    for v in all_vars {
        let info = pool.var_info(v).clone();
        let fresh = pool.fresh(&format!("{}'", info.name), info.width);
        map.insert(v, fresh);
    }
    let renamed = terms.iter().map(|&t| pool.substitute(t, &map)).collect();
    (renamed, map)
}

/// Folds a 128-bit identity fingerprint into a 64-bit tag component.
fn fold_fp(fp: u128) -> u64 {
    (fp as u64) ^ ((fp >> 64) as u64)
}

/// Mixes two tag components (cheap splitmix-style avalanche).
pub(crate) fn mix_tag(a: u64, b: u64) -> u64 {
    (a ^ b.rotate_left(29))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
}

/// Like [`rename_fresh`], but every fresh copy's identity fingerprint is
/// derived from `tag`, the renamed variable's own identity, and its
/// occurrence index — not from the pool's creation counter or fork nonce.
///
/// This is what makes negation pre-processing parallelizable: two workers
/// negating the same client path in independently forked pools build
/// *fingerprint-identical* `λ'` variables, so the resulting clauses are
/// structurally equal across pools (and across worker counts), solver
/// models stay worker-invariant, and the cross-worker query cache keeps
/// matching. Callers must pick `tag`s that are unique per renamed scope
/// (e.g. hash of server message identity, client path index, field index).
pub fn rename_fresh_tagged(
    pool: &mut TermPool,
    terms: &[TermId],
    tag: u64,
) -> (Vec<TermId>, HashMap<VarId, TermId>) {
    let mut all_vars: Vec<VarId> = Vec::new();
    for &t in terms {
        pool.collect_vars(t, &mut all_vars);
    }
    let mut map: HashMap<VarId, TermId> = HashMap::new();
    for (k, v) in all_vars.into_iter().enumerate() {
        let info = pool.var_info(v).clone();
        let var_tag = mix_tag(mix_tag(tag, fold_fp(pool.var_fp(v))), k as u64);
        let fresh_var = pool.fresh_var_tagged(&format!("{}'", info.name), info.width, var_tag);
        let fresh = pool.var(fresh_var);
        map.insert(v, fresh);
    }
    let renamed = terms.iter().map(|&t| pool.substitute(t, &map)).collect();
    (renamed, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::{Solver, Width};
    use achilles_symvm::{Executor, ExploreConfig, MessageLayout, PathResult, SymEnv};
    use std::sync::Arc;

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("m")
            .field("cmd", Width::W8)
            .field("addr", Width::W32)
            .field("crc", Width::W16)
            .build()
    }

    /// A mini client: validates addr in [0, 100), sends cmd=1 with a
    /// crc-like opaque function over addr.
    fn explore_client() -> (TermPool, Solver, ClientPredicate) {
        let mut pool = TermPool::new();
        let crc = pool.register_fun("crc16", Width::W16, |args| {
            args.iter().sum::<u64>() ^ 0xBEEF
        });
        let mut solver = Solver::new();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&move |env: &mut SymEnv<'_>| -> PathResult<()> {
            let addr = env.sym("addr", Width::W32);
            let hundred = env.constant(100, Width::W32);
            let zero = env.constant(0, Width::W32);
            if !env.if_slt(addr, hundred)? {
                return Ok(()); // validation failed: exit
            }
            if env.if_slt(addr, zero)? {
                return Ok(());
            }
            let layout = layout();
            let cmd = env.constant(1, Width::W8);
            let crc_val = env.pool_mut().apply(crc, vec![addr]);
            env.send(achilles_symvm::SymMessage::new(
                layout,
                vec![cmd, addr, crc_val],
            ));
            Ok(())
        });
        let pred = ClientPredicate::from_exploration(&result);
        (pool, solver, pred)
    }

    #[test]
    fn client_predicate_from_exploration() {
        let (pool, _, pred) = explore_client();
        assert_eq!(pred.len(), 1, "only the validated path sends");
        let p = &pred.paths[0];
        assert_eq!(pool.as_const(p.message.field("cmd")), Some(1));
        assert!(pool.as_const(p.message.field("addr")).is_none());
        assert_eq!(p.constraints.len(), 2, "two validation constraints");
    }

    #[test]
    fn influencing_constraints_follow_vars() {
        let (pool, _, pred) = explore_client();
        let p = &pred.paths[0];
        let addr_vars = p.field_vars(&pool, 1);
        assert_eq!(addr_vars.len(), 1);
        let infl = p.influencing_constraints(&pool, &addr_vars);
        assert_eq!(infl.len(), 2, "both range checks influence addr");
        // cmd is concrete: nothing influences it.
        assert!(p.field_vars(&pool, 0).is_empty());
    }

    #[test]
    fn field_independence() {
        let (pool, _, pred) = explore_client();
        let p = &pred.paths[0];
        // cmd concrete → independent; addr shares its var with crc → dependent.
        assert!(p.field_independent(&pool, 0));
        assert!(!p.field_independent(&pool, 1));
        assert!(!p.field_independent(&pool, 2));
    }

    #[test]
    fn combine_builds_equalities() {
        let (mut pool, mut solver, pred) = explore_client();
        let server_msg = SymMessage::fresh(&mut pool, &layout(), "smsg");
        let masked: HashSet<usize> = HashSet::new();
        let combined = combine(&mut pool, &server_msg, &[], &pred.paths[0], &masked);
        // 2 client constraints + 3 field equalities.
        assert_eq!(combined.len(), 5);
        // The combination is satisfiable: the server can receive a client message.
        assert!(solver.is_sat(&mut pool, &combined));
        // Pinning the server addr to an out-of-range value contradicts it.
        let bad = pool.constant_signed(-5, Width::W32);
        let pin = pool.eq(server_msg.field("addr"), bad);
        let mut q = combined;
        q.push(pin);
        assert!(solver.is_unsat(&mut pool, &q));
    }

    #[test]
    fn mask_excludes_fields() {
        let (mut pool, _, pred) = explore_client();
        let server_msg = SymMessage::fresh(&mut pool, &layout(), "smsg");
        let l = layout();
        let mask = FieldMask::by_names(&l, &["crc"]);
        let combined = combine(&mut pool, &server_msg, &[], &pred.paths[0], mask.indices());
        assert_eq!(combined.len(), 4, "crc equality dropped");
    }

    #[test]
    fn rename_fresh_separates_vars() {
        let (mut pool, mut solver, pred) = explore_client();
        let p = &pred.paths[0];
        let terms: Vec<TermId> = std::iter::once(p.message.field("addr"))
            .chain(p.constraints.clone())
            .collect();
        let (renamed, map) = rename_fresh(&mut pool, &terms);
        assert_eq!(map.len(), 1);
        // Renamed constraint set is independently satisfiable alongside a
        // contradictory original: the copies are disjoint.
        let orig_addr = p.message.field("addr");
        let neg_one = pool.constant_signed(-1, Width::W32);
        let orig_pinned = pool.eq(orig_addr, neg_one);
        let mut q = vec![orig_pinned];
        q.extend(&renamed[1..]); // renamed range constraints
        assert!(solver.is_sat(&mut pool, &q));
    }
}
