//! Report export: render analysis results as Markdown.
//!
//! Trojan findings are fault-injection candidates (§4: "distributed system
//! developers … can incorporate the messages discovered by Achilles in
//! fault injection testing"), so they need to travel — into CI artifacts,
//! issue trackers, and fire-drill playbooks. This module renders an
//! [`AchillesReport`] (or a bare list of [`TrojanReport`]s) as
//! self-contained Markdown.

use std::fmt::Write as _;

use achilles_solver::TermPool;
use achilles_symvm::SymMessage;

use crate::pipeline::AchillesReport;
use crate::report::TrojanReport;

/// Renders a full pipeline report as Markdown.
pub fn report_to_markdown(pool: &TermPool, report: &AchillesReport) -> String {
    let mut out = String::new();
    out.push_str("# Achilles Trojan-message report\n\n");
    let _ = writeln!(out, "- client path predicates: **{}**", report.client.len());
    let _ = writeln!(out, "- server paths completed: **{}**", report.server_paths);
    let _ = writeln!(
        out,
        "- server paths pruned (no Trojan possible): **{}**",
        report.server_explore.pruned
    );
    let _ = writeln!(out, "- Trojan messages found: **{}**", report.trojans.len());
    let _ = writeln!(
        out,
        "- phases: client {:.3}s, preprocessing {:.3}s, server {:.3}s\n",
        report.phase_times.client.as_secs_f64(),
        report.phase_times.preprocess.as_secs_f64(),
        report.phase_times.server.as_secs_f64(),
    );
    out.push_str(&trojans_to_markdown(
        pool,
        &report.server_msg,
        &report.trojans,
    ));
    out
}

/// Renders Trojan reports as a Markdown table plus per-report details.
pub fn trojans_to_markdown(
    pool: &TermPool,
    server_msg: &SymMessage,
    trojans: &[TrojanReport],
) -> String {
    let mut out = String::new();
    if trojans.is_empty() {
        out.push_str("No Trojan messages: the server accepts exactly what clients send.\n");
        return out;
    }
    out.push_str("## Witnesses\n\n");
    out.push_str("| # | server path | verified | found at | ");
    for f in server_msg.layout().fields() {
        let _ = write!(out, "{} | ", f.name);
    }
    out.push('\n');
    out.push_str("|---|---|---|---|");
    for _ in server_msg.layout().fields() {
        out.push_str("---|");
    }
    out.push('\n');
    for (i, t) in trojans.iter().enumerate() {
        let _ = write!(
            out,
            "| {} | {} | {} | {:.3}s | ",
            i,
            t.server_path_id,
            if t.verified { "yes" } else { "NO" },
            t.found_at.as_secs_f64()
        );
        for v in &t.witness_fields {
            let _ = write!(out, "{v} | ");
        }
        out.push('\n');
    }
    out.push_str("\n## Path constraints\n\n");
    for (i, t) in trojans.iter().enumerate() {
        let _ = writeln!(
            out,
            "<details><summary>Trojan {} (path {}{})</summary>\n",
            i,
            t.server_path_id,
            if t.notes.is_empty() {
                String::new()
            } else {
                format!(": {}", t.notes.join("; "))
            },
        );
        out.push_str("```text\n");
        for &c in &t.constraints {
            let _ = writeln!(out, "{}", achilles_solver::render(pool, c));
        }
        out.push_str("```\n</details>\n\n");
    }
    out
}

/// Serializes a witness's field values as a stable, machine-readable record
/// (decimal, comma-separated) — the unit of the replay corpus format.
///
/// Reports render for humans ([`trojans_to_markdown`]); corpora need to
/// round-trip. Keeping both forms here means every consumer of exported
/// Trojans shares one vocabulary.
pub fn witness_record(fields: &[u64]) -> String {
    fields
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a [`witness_record`] back into field values.
///
/// Returns `None` on any malformed component (corrupt corpus lines are
/// skipped, not trusted).
pub fn parse_witness_record(s: &str) -> Option<Vec<u64>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(|p| p.trim().parse().ok()).collect()
}

/// Serializes a multi-message session witness: one [`witness_record`] per
/// slot, slot boundaries marked with `/` (`"68,0,3/1,2"`). The session
/// analogue of [`witness_record`], and the unit of the v2 replay corpus
/// format.
pub fn session_witness_record(slots: &[Vec<u64>]) -> String {
    slots
        .iter()
        .map(|fields| witness_record(fields))
        .collect::<Vec<_>>()
        .join("/")
}

/// Parses a [`session_witness_record`] back into per-slot field values.
///
/// Returns `None` on any malformed component.
pub fn parse_session_witness_record(s: &str) -> Option<Vec<Vec<u64>>> {
    s.split('/').map(parse_witness_record).collect()
}

/// Splits a concatenated session witness back into per-slot field vectors
/// — the one definition of the slot-boundary encoding, shared by session
/// reports, the replay corpus, and witness concretization.
///
/// # Panics
///
/// Panics if `fields` does not have exactly `counts.iter().sum()` entries.
pub fn split_fields_by_counts(fields: &[u64], counts: &[usize]) -> Vec<Vec<u64>> {
    let mut out = Vec::with_capacity(counts.len());
    let mut offset = 0usize;
    for &count in counts {
        out.push(fields[offset..offset + count].to_vec());
        offset += count;
    }
    assert_eq!(offset, fields.len(), "witness arity matches the slot shape");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Achilles, AchillesConfig};
    use achilles_solver::Width;
    use achilles_symvm::{MessageLayout, PathResult, SymEnv};
    use std::sync::Arc;

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("kv")
            .field("op", Width::W8)
            .field("key", Width::W16)
            .build()
    }

    fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
        let key = env.sym("key", Width::W16);
        let cap = env.constant(10, Width::W16);
        if !env.if_ult(key, cap)? {
            return Ok(());
        }
        let op = env.constant(1, Width::W8);
        env.send(achilles_symvm::SymMessage::new(layout(), vec![op, key]));
        Ok(())
    }

    fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&layout())?;
        let one = env.constant(1, Width::W8);
        if !env.if_eq(msg.field("op"), one)? {
            return Ok(());
        }
        let cap = env.constant(20, Width::W16);
        if !env.if_ult(msg.field("key"), cap)? {
            return Ok(());
        }
        env.mark_accept();
        Ok(())
    }

    #[test]
    fn markdown_contains_witness_table_and_constraints() {
        let mut achilles = Achilles::new();
        let report = achilles.run(&client, &server, &layout(), &AchillesConfig::verified());
        let md = report_to_markdown(&achilles.pool, &report);
        assert!(md.contains("# Achilles Trojan-message report"), "{md}");
        assert!(md.contains("| # | server path | verified |"), "{md}");
        assert!(md.contains("| op | key |"), "{md}");
        assert!(md.contains("```text"), "{md}");
        assert!(md.contains("msg.key"), "constraints rendered: {md}");
    }

    #[test]
    fn clean_reports_say_so() {
        let mut pool = TermPool::new();
        let msg = SymMessage::fresh(&mut pool, &layout(), "msg");
        let md = trojans_to_markdown(&pool, &msg, &[]);
        assert!(md.contains("No Trojan messages"));
    }

    #[test]
    fn witness_records_round_trip() {
        let fields = vec![0, 1, u64::MAX, 42];
        let record = witness_record(&fields);
        assert_eq!(parse_witness_record(&record), Some(fields));
        assert_eq!(parse_witness_record(""), Some(vec![]));
        assert_eq!(parse_witness_record("1,x,3"), None);
    }

    #[test]
    fn session_witness_records_round_trip() {
        let slots = vec![vec![68, 0, 3], vec![1, u64::MAX]];
        let record = session_witness_record(&slots);
        assert_eq!(record, "68,0,3/1,18446744073709551615");
        assert_eq!(parse_session_witness_record(&record), Some(slots));
        // A single-slot record is indistinguishable from a flat one.
        assert_eq!(parse_session_witness_record("1,2"), Some(vec![vec![1, 2]]));
        assert_eq!(parse_session_witness_record("1,2/x"), None);
    }

    #[test]
    fn split_fields_by_counts_recovers_slots() {
        assert_eq!(
            split_fields_by_counts(&[68, 0, 3, 1, 2], &[3, 2]),
            vec![vec![68, 0, 3], vec![1, 2]]
        );
        assert_eq!(split_fields_by_counts(&[], &[]), Vec::<Vec<u64>>::new());
    }
}
