//! Multi-node divergence observation: state roots, the probe that watches
//! them, and the signature triage folds them into.
//!
//! The paper's triage stops at crash/wedge on a single process. The
//! real-world Trojan shape in sharded executors detonates differently:
//! every node keeps running, and the cluster *silently splits* — two
//! replicas of the same state commit different values and produce
//! different canonical state hashes. This module gives the replay layer a
//! vocabulary for that failure family:
//!
//! * a [`StateRoot`] is one node's canonical state digest at an instant;
//! * a [`DivergenceProbe`] rides inside a multi-node target's fork
//!   session (it is `Clone`, so it snapshots and restores with the engine
//!   state) and records the first delivery index at which the roots
//!   split;
//! * [`DivergenceProbe::finish`] folds the observation into effect
//!   strings (`diverge:at:<idx>`, `diverge:root:<node>:<digest>`, or
//!   `root:agree:<digest>`) that flow through the ordinary
//!   `InjectionOutcome` → `CrashSignature` path — no replay-harness
//!   changes, and fork-server replay stays bit-identical to cold boots by
//!   construction;
//! * a [`DivergenceSignature`] parses those effects back out of a
//!   signature, exposing which nodes split, at which delivery index, and
//!   with which root digests — the shape session ddmin minimizes against
//!   ([`same_split`](DivergenceSignature::same_split)) and the sweep
//!   classifier's `Diverged` class keys on.
//!
//! Effect strings deliberately avoid `|`, `;`, and newlines (the
//! characters crash-signature serialization sanitizes away), so a
//! divergence marker survives signature → text → signature round trips
//! byte-exactly.

use std::fmt;

/// Marker prefix of a final-state divergence: `diverge:at:<index>`.
pub const DIVERGE_AT_PREFIX: &str = "diverge:at:";

/// Marker prefix of one node's root in a diverged run:
/// `diverge:root:<node>:<16-hex-digest>`.
pub const DIVERGE_ROOT_PREFIX: &str = "diverge:root:";

/// Marker prefix of a transient split that healed before the end of the
/// plan: `diverge:transient:<index>`.
pub const DIVERGE_TRANSIENT_PREFIX: &str = "diverge:transient:";

/// Marker prefix of a run whose nodes agreed at the end of the plan:
/// `root:agree:<16-hex-digest>`.
pub const ROOT_AGREE_PREFIX: &str = "root:agree:";

/// One node's canonical state digest at an observation point.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateRoot {
    /// Node name (`"shard0"`, `"replica-b"`, …). Must not contain the
    /// characters signature serialization sanitizes (`|`, `;`, newline)
    /// or the `:` the effect grammar splits on.
    pub node: String,
    /// The canonical digest of the node's replicated state.
    pub digest: u64,
}

impl StateRoot {
    /// A root for `node` with the given digest.
    pub fn new(node: impl Into<String>, digest: u64) -> StateRoot {
        StateRoot {
            node: node.into(),
            digest,
        }
    }
}

/// Whether a set of roots is in agreement (vacuously true below two
/// nodes).
pub fn roots_agree(roots: &[StateRoot]) -> bool {
    roots.windows(2).all(|w| w[0].digest == w[1].digest)
}

/// A streaming FNV-1a hasher for building canonical state digests.
///
/// Deliberately not `std::hash::Hasher`: the std trait's output is
/// documented as unstable across releases, while a state root must be
/// bit-stable across machines, runs, and toolchains (it is compared in
/// cached signatures and serialized matrices).
#[derive(Clone, Copy, Debug)]
pub struct RootHasher(u64);

impl Default for RootHasher {
    fn default() -> RootHasher {
        RootHasher::new()
    }
}

impl RootHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> RootHasher {
        RootHasher(Self::OFFSET)
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds one integer (big-endian) into the digest.
    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        self.write_bytes(&value.to_be_bytes())
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Observes per-node state roots after every delivery of a plan and
/// renders the outcome as effect strings at the end.
///
/// The probe is plain `Clone` data: multi-node fork sessions embed it in
/// their [`TargetSnapshot`](crate::TargetSnapshot) payload, so
/// snapshot/restore rewinds the observation history together with the
/// engine state and the fork-server equivalence law holds with no extra
/// machinery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DivergenceProbe {
    delivered: usize,
    first_split: Option<usize>,
}

impl DivergenceProbe {
    /// A fresh probe that has observed nothing.
    pub fn new() -> DivergenceProbe {
        DivergenceProbe::default()
    }

    /// Records the roots after one delivery. Call exactly once per plan
    /// entry, *after* the engine applied it.
    pub fn observe(&mut self, roots: &[StateRoot]) {
        if self.first_split.is_none() && !roots_agree(roots) {
            self.first_split = Some(self.delivered);
        }
        self.delivered += 1;
    }

    /// The delivery index at which the roots first split, if they ever
    /// did (transient splits that later healed still count).
    pub fn first_split(&self) -> Option<usize> {
        self.first_split
    }

    /// Renders the end-of-plan observation as effect strings, given the
    /// final roots:
    ///
    /// * split at the end — `diverge:at:<first-split-index>` plus one
    ///   `diverge:root:<node>:<digest>` per node;
    /// * split mid-plan but healed — `diverge:transient:<index>` plus
    ///   `root:agree:<digest>`;
    /// * never split — `root:agree:<digest>`.
    pub fn finish(&self, roots: &[StateRoot]) -> Vec<String> {
        if roots_agree(roots) {
            let agree = roots
                .first()
                .map(|r| format!("{ROOT_AGREE_PREFIX}{:016x}", r.digest))
                .into_iter();
            return match self.first_split {
                Some(at) => std::iter::once(format!("{DIVERGE_TRANSIENT_PREFIX}{at}"))
                    .chain(agree)
                    .collect(),
                None => agree.collect(),
            };
        }
        let at = self.first_split.unwrap_or(self.delivered.saturating_sub(1));
        let mut effects = vec![format!("{DIVERGE_AT_PREFIX}{at}")];
        effects.extend(
            roots
                .iter()
                .map(|r| format!("{DIVERGE_ROOT_PREFIX}{}:{:016x}", r.node, r.digest)),
        );
        effects
    }
}

/// A parsed divergence: which nodes split, at which delivery index, with
/// which final root digests.
///
/// Recovered from the effect strings of a crash signature
/// ([`from_effects`](DivergenceSignature::from_effects)), so triage,
/// ddmin, and cached sweep cells can all reason about divergence without
/// re-running the target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DivergenceSignature {
    /// The delivery index at which the roots first split.
    pub first_split: usize,
    /// Final per-node roots, sorted by node name.
    pub roots: Vec<StateRoot>,
}

impl DivergenceSignature {
    /// Parses a divergence out of effect strings, if they carry one
    /// (a `diverge:at:` marker plus at least one `diverge:root:`).
    pub fn from_effects<'a, I>(effects: I) -> Option<DivergenceSignature>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut first_split = None;
        let mut roots = Vec::new();
        for effect in effects {
            if let Some(at) = effect.strip_prefix(DIVERGE_AT_PREFIX) {
                first_split = at.parse::<usize>().ok();
            } else if let Some(rest) = effect.strip_prefix(DIVERGE_ROOT_PREFIX) {
                let (node, digest) = rest.rsplit_once(':')?;
                let digest = u64::from_str_radix(digest, 16).ok()?;
                roots.push(StateRoot::new(node, digest));
            }
        }
        if roots.is_empty() {
            return None;
        }
        roots.sort();
        Some(DivergenceSignature {
            first_split: first_split?,
            roots,
        })
    }

    /// The effect strings this signature renders back to (the same form
    /// [`DivergenceProbe::finish`] emits, modulo node ordering).
    pub fn to_effects(&self) -> Vec<String> {
        let mut effects = vec![format!("{DIVERGE_AT_PREFIX}{}", self.first_split)];
        effects.extend(
            self.roots
                .iter()
                .map(|r| format!("{DIVERGE_ROOT_PREFIX}{}:{:016x}", r.node, r.digest)),
        );
        effects
    }

    /// The partition of node names by root digest, each group sorted,
    /// groups sorted by their first member — *which* nodes split, with
    /// the concrete digest values abstracted away.
    pub fn split_sets(&self) -> Vec<Vec<&str>> {
        let mut groups: Vec<(u64, Vec<&str>)> = Vec::new();
        for root in &self.roots {
            match groups.iter_mut().find(|(d, _)| *d == root.digest) {
                Some((_, names)) => names.push(&root.node),
                None => groups.push((root.digest, vec![&root.node])),
            }
        }
        let mut sets: Vec<Vec<&str>> = groups.into_iter().map(|(_, names)| names).collect();
        for set in &mut sets {
            set.sort_unstable();
        }
        sets.sort();
        sets
    }

    /// Whether two divergences split the *same nodes at the same delivery
    /// index* — digests are compared only for equality structure, not
    /// value, so a minimization step that changes concrete state (and so
    /// the digests) still counts as preserving the divergence.
    pub fn same_split(&self, other: &DivergenceSignature) -> bool {
        self.first_split == other.first_split && self.split_sets() == other.split_sets()
    }
}

impl fmt::Display for DivergenceSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "split@{}", self.first_split)?;
        for (i, set) in self.split_sets().iter().enumerate() {
            write!(f, "{}{}", if i == 0 { " " } else { " vs " }, set.join("+"))?;
        }
        Ok(())
    }
}

/// Whether an effect list carries a final-state divergence marker.
pub fn effects_diverged<'a, I>(effects: I) -> bool
where
    I: IntoIterator<Item = &'a str>,
{
    effects
        .into_iter()
        .any(|e| e.starts_with(DIVERGE_AT_PREFIX))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roots(digests: &[u64]) -> Vec<StateRoot> {
        digests
            .iter()
            .enumerate()
            .map(|(i, &d)| StateRoot::new(format!("shard{i}"), d))
            .collect()
    }

    #[test]
    fn agreeing_runs_emit_one_agree_marker() {
        let mut probe = DivergenceProbe::new();
        probe.observe(&roots(&[7, 7, 7]));
        probe.observe(&roots(&[9, 9, 9]));
        assert_eq!(probe.first_split(), None);
        let effects = probe.finish(&roots(&[9, 9, 9]));
        assert_eq!(effects, vec![format!("root:agree:{:016x}", 9)]);
        assert!(!effects_diverged(effects.iter().map(String::as_str)));
        assert_eq!(
            DivergenceSignature::from_effects(effects.iter().map(String::as_str)),
            None
        );
    }

    #[test]
    fn split_records_the_first_divergent_delivery() {
        let mut probe = DivergenceProbe::new();
        probe.observe(&roots(&[7, 7, 7]));
        probe.observe(&roots(&[7, 3, 3]));
        probe.observe(&roots(&[7, 3, 3]));
        assert_eq!(probe.first_split(), Some(1));
        let effects = probe.finish(&roots(&[7, 3, 3]));
        assert!(effects_diverged(effects.iter().map(String::as_str)));
        let sig = DivergenceSignature::from_effects(effects.iter().map(String::as_str))
            .expect("diverged effects parse");
        assert_eq!(sig.first_split, 1);
        assert_eq!(
            sig.split_sets(),
            vec![vec!["shard0"], vec!["shard1", "shard2"]]
        );
        assert_eq!(sig.to_string(), "split@1 shard0 vs shard1+shard2");
    }

    #[test]
    fn transient_splits_heal_into_agreement_with_a_marker() {
        let mut probe = DivergenceProbe::new();
        probe.observe(&roots(&[1, 2, 2]));
        probe.observe(&roots(&[5, 5, 5]));
        let effects = probe.finish(&roots(&[5, 5, 5]));
        assert_eq!(
            effects,
            vec![
                "diverge:transient:0".to_string(),
                format!("root:agree:{:016x}", 5)
            ]
        );
        assert!(!effects_diverged(effects.iter().map(String::as_str)));
    }

    #[test]
    fn signature_round_trips_through_effects() {
        let sig = DivergenceSignature {
            first_split: 2,
            roots: roots(&[1, 1, 9]),
        };
        let back = DivergenceSignature::from_effects(
            sig.to_effects()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(back, sig);
    }

    #[test]
    fn same_split_ignores_digest_values_but_not_structure() {
        let a = DivergenceSignature {
            first_split: 1,
            roots: roots(&[1, 1, 9]),
        };
        let b = DivergenceSignature {
            first_split: 1,
            roots: roots(&[4, 4, 2]),
        };
        // Same partition {s0,s1} vs {s2}, different digests: same split.
        assert!(a.same_split(&b));
        let c = DivergenceSignature {
            first_split: 1,
            roots: roots(&[4, 2, 4]),
        };
        assert!(!a.same_split(&c), "different nodes split");
        let d = DivergenceSignature {
            first_split: 0,
            roots: roots(&[1, 1, 9]),
        };
        assert!(!a.same_split(&d), "different delivery index");
    }

    #[test]
    fn root_hasher_is_order_sensitive_and_stable() {
        let mut a = RootHasher::new();
        a.write_u64(1).write_u64(2);
        let mut b = RootHasher::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = RootHasher::new();
        c.write_u64(1).write_u64(2);
        assert_eq!(a.finish(), c.finish());
        // Pinned: the digest is part of serialized signatures, so it must
        // never drift across releases.
        assert_eq!(
            RootHasher::new().write_bytes(b"achilles").finish(),
            0x1fbc_5f01_fc92_4a02
        );
    }

    #[test]
    fn effect_strings_survive_signature_sanitization() {
        let sig = DivergenceSignature {
            first_split: 0,
            roots: roots(&[3, 4, 5]),
        };
        for effect in sig.to_effects() {
            assert!(
                !effect.contains(['|', ';', '\n']),
                "{effect:?} would be mangled by signature sanitization"
            );
        }
    }
}
