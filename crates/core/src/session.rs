//! The builder-style front door: [`AchillesSession`] runs the pipeline
//! against a [`TargetSpec`], and [`TargetRegistry`] selects specs by name.
//!
//! Before this API, every driver (bench bins, examples, tests) hand-wired
//! the pipeline per protocol: build the client programs, extract and merge
//! predicates, create the symbolic server message, call
//! [`run_trojan_search`](crate::run_trojan_search), then match on the
//! protocol again to boot a replay deployment. A session replaces all of
//! that with
//!
//! ```text
//! let registry = builtin_registry();            // assembled once, elsewhere
//! let spec = registry.get("fsp").unwrap();
//! let report = AchillesSession::new(&**spec).workers(4).run();
//! ```
//!
//! and validation becomes `achilles_replay::validate_spec(&**spec, …)`.
//! Protocols join by implementing [`TargetSpec`] and registering — no
//! driver changes.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use achilles_symvm::{ExploreStats, MessageLayout, SymMessage};

use crate::pipeline::{Achilles, AchillesConfig, AchillesReport, LocalState, PhaseTimes};
use crate::predicate::{ClientPredicate, FieldMask};
use crate::report::TrojanReport;
use crate::search::{prepare_client_workers, Optimizations};
use crate::sequence::analyze_sequence_with;
use crate::target::TargetSpec;

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A named collection of [`TargetSpec`]s, in registration order.
///
/// The registry is the single point where protocols are enumerated:
/// drivers iterate it (conformance suites, the replay-validation bench) or
/// look a spec up by name (`--target fsp`). Registering a spec whose name
/// is already present replaces the earlier entry, so callers can override
/// a built-in configuration.
#[derive(Default)]
pub struct TargetRegistry {
    specs: Vec<Arc<dyn TargetSpec>>,
}

impl fmt::Debug for TargetRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TargetRegistry")
            .field("targets", &self.names())
            .finish()
    }
}

impl TargetRegistry {
    /// An empty registry.
    pub fn new() -> TargetRegistry {
        TargetRegistry::default()
    }

    /// Registers a spec under [`TargetSpec::name`], replacing any earlier
    /// spec of the same name.
    pub fn register(&mut self, spec: Arc<dyn TargetSpec>) -> &mut TargetRegistry {
        self.specs.retain(|s| s.name() != spec.name());
        self.specs.push(spec);
        self
    }

    /// The spec registered under `name`.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn TargetSpec>> {
        self.specs.iter().find(|s| s.name() == name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name()).collect()
    }

    /// Iterates the registered specs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<dyn TargetSpec>> {
        self.specs.iter()
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

/// A builder-style pipeline run over one [`TargetSpec`].
///
/// The session owns the engine (pool + solver), starts from the spec's
/// [`TargetSpec::analysis_config`], and exposes the common knobs as
/// chainable setters. [`AchillesSession::run`] executes client predicate
/// extraction (merging every client program of the spec), pre-processing,
/// and the server Trojan search; the engine stays available afterwards for
/// rendering witnesses or issuing custom queries.
///
/// # Examples
///
/// ```
/// use achilles::AchillesSession;
/// # use std::sync::Arc;
/// # use achilles::{Delivery, InjectionOutcome, ReplayTarget, TargetSpec};
/// # use achilles_solver::Width;
/// # use achilles_symvm::{MessageLayout, NodeProgram, PathResult, SymEnv, SymMessage};
/// # fn layout() -> Arc<MessageLayout> {
/// #     MessageLayout::builder("kv").field("op", Width::W8).field("key", Width::W16).build()
/// # }
/// # struct KvTarget;
/// # impl ReplayTarget for KvTarget {
/// #     fn name(&self) -> &'static str { "kv" }
/// #     fn layout(&self) -> Arc<MessageLayout> { layout() }
/// #     fn benign_fields(&self) -> Vec<u64> { vec![1, 0] }
/// #     fn client_generable(&self, fields: &[u64]) -> bool { fields[1] < 1024 }
/// #     fn inject(&self, d: &[Delivery]) -> InjectionOutcome {
/// #         InjectionOutcome { accepted_each: d.iter().map(|(w, _)| w[0] == 1 && u64::from(w[1]) * 256 + u64::from(w[2]) < 4096).collect(), effects: vec![] }
/// #     }
/// # }
/// # struct KvSpec;
/// # fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
/// #     let key = env.sym("key", Width::W16);
/// #     let limit = env.constant(1024, Width::W16);
/// #     if !env.if_ult(key, limit)? { return Ok(()); }
/// #     let op = env.constant(1, Width::W8);
/// #     env.send(SymMessage::new(layout(), vec![op, key]));
/// #     Ok(())
/// # }
/// # fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
/// #     let msg = env.recv(&layout())?;
/// #     let one = env.constant(1, Width::W8);
/// #     if !env.if_eq(msg.field("op"), one)? { return Ok(()); }
/// #     let limit = env.constant(4096, Width::W16);
/// #     if !env.if_ult(msg.field("key"), limit)? { return Ok(()); }
/// #     env.mark_accept();
/// #     Ok(())
/// # }
/// # impl TargetSpec for KvSpec {
/// #     fn name(&self) -> &'static str { "kv" }
/// #     fn layout(&self) -> Arc<MessageLayout> { layout() }
/// #     fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> { vec![Box::new(client)] }
/// #     fn server(&self) -> Box<dyn NodeProgram + Sync + '_> { Box::new(server) }
/// #     fn replay_target(&self) -> Box<dyn ReplayTarget> { Box::new(KvTarget) }
/// # }
/// let spec = KvSpec;
/// let mut session = AchillesSession::new(&spec);
/// let report = session.run();
/// assert_eq!(report.trojans.len(), 1, "the server's oversized-key window");
/// ```
pub struct AchillesSession<'s> {
    spec: &'s dyn TargetSpec,
    config: AchillesConfig,
    engine: Achilles,
}

impl fmt::Debug for AchillesSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AchillesSession")
            .field("target", &self.spec.name())
            .field("config", &self.config)
            .finish()
    }
}

impl<'s> AchillesSession<'s> {
    /// A session over `spec`, configured with the spec's
    /// [`TargetSpec::analysis_config`] and [`TargetSpec::mask`].
    ///
    /// [`TargetSpec::mask`] fills the mask only when
    /// [`TargetSpec::analysis_config`] left it empty, so a spec that sets
    /// [`AchillesConfig::mask`] directly is honored too (the two hooks
    /// never silently shadow each other).
    pub fn new(spec: &'s dyn TargetSpec) -> AchillesSession<'s> {
        let mut config = spec.analysis_config();
        if config.mask.indices().is_empty() {
            config.mask = spec.mask();
        }
        AchillesSession {
            spec,
            config,
            engine: Achilles::new(),
        }
    }

    /// Fans the client exploration, pre-processing, and server analysis
    /// out over `n` work-stealing workers (`1` = sequential). All three
    /// phases share the engine's persistent query cache, so raising the
    /// worker count also turns repeated queries *across* phases into
    /// cross-phase cache hits
    /// ([`ExploreStats::cross_phase_cache_hits`](achilles_symvm::ExploreStats)).
    pub fn workers(mut self, n: usize) -> AchillesSession<'s> {
        self.config.server_explore.workers = n.max(1);
        self.config.client_explore.workers = n.max(1);
        self
    }

    /// Re-verifies every witness against every client path predicate.
    pub fn verify_witnesses(mut self, on: bool) -> AchillesSession<'s> {
        self.config.verify_witnesses = on;
        self
    }

    /// Overrides the optimization toggles (§6.4 ablation).
    pub fn optimizations(mut self, opts: Optimizations) -> AchillesSession<'s> {
        self.config.optimizations = opts;
        self
    }

    /// Overrides the server local-state mode (§3.4).
    pub fn local_state(mut self, state: LocalState) -> AchillesSession<'s> {
        self.config.local_state = state;
        self
    }

    /// Overrides the field mask (§5.2).
    pub fn mask(mut self, mask: FieldMask) -> AchillesSession<'s> {
        self.config.mask = mask;
        self
    }

    /// The target this session analyzes.
    pub fn spec(&self) -> &'s dyn TargetSpec {
        self.spec
    }

    /// The effective pipeline configuration.
    pub fn config(&self) -> &AchillesConfig {
        &self.config
    }

    /// Mutable access to the configuration, for knobs without a dedicated
    /// setter (exploration budgets, say).
    pub fn config_mut(&mut self) -> &mut AchillesConfig {
        &mut self.config
    }

    /// The underlying engine (pool + solver), e.g. for rendering the
    /// constraints of a finished run.
    pub fn engine(&self) -> &Achilles {
        &self.engine
    }

    /// Consumes the session, returning the engine with the pool the
    /// reports' terms live in.
    pub fn into_engine(self) -> Achilles {
        self.engine
    }

    /// Runs the pipeline: every client program of the spec is explored and
    /// the predicates merged in order (`P_C` = union over clients), then
    /// pre-processing and the server Trojan search run exactly as
    /// [`Achilles::run`] would.
    pub fn run(&mut self) -> AchillesReport {
        let spec = self.spec;
        let layout = spec.layout();
        let run_span = achilles_obs::timed("pipeline:run", "pipeline");
        let t0 = Instant::now();
        let phase = achilles_obs::timed("phase:client", "pipeline");
        let mut parts = Vec::new();
        let mut client_explore = ExploreStats::default();
        for client in spec.clients() {
            let (pred, stats) = self
                .engine
                .extract_client_predicate(&*client, &self.config.client_explore);
            accumulate_stats(&mut client_explore, &stats);
            parts.push(pred);
        }
        let client_pred = ClientPredicate::merge(parts);
        phase.finish();
        let t1 = Instant::now();
        let phase = achilles_obs::timed("phase:preprocess", "pipeline");
        let prepared = self.engine.prepare_with_workers(
            client_pred,
            &layout,
            self.config.mask.clone(),
            self.config.optimizations,
            self.config.server_explore.workers.max(1),
        );
        phase.finish();
        let t2 = Instant::now();
        let phase = achilles_obs::timed("phase:server", "pipeline");
        let server = spec.server();
        let outcome = self
            .engine
            .analyze_server(&*server, &prepared, &self.config);
        phase.finish();
        run_span.finish();
        let t3 = Instant::now();
        outcome.stats.record_metrics();
        self.engine.shared_cache().stats().record_metrics();
        crate::pipeline::record_proof_audit_metrics();
        let server_cpu: Duration = outcome.workers.iter().map(|w| w.busy).sum();
        AchillesReport {
            client: prepared.client.clone(),
            server_msg: prepared.server_msg.clone(),
            trojans: outcome.reports,
            phase_times: PhaseTimes {
                client: t1 - t0,
                preprocess: t2 - t1,
                server: t3 - t2,
                server_cpu,
                validate: Duration::ZERO,
            },
            samples: outcome.samples,
            search_stats: outcome.stats,
            client_explore,
            server_explore: outcome.explore,
            server_paths: outcome.server_paths,
            server_workers: outcome.workers,
        }
    }
}

// ---------------------------------------------------------------------------
// Session (multi-message) runs
// ---------------------------------------------------------------------------

/// Everything the analysis of one declared [`SessionSpec`] produced.
///
/// Each [`TrojanReport`]'s `witness_fields` is the *whole session* —
/// per-slot field values concatenated in slot order ([`SessionReport::split_fields`]
/// recovers the per-slot messages) — and `trojan_slots[i]` names the slots
/// whose message on report `i`'s path is un-generable by that slot's
/// correct clients (the slot attribution).
///
/// [`SessionSpec`]: crate::target::SessionSpec
#[derive(Debug)]
pub struct SessionReport {
    /// The declared session's name.
    pub session: String,
    /// Slot names, in slot order.
    pub slot_names: Vec<String>,
    /// Per-slot wire layouts, in slot order.
    pub layouts: Vec<Arc<MessageLayout>>,
    /// The spec's expected session-Trojan count hint.
    pub expected_trojans: Option<usize>,
    /// Discovered session Trojans, in canonical server-path order.
    pub trojans: Vec<TrojanReport>,
    /// Per-report slot attribution: which slots host the Trojan.
    pub trojan_slots: Vec<Vec<usize>>,
    /// Completed session server paths.
    pub server_paths: usize,
}

impl SessionReport {
    /// Per-slot field counts, in slot order.
    pub fn slot_field_counts(&self) -> Vec<usize> {
        self.layouts.iter().map(|l| l.num_fields()).collect()
    }

    /// Splits a concatenated session witness back into per-slot field
    /// vectors.
    ///
    /// # Panics
    ///
    /// Panics if `fields` does not have exactly the session's total arity.
    pub fn split_fields(&self, fields: &[u64]) -> Vec<Vec<u64>> {
        crate::export::split_fields_by_counts(fields, &self.slot_field_counts())
    }
}

impl<'s> AchillesSession<'s> {
    /// Runs the multi-message session analyses the spec declares: for each
    /// [`SessionSpec`](crate::target::SessionSpec), every referenced
    /// session client is explored once, each slot's client predicates are
    /// merged and pre-processed against a fresh symbolic slot message, and
    /// [`analyze_sequence`](crate::sequence::analyze_sequence) runs the
    /// session server over the work-stealing pool
    /// (`config.server_explore.workers`, budgets included) — so session
    /// Trojans are registry-drivable with the same worker-count
    /// bit-identity guarantee as the single-message search.
    ///
    /// Returns one [`SessionReport`] per declared session, in declaration
    /// order (empty when the spec declares none).
    ///
    /// # Panics
    ///
    /// Panics if a declared slot references a session-client index that is
    /// out of range.
    pub fn run_sessions(&mut self) -> Vec<SessionReport> {
        let _span = achilles_obs::span("session:run", "pipeline");
        let sessions = self.spec.sessions();
        if sessions.is_empty() {
            return Vec::new();
        }
        let clients = self.spec.session_clients();
        let mut preds = Vec::with_capacity(clients.len());
        for client in &clients {
            let (pred, _) = self
                .engine
                .extract_client_predicate(&**client, &self.config.client_explore);
            preds.push(pred);
        }
        let workers = self.config.server_explore.workers.max(1);
        let mut out = Vec::with_capacity(sessions.len());
        for session in sessions {
            let mut prepared = Vec::with_capacity(session.slots.len());
            for slot in &session.slots {
                let parts: Vec<ClientPredicate> = slot
                    .clients
                    .iter()
                    .map(|&ci| {
                        preds
                            .get(ci)
                            .unwrap_or_else(|| {
                                panic!(
                                    "session {:?} slot {:?} references client {ci}, \
                                     but the spec declares only {} session clients",
                                    session.name,
                                    slot.name,
                                    preds.len()
                                )
                            })
                            .clone()
                    })
                    .collect();
                let merged = ClientPredicate::merge(parts);
                let msg = SymMessage::fresh(
                    &mut self.engine.pool,
                    &slot.layout,
                    &format!("{}:{}", session.name, slot.name),
                );
                prepared.push(prepare_client_workers(
                    &mut self.engine.pool,
                    &mut self.engine.solver,
                    merged,
                    msg,
                    slot.mask.clone(),
                    self.config.optimizations,
                    workers,
                ));
            }
            let server = self.spec.session_server(&session.name);
            let (trojans, trojan_slots, server_paths) = analyze_sequence_with(
                &mut self.engine.pool,
                &mut self.engine.solver,
                &*server,
                prepared.iter().collect(),
                self.config.optimizations,
                self.config.server_explore.clone(),
            );
            out.push(SessionReport {
                session: session.name.clone(),
                slot_names: session.slots.iter().map(|s| s.name.clone()).collect(),
                layouts: session
                    .slots
                    .iter()
                    .map(|s| Arc::clone(&s.layout))
                    .collect(),
                expected_trojans: session.expected_trojans,
                trojans,
                trojan_slots,
                server_paths,
            });
        }
        // Same merge-point mirror as `Pipeline::run`: session discovery
        // publishes through the engine-persistent shared cache, so its
        // series must reflect this path too.
        self.engine.shared_cache().stats().record_metrics();
        crate::pipeline::record_proof_audit_metrics();
        out
    }
}

/// Accumulation of exploration counters across the client programs of one
/// spec: plain-sum counters via [`ExploreStats::absorb_counters`]
/// (shared with the parallel worker merge), `workers` as max, the rest as
/// sums.
fn accumulate_stats(into: &mut ExploreStats, part: &ExploreStats) {
    into.absorb_counters(part);
    into.workers = into.workers.max(part.workers);
    into.workers_effective = into.workers_effective.max(part.workers_effective);
    into.steals += part.steals;
    into.shared_cache_hits += part.shared_cache_hits;
    into.cross_phase_cache_hits += part.cross_phase_cache_hits;
    into.wall_time += part.wall_time;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{Delivery, InjectionOutcome, ReplayTarget};
    use achilles_solver::Width;
    use achilles_symvm::{MessageLayout, NodeProgram, PathResult, SymEnv, SymMessage};

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("kv")
            .field("op", Width::W8)
            .field("key", Width::W16)
            .build()
    }

    fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
        let key = env.sym("key", Width::W16);
        let limit = env.constant(1024, Width::W16);
        if !env.if_ult(key, limit)? {
            return Ok(());
        }
        let op = env.constant(1, Width::W8);
        env.send(SymMessage::new(layout(), vec![op, key]));
        Ok(())
    }

    fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&layout())?;
        let one = env.constant(1, Width::W8);
        if !env.if_eq(msg.field("op"), one)? {
            return Ok(());
        }
        let limit = env.constant(4096, Width::W16);
        if !env.if_ult(msg.field("key"), limit)? {
            return Ok(());
        }
        env.mark_accept();
        Ok(())
    }

    struct KvTarget;
    impl ReplayTarget for KvTarget {
        fn name(&self) -> &'static str {
            "kv"
        }
        fn layout(&self) -> Arc<MessageLayout> {
            layout()
        }
        fn benign_fields(&self) -> Vec<u64> {
            vec![1, 0]
        }
        fn client_generable(&self, fields: &[u64]) -> bool {
            fields[0] == 1 && fields[1] < 1024
        }
        fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
            InjectionOutcome {
                accepted_each: deliveries.iter().map(|_| true).collect(),
                effects: vec![],
            }
        }
    }

    struct KvSpec;
    impl crate::target::TargetSpec for KvSpec {
        fn name(&self) -> &'static str {
            "kv"
        }
        fn layout(&self) -> Arc<MessageLayout> {
            layout()
        }
        fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
            vec![Box::new(client)]
        }
        fn server(&self) -> Box<dyn NodeProgram + Sync + '_> {
            Box::new(server)
        }
        fn replay_target(&self) -> Box<dyn ReplayTarget> {
            Box::new(KvTarget)
        }
        fn expected_trojans(&self) -> Option<usize> {
            Some(1)
        }
    }

    #[test]
    fn session_matches_the_raw_pipeline() {
        let spec = KvSpec;
        let mut session = AchillesSession::new(&spec);
        let via_session = session.run();

        let mut achilles = Achilles::new();
        let direct = achilles.run(&client, &server, &layout(), &AchillesConfig::verified());

        assert_eq!(via_session.trojans.len(), direct.trojans.len());
        assert_eq!(
            via_session.trojans[0].witness_fields,
            direct.trojans[0].witness_fields
        );
        assert_eq!(via_session.server_paths, direct.server_paths);
        assert_eq!(spec.expected_trojans(), Some(via_session.trojans.len()));
        // The engine stays usable for custom queries over the results.
        assert!(!session.engine().pool.is_empty());
    }

    #[test]
    fn registry_selects_replaces_and_iterates() {
        let mut registry = TargetRegistry::new();
        registry.register(Arc::new(KvSpec));
        assert_eq!(registry.names(), vec!["kv"]);
        assert!(registry.get("kv").is_some());
        assert!(registry.get("nope").is_none());
        assert_eq!(registry.len(), 1);
        // Same-name registration replaces.
        registry.register(Arc::new(KvSpec));
        assert_eq!(registry.len(), 1);
        let report = AchillesSession::new(&**registry.get("kv").unwrap()).run();
        assert_eq!(report.trojans.len(), 1);
    }

    #[test]
    fn engine_cache_persists_across_phases_and_runs() {
        // The engine attaches one SharedCache for its lifetime: a later
        // phase's worker solvers re-use queries an earlier phase paid for,
        // and the reuse is visible as cross-phase cache hits — without
        // perturbing any result.
        let spec = KvSpec;
        let mut session = AchillesSession::new(&spec).workers(4);
        let first = session.run();
        let second = session.run();
        assert_eq!(
            first.trojans[0].witness_fields, second.trojans[0].witness_fields,
            "cache reuse never changes results"
        );
        assert!(
            second.client_explore.cross_phase_cache_hits > 0,
            "re-exploring the client re-uses the first run's published \
             queries (shared hits: {}, cross-phase: {})",
            second.client_explore.shared_cache_hits,
            second.client_explore.cross_phase_cache_hits,
        );
        let cache = session.engine().shared_cache().stats();
        assert!(cache.cross_epoch_hits > 0);
        assert!(cache.cross_epoch_hits <= cache.hits);
    }

    #[test]
    fn session_workers_knob_is_deterministic() {
        let spec = KvSpec;
        let seq = AchillesSession::new(&spec).run();
        let par = AchillesSession::new(&spec).workers(4).run();
        assert_eq!(seq.trojans.len(), par.trojans.len());
        assert_eq!(seq.trojans[0].witness_fields, par.trojans[0].witness_fields);
        assert_eq!(par.server_workers.len(), 4);
    }
}
