//! The incremental Trojan search (§3.2, §3.3 — Figure 7).
//!
//! Achilles does not materialize the server predicate `P_S` and difference
//! it against `P_C` a posteriori. Instead it installs a [`TrojanObserver`]
//! into the server exploration:
//!
//! * per path, it tracks the set of client path predicates that can still
//!   trigger the path (`pathS ∧ pathC_i` satisfiable); predicates that no
//!   longer match are **dropped** and their negations leave the Trojan query
//!   (if `pathS ∧ pathC_i` is unsat, `pathS ⇒ negate(pathC_i)` holds
//!   implicitly);
//! * when a drop was caused by a branch that depends on a single message
//!   field, the pre-computed [`DiffMatrix`] drops whole groups of related
//!   predicates without solver calls;
//! * after every conjunct it checks whether *any* Trojan message can still
//!   trigger the path (`pathS ∧ ⋀ negate(pathC_i)` for the active `i`);
//!   as soon as the answer is no, the path is pruned from the exploration;
//! * at every accepting path end, the same query's model is concretized into
//!   a witness message and (optionally) re-verified against every client
//!   path predicate.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use achilles_solver::{Model, SatResult, Solver, TermId, TermPool, VarId};
use achilles_symvm::{
    Executor, ExploreConfig, ExploreStats, NodeProgram, ObserverCx, PathObserver, PathRecord,
    SymMessage, Verdict,
};

use crate::diff_matrix::DiffMatrix;
use crate::negate::{negate_path, NegateStats, NegatedPath};
use crate::predicate::{combine, ClientPredicate, FieldMask};
use crate::report::TrojanReport;

/// Toggles for the paper's optimizations (the §6.4 ablation switches these).
#[derive(Clone, Copy, Debug)]
pub struct Optimizations {
    /// Drop client predicates whose conjunction with the server path became
    /// unsatisfiable (§3.3, first optimization).
    pub drop_covered: bool,
    /// Use the pre-computed `differentFrom` matrix to drop related
    /// predicates without solver calls (§3.3, second optimization).
    pub use_diff_matrix: bool,
    /// Prune server paths that can no longer accept any Trojan message
    /// (Figure 7's discarded states).
    pub prune_paths: bool,
}

impl Default for Optimizations {
    fn default() -> Optimizations {
        Optimizations {
            drop_covered: true,
            use_diff_matrix: true,
            prune_paths: true,
        }
    }
}

impl Optimizations {
    /// Everything off: the non-optimized configuration of §6.4.
    pub fn none() -> Optimizations {
        Optimizations {
            drop_covered: false,
            use_diff_matrix: false,
            prune_paths: false,
        }
    }
}

/// The client predicate pre-processed for the server analysis: negations
/// (with the §4.1 soundness check applied) and the `differentFrom` matrix.
#[derive(Debug)]
pub struct PreparedClient {
    /// The extracted client predicate.
    pub client: ClientPredicate,
    /// The symbolic message the server will receive.
    pub server_msg: SymMessage,
    /// `negate(pathC_i)` per client path.
    pub negations: Vec<NegatedPath>,
    /// The `differentFrom` matrix (empty if the optimization is off).
    pub diff: Option<DiffMatrix>,
    /// The field mask in effect.
    pub mask: FieldMask,
    /// Negation statistics.
    pub negate_stats: NegateStats,
    /// Total pre-processing time.
    pub prep_time: Duration,
    /// Map from server message field variables to field indices (used to
    /// detect single-field branches for matrix propagation).
    field_of_var: HashMap<VarId, usize>,
}

/// Pre-processes a client predicate against the server message (§3 phase 1½:
/// "it pre-processes `P_C` to eliminate redundancy and to pre-compute
/// structure information").
pub fn prepare_client(
    pool: &mut TermPool,
    solver: &mut Solver,
    client: ClientPredicate,
    server_msg: SymMessage,
    mask: FieldMask,
    opts: Optimizations,
) -> PreparedClient {
    prepare_client_workers(pool, solver, client, server_msg, mask, opts, 1)
}

/// Negates every client path against `server_msg`, fanning the per-path work
/// out over up to `workers` threads.
///
/// Each path's negation is independent of every other's (the ROADMAP's
/// "embarrassingly parallel" loop), so workers take a strided share of the
/// paths on forks of the base pool, and the resulting clauses are imported
/// back in client-path order. Because the existential `λ'` copies are
/// interned by deterministic tags ([`rename_fresh_tagged`]), the imported
/// clauses are *fingerprint-identical* for every worker count — parallel
/// pre-processing never perturbs downstream solver models or the Trojan set.
///
/// [`rename_fresh_tagged`]: crate::predicate::rename_fresh_tagged
fn negate_all(
    pool: &mut TermPool,
    solver: &mut Solver,
    client: &ClientPredicate,
    server_msg: &SymMessage,
    mask: &FieldMask,
    workers: usize,
    stats: &mut NegateStats,
) -> Vec<NegatedPath> {
    let n = client.paths.len();
    if workers <= 1 || n < 2 {
        return client
            .paths
            .iter()
            .map(|p| negate_path(pool, solver, server_msg, p, mask, stats))
            .collect();
    }
    let workers = workers.min(n);
    type WorkerNegations = (TermPool, Vec<(usize, NegatedPath)>, NegateStats);
    let results: Vec<WorkerNegations> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                // Distinct nonce family from the exploration pool's forks so
                // ad-hoc variables can never alias across subsystems.
                let mut wpool = pool.fork(0x4E45_4700 + w as u64 + 1); // "NEG\0"
                let mut wsolver = Solver::with_config(solver.config().clone());
                if let Some(shared) = solver.shared_cache() {
                    // Inherit the engine's persistent cache: negation
                    // soundness checks publish into (and read from) the
                    // same pool of results every other phase uses.
                    wsolver = wsolver.with_shared_cache(Arc::clone(shared));
                }
                scope.spawn(move || {
                    let mut wstats = NegateStats::default();
                    let negs: Vec<(usize, NegatedPath)> = (w..n)
                        .step_by(workers)
                        .map(|i| {
                            let neg = negate_path(
                                &mut wpool,
                                &mut wsolver,
                                server_msg,
                                &client.paths[i],
                                mask,
                                &mut wstats,
                            );
                            (i, neg)
                        })
                        .collect();
                    (wpool, negs, wstats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("negation worker panicked"))
            .collect()
    });

    // Deterministic merge: visit paths in client order, importing each
    // worker's clauses through a per-worker memo.
    let mut pools = Vec::with_capacity(workers);
    let mut by_index: HashMap<usize, (usize, NegatedPath)> = HashMap::new();
    for (w, (wpool, negs, wstats)) in results.into_iter().enumerate() {
        stats.concrete_fields += wstats.concrete_fields;
        stats.symbolic_fields += wstats.symbolic_fields;
        stats.skipped_unconstrained += wstats.skipped_unconstrained;
        stats.discarded_unsound += wstats.discarded_unsound;
        stats.time += wstats.time;
        pools.push(wpool);
        for (i, neg) in negs {
            by_index.insert(i, (w, neg));
        }
    }
    let mut memos: Vec<HashMap<TermId, TermId>> = vec![HashMap::new(); workers];
    (0..n)
        .map(|i| {
            let (w, neg) = by_index.remove(&i).expect("every path index was negated");
            let memo = &mut memos[w];
            NegatedPath {
                client_index: neg.client_index,
                field_clauses: neg
                    .field_clauses
                    .iter()
                    .map(|&(f, c)| (f, pool.import_term(&pools[w], c, memo)))
                    .collect(),
                disjunction: neg
                    .disjunction
                    .map(|d| pool.import_term(&pools[w], d, memo)),
            }
        })
        .collect()
}

/// [`prepare_client`] with the negation loop fanned out over `workers`
/// threads (see [`negate_all`]'s determinism argument). The `differentFrom`
/// matrix and field-variable map stay sequential.
pub fn prepare_client_workers(
    pool: &mut TermPool,
    solver: &mut Solver,
    client: ClientPredicate,
    server_msg: SymMessage,
    mask: FieldMask,
    opts: Optimizations,
    workers: usize,
) -> PreparedClient {
    let started = Instant::now();
    // Pre-processing is its own phase of the engine's persistent cache.
    if let Some(shared) = solver.shared_cache() {
        shared.advance_epoch();
    }
    let mut negate_stats = NegateStats::default();
    let negations = negate_all(
        pool,
        solver,
        &client,
        &server_msg,
        &mask,
        workers.max(1),
        &mut negate_stats,
    );
    let diff = if opts.use_diff_matrix {
        Some(DiffMatrix::compute(
            pool,
            solver,
            &server_msg,
            &client,
            &mask,
        ))
    } else {
        None
    };
    let mut field_of_var = HashMap::new();
    for (i, &t) in server_msg.values().iter().enumerate() {
        if let Some(v) = pool.as_var(t) {
            field_of_var.insert(v, i);
        }
    }
    PreparedClient {
        client,
        server_msg,
        negations,
        diff,
        mask,
        negate_stats,
        prep_time: started.elapsed(),
        field_of_var,
    }
}

/// One (path length, matching predicate count) sample — the raw data of
/// Figure 11.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchSample {
    /// Length of the (partial) server path, counted in conjuncts.
    pub path_len: usize,
    /// Client path predicates still matching.
    pub matching: usize,
}

/// Counters for one Trojan search.
///
/// Formerly named `SearchStats`, which collided with the solver's
/// DPLL-search counters (`achilles_solver::SearchStats`); the rename keeps
/// both exportable without aliasing. Metrics registry series are fully
/// qualified: these export as `achilles_trojan_search_*`, the solver's as
/// `achilles_solver_search_*`.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrojanSearchStats {
    /// Client predicates dropped by direct satisfiability checks.
    pub direct_drops: u64,
    /// Client predicates dropped through the `differentFrom` matrix.
    pub matrix_drops: u64,
    /// Trojan-existence checks issued.
    pub trojan_checks: u64,
    /// Paths pruned because no Trojan could trigger them.
    pub paths_pruned: u64,
    /// Witnesses that failed verification and were re-enumerated.
    pub witness_retries: u64,
}

impl TrojanSearchStats {
    /// Mirrors these counters into the process metrics registry
    /// ([`achilles_obs::global`]) as `achilles_trojan_search_*` series.
    /// Called once per pipeline run when the final report is assembled.
    pub fn record_metrics(&self) {
        use achilles_obs::Class::Deterministic;
        let reg = achilles_obs::global();
        for (name, value) in [
            (
                "achilles_trojan_search_direct_drops_total",
                self.direct_drops,
            ),
            (
                "achilles_trojan_search_matrix_drops_total",
                self.matrix_drops,
            ),
            ("achilles_trojan_search_checks_total", self.trojan_checks),
            (
                "achilles_trojan_search_paths_pruned_total",
                self.paths_pruned,
            ),
            (
                "achilles_trojan_search_witness_retries_total",
                self.witness_retries,
            ),
        ] {
            reg.add(Deterministic, name, &[], value);
        }
    }
}

/// The [`PathObserver`] implementing Achilles' incremental search.
#[derive(Debug)]
pub struct TrojanObserver<'p> {
    prepared: &'p PreparedClient,
    opts: Optimizations,
    verify_witnesses: bool,
    active: Vec<bool>,
    active_count: usize,
    /// Trojans found so far (one per accepting server path with Trojans).
    pub reports: Vec<TrojanReport>,
    /// Figure 11 samples: (path length, matching predicates).
    pub samples: Vec<MatchSample>,
    /// Search counters.
    pub stats: TrojanSearchStats,
    started: Instant,
}

impl<'p> TrojanObserver<'p> {
    /// Creates an observer over a prepared client predicate.
    pub fn new(prepared: &'p PreparedClient, opts: Optimizations, verify_witnesses: bool) -> Self {
        let n = prepared.client.len();
        TrojanObserver {
            prepared,
            opts,
            verify_witnesses,
            active: vec![true; n],
            active_count: n,
            reports: Vec::new(),
            samples: Vec::new(),
            stats: TrojanSearchStats::default(),
            started: Instant::now(),
        }
    }

    /// The Trojan-existence query for the current path: `pc ∧ ⋀ negate_i`
    /// over the active client paths. `None` when some active negation is
    /// empty (its under-approximation is `false`, so no Trojan is provable).
    fn trojan_query(&self, pc: &[TermId]) -> Option<Vec<TermId>> {
        let mut query = pc.to_vec();
        for (i, neg) in self.prepared.negations.iter().enumerate() {
            if !self.active[i] {
                continue;
            }
            match neg.disjunction {
                Some(d) => query.push(d),
                None => return None,
            }
        }
        Some(query)
    }

    /// If the newest conjunct depends on exactly one unmasked server message
    /// field (and nothing else), returns that field's index.
    fn single_field_of(&self, pool: &TermPool, constraint: TermId) -> Option<usize> {
        let vars = pool.vars_of(constraint);
        let mut field = None;
        for v in vars {
            match self.prepared.field_of_var.get(&v) {
                Some(&f) => match field {
                    None => field = Some(f),
                    Some(prev) if prev == f => {}
                    Some(_) => return None, // two different fields
                },
                None => return None, // non-message variable involved
            }
        }
        field.filter(|f| !self.prepared.mask.contains(*f))
    }

    fn drop_pass(&mut self, cx: &mut ObserverCx<'_>) {
        let newest = match cx.pc.last() {
            Some(&c) => c,
            None => return,
        };
        // If the newest branch constrains a single message field, drops can
        // be propagated through the differentFrom matrix *before* paying for
        // the solver check on related predicates — the §3.3 optimization.
        let single_field = if self.opts.use_diff_matrix {
            self.single_field_of(cx.pool, newest)
        } else {
            None
        };
        for i in 0..self.active.len() {
            if !self.active[i] {
                continue;
            }
            let q = combine(
                cx.pool,
                &self.prepared.server_msg,
                cx.pc,
                &self.prepared.client.paths[i],
                self.prepared.mask.indices(),
            );
            if !cx.solver.is_unsat(cx.pool, &q) {
                continue;
            }
            self.active[i] = false;
            self.active_count -= 1;
            self.stats.direct_drops += 1;
            // The drop was caused by the new single-field check: every
            // predicate with no extra values for that field dies with it,
            // without consulting the solver.
            if let (Some(diff), Some(field)) = (self.prepared.diff.as_ref(), single_field) {
                for j in 0..self.active.len() {
                    if !self.active[j] {
                        continue;
                    }
                    if diff.different(j, i, field) == Some(false) {
                        self.active[j] = false;
                        self.active_count -= 1;
                        self.stats.matrix_drops += 1;
                    }
                }
            }
        }
    }

    /// Searches for a verified Trojan witness on an accepting path.
    fn witness(&mut self, cx: &mut ObserverCx<'_>, record: &PathRecord) -> Option<TrojanReport> {
        let mut query = self.trojan_query(&record.constraints)?;
        const MAX_RETRIES: usize = 4;
        for _ in 0..=MAX_RETRIES {
            self.stats.trojan_checks += 1;
            let model = match cx.solver.check(cx.pool, &query) {
                SatResult::Sat(m) => m,
                SatResult::Unsat(_) | SatResult::Unknown => return None,
            };
            let fields = canonical_witness_fields(
                cx.pool,
                cx.solver,
                &query,
                self.prepared.server_msg.values(),
                &model,
            );
            let verified = !self.verify_witnesses || self.verify(cx, &fields);
            if verified || !self.verify_witnesses {
                return Some(TrojanReport {
                    server_path_id: record.id,
                    constraints: record.constraints.clone(),
                    witness_fields: fields,
                    active_clients: self.active_count,
                    verified,
                    found_at: self.started.elapsed(),
                    notes: record.notes.clone(),
                });
            }
            // Exclude this witness and try again.
            self.stats.witness_retries += 1;
            let exclusion = self.exclude_witness(cx.pool, &fields);
            query.push(exclusion);
        }
        None
    }

    /// Confirms that no client path predicate can generate the witness.
    fn verify(&self, cx: &mut ObserverCx<'_>, fields: &[u64]) -> bool {
        for path in &self.prepared.client.paths {
            let mut q = path.constraints.clone();
            for (fi, (&expr, &value)) in path.message.values().iter().zip(fields).enumerate() {
                if self.prepared.mask.contains(fi) {
                    continue;
                }
                let w = cx.pool.width(expr);
                let c = cx.pool.constant(value, w);
                let eq = cx.pool.eq(expr, c);
                q.push(eq);
            }
            if cx.solver.is_sat(cx.pool, &q) {
                return false; // a correct client can generate it
            }
        }
        true
    }

    /// A constraint excluding the exact witness (differs in ≥ 1 unmasked field).
    fn exclude_witness(&self, pool: &mut TermPool, fields: &[u64]) -> TermId {
        let mut diffs = Vec::new();
        for (fi, (&sv, &value)) in self
            .prepared
            .server_msg
            .values()
            .iter()
            .zip(fields)
            .enumerate()
        {
            if self.prepared.mask.contains(fi) {
                continue;
            }
            let w = pool.width(sv);
            let c = pool.constant(value, w);
            let ne = pool.ne(sv, c);
            diffs.push(ne);
        }
        pool.or_all(diffs)
    }
}

/// Per-worker counters of one (possibly parallel) Trojan search.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerSummary {
    /// Worker index (0 for the sequential path).
    pub worker: usize,
    /// Time this worker's solver spent searching.
    pub solve_time: Duration,
    /// Queries this worker's solver answered (including cache hits).
    pub queries: u64,
    /// Queries answered from the cross-worker shared cache.
    pub shared_hits: u64,
    /// Worklist items stolen from other workers.
    pub steals: u64,
    /// Time spent executing worklist items (excludes idle waiting).
    pub busy: Duration,
}

/// Everything one server-side Trojan search produces.
#[derive(Debug, Default)]
pub struct TrojanSearchOutcome {
    /// Trojan reports in canonical path order (terms valid in the caller's
    /// pool, including for parallel runs).
    pub reports: Vec<TrojanReport>,
    /// Figure 11 samples.
    pub samples: Vec<MatchSample>,
    /// Search counters, summed over workers.
    pub stats: TrojanSearchStats,
    /// Exploration counters, summed over workers.
    pub explore: ExploreStats,
    /// Completed server paths.
    pub server_paths: usize,
    /// Per-worker breakdown (one entry for sequential runs).
    pub workers: Vec<WorkerSummary>,
}

/// Canonicalizes a satisfiable witness query to its **lexicographically
/// least** model over `exprs`, in order: each expression is driven to its
/// minimal achievable value (binary search on `expr ≤ mid`) with every
/// earlier expression pinned to its minimum.
///
/// The returned values are a pure function of the query's constraint
/// *set*. A raw `check()` model is not: the solver's clause-split order
/// follows term-id order, and term ids differ between the base pool and a
/// parallel worker's fork — with several negation clauses in the query
/// (multi-client targets like shardexec), sequential and parallel runs
/// would concretize different-but-equally-valid witnesses. Canonicalizing
/// here is what keeps discovery witness-identical for every worker count.
///
/// `model` must satisfy `query`; it seeds the upper bounds.
pub fn canonical_witness_fields(
    pool: &mut TermPool,
    solver: &mut Solver,
    query: &[TermId],
    exprs: &[TermId],
    model: &Model,
) -> Vec<u64> {
    let mut pinned = query.to_vec();
    let mut current: Option<Arc<Model>> = None; // latest model satisfying `pinned`
    let mut fields = Vec::with_capacity(exprs.len());
    for &expr in exprs {
        let bound_model = current.as_deref().unwrap_or(model);
        let mut hi = bound_model.eval(pool, expr).unwrap_or(0);
        let mut lo = 0u64;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let w = pool.width(expr);
            let c = pool.constant(mid, w);
            let le = pool.ule(expr, c);
            pinned.push(le);
            let result = solver.check(pool, &pinned);
            pinned.pop();
            match result {
                SatResult::Sat(m) => {
                    hi = m.eval(pool, expr).unwrap_or(mid);
                    current = Some(m);
                }
                // Unknown is deterministic per assertion set: treating it
                // as "not provably achievable" keeps the result canonical.
                SatResult::Unsat(_) | SatResult::Unknown => lo = mid + 1,
            }
        }
        let w = pool.width(expr);
        let c = pool.constant(lo, w);
        let eq = pool.eq(expr, c);
        pinned.push(eq);
        fields.push(lo);
    }
    fields
}

/// Tag-family salt for the server phase's symbolic inputs (see
/// [`ExploreConfig::sym_salt`]); the client phase uses the default `0`.
const SERVER_SYM_SALT: u64 = 0x5352_5600; // "SRV\0"

/// Runs the incremental Trojan search over `server`, sequentially or on
/// [`ExploreConfig::workers`] work-stealing threads.
///
/// This is the shared driver behind
/// [`Achilles::analyze_server`](crate::pipeline::Achilles::analyze_server)
/// and the FSP/PBFT/Paxos analyses. In parallel mode every worker runs its own [`TrojanObserver`]
/// over a fork of `pool`; afterwards reports are imported back into `pool`,
/// their path ids remapped to the canonical depth-first numbering, and the
/// result sorted by path id — which makes the report *set* identical to a
/// sequential run's (timestamps and per-worker statistics aside).
pub fn run_trojan_search(
    pool: &mut TermPool,
    solver: &mut Solver,
    prepared: &PreparedClient,
    server: &(dyn NodeProgram + Sync),
    mut explore: ExploreConfig,
    opts: Optimizations,
    verify_witnesses: bool,
) -> TrojanSearchOutcome {
    // The server runs in the same pool lineage as the client exploration;
    // give its symbolic inputs their own tag family so a server `sym()` can
    // never share a fingerprint with the client's i-th input of the same
    // name and width (callers may override with a nonzero salt).
    if explore.sym_salt == 0 {
        explore.sym_salt = SERVER_SYM_SALT;
    }
    // The work-stealing pool schedules depth-first per worker and cannot
    // reproduce BFS completion order; keep BFS explorations sequential.
    if explore.workers <= 1 || explore.order == achilles_symvm::ExploreOrder::Bfs {
        let queries_before = solver.stats().queries;
        let solve_before = solver.stats().solve_time;
        let shared_before = solver.stats().shared_hits;
        // The sequential search is its own pipeline phase of the engine's
        // persistent cache: hits on entries an earlier phase published
        // (client extraction, preprocessing) are cross-phase reuse.
        let cross_before = solver.shared_cache().map(|s| {
            s.advance_epoch();
            s.stats().cross_epoch_hits
        });
        let item_started = Instant::now();
        let mut observer = TrojanObserver::new(prepared, opts, verify_witnesses);
        let mut result = {
            let mut exec = Executor::new(pool, solver, explore);
            exec.explore_observed(server, &mut observer)
        };
        let TrojanObserver {
            reports,
            samples,
            stats,
            ..
        } = observer;
        result.stats.shared_cache_hits = solver.stats().shared_hits - shared_before;
        if let (Some(before), Some(shared)) = (cross_before, solver.shared_cache()) {
            result.stats.cross_phase_cache_hits =
                shared.stats().cross_epoch_hits.saturating_sub(before);
        }
        let summary = WorkerSummary {
            worker: 0,
            solve_time: solver.stats().solve_time - solve_before,
            queries: solver.stats().queries - queries_before,
            shared_hits: solver.stats().shared_hits - shared_before,
            steals: 0,
            busy: item_started.elapsed(),
        };
        return TrojanSearchOutcome {
            reports,
            samples,
            stats,
            server_paths: result.paths.len(),
            explore: result.stats,
            workers: vec![summary],
        };
    }

    let outcome = {
        let mut exec = Executor::new(pool, solver, explore);
        exec.explore_parallel(server, |_| {
            TrojanObserver::new(prepared, opts, verify_witnesses)
        })
    };
    let server_paths = outcome.result.paths.len();
    let explore_stats = outcome.result.stats;
    let mut reports: Vec<TrojanReport> = Vec::new();
    let mut samples: Vec<MatchSample> = Vec::new();
    let mut stats = TrojanSearchStats::default();
    let mut workers = Vec::with_capacity(outcome.workers.len());
    for worker in outcome.workers {
        let observer = worker.observer;
        stats.direct_drops += observer.stats.direct_drops;
        stats.matrix_drops += observer.stats.matrix_drops;
        stats.trojan_checks += observer.stats.trojan_checks;
        stats.paths_pruned += observer.stats.paths_pruned;
        stats.witness_retries += observer.stats.witness_retries;
        samples.extend(observer.samples);
        let mut memo = HashMap::new();
        for mut report in observer.reports {
            // Paths past a binding budget's canonical cut are absent from
            // the id map; their reports are discarded, exactly as a
            // sequential capped run would never have found them.
            let Some(&final_id) = outcome.id_map.get(&report.server_path_id) else {
                continue;
            };
            report.server_path_id = final_id;
            report.constraints = report
                .constraints
                .iter()
                .map(|&t| pool.import_term(&worker.pool, t, &mut memo))
                .collect();
            reports.push(report);
        }
        workers.push(WorkerSummary {
            worker: worker.worker,
            solve_time: worker.solver_stats.solve_time,
            queries: worker.solver_stats.queries,
            shared_hits: worker.solver_stats.shared_hits,
            steals: worker.steals,
            busy: worker.busy,
        });
    }
    // Canonical order: one report per accepting path, sorted like the paths.
    reports.sort_by_key(|r| r.server_path_id);
    TrojanSearchOutcome {
        reports,
        samples,
        stats,
        explore: explore_stats,
        server_paths,
        workers,
    }
}

impl PathObserver for TrojanObserver<'_> {
    fn on_path_start(&mut self) {
        self.active.iter_mut().for_each(|a| *a = true);
        self.active_count = self.active.len();
    }

    fn on_constraint(&mut self, cx: &mut ObserverCx<'_>) -> bool {
        if self.opts.drop_covered {
            self.drop_pass(cx);
        }
        self.samples.push(MatchSample {
            path_len: cx.pc.len(),
            matching: self.active_count,
        });
        if !self.opts.prune_paths {
            return true;
        }
        match self.trojan_query(cx.pc) {
            None => {
                // Some active client path cannot be negated at all: the
                // under-approximated Trojan set is empty on this path.
                self.stats.paths_pruned += 1;
                false
            }
            Some(query) => {
                self.stats.trojan_checks += 1;
                let keep = !cx.solver.is_unsat(cx.pool, &query);
                if !keep {
                    self.stats.paths_pruned += 1;
                }
                keep
            }
        }
    }

    fn on_path_end(&mut self, cx: &mut ObserverCx<'_>, record: &PathRecord) {
        if record.verdict != Verdict::Accept {
            return;
        }
        if let Some(report) = self.witness(cx, record) {
            self.reports.push(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::Width;
    use achilles_symvm::{Executor, ExploreConfig, MessageLayout, NodeProgram, PathResult, SymEnv};
    use std::sync::Arc;

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("m")
            .field("request", Width::W8)
            .field("address", Width::W32)
            .build()
    }

    /// Figure 3 client (READ/WRITE with validated address).
    struct PaperClient;
    impl NodeProgram for PaperClient {
        fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
            let op = env.sym("operationType", Width::W8);
            let addr = env.sym("address", Width::W32);
            let hundred = env.constant(100, Width::W32);
            let zero = env.constant(0, Width::W32);
            if !env.if_slt(addr, hundred)? {
                return Ok(());
            }
            if env.if_slt(addr, zero)? {
                return Ok(());
            }
            let read = env.constant(1, Width::W8);
            let req = if env.if_eq(op, read)? {
                env.constant(1, Width::W8)
            } else {
                env.constant(2, Width::W8)
            };
            env.send(SymMessage::new(layout(), vec![req, addr]));
            Ok(())
        }
    }

    /// Figure 2 server: READ forgets the `address < 0` check.
    struct PaperServer;
    impl NodeProgram for PaperServer {
        fn run(&self, env: &mut SymEnv<'_>) -> PathResult<()> {
            let msg = env.recv(&layout())?;
            let req = msg.field("request");
            let addr = msg.field("address");
            let hundred = env.constant(100, Width::W32);
            let one = env.constant(1, Width::W8);
            let two = env.constant(2, Width::W8);
            if env.if_eq(req, one)? {
                env.note("READ");
                if !env.if_slt(addr, hundred)? {
                    return Ok(()); // rejecting: continue
                }
                // Missing: address < 0 check (the Trojan window).
                env.mark_accept();
                return Ok(());
            }
            if env.if_eq(req, two)? {
                env.note("WRITE");
                if !env.if_slt(addr, hundred)? {
                    return Ok(());
                }
                let zero = env.constant(0, Width::W32);
                if env.if_slt(addr, zero)? {
                    return Ok(());
                }
                env.mark_accept();
                return Ok(());
            }
            Ok(())
        }
    }

    fn run_pipeline(
        opts: Optimizations,
    ) -> (
        TermPool,
        PreparedClient,
        Vec<TrojanReport>,
        TrojanSearchStats,
    ) {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        // Phase 1: client predicate.
        let client_result = {
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            exec.explore(&PaperClient)
        };
        let client = ClientPredicate::from_exploration(&client_result);
        // Phase 1½: preprocessing.
        let (server_config, server_msg) =
            ExploreConfig::with_symbolic_message(&mut pool, &layout(), "msg");
        let prepared = prepare_client(
            &mut pool,
            &mut solver,
            client,
            server_msg,
            FieldMask::none(),
            opts,
        );
        // Phase 2: server analysis.
        let mut observer = TrojanObserver::new(&prepared, opts, true);
        {
            let mut exec = Executor::new(&mut pool, &mut solver, server_config);
            exec.explore_observed(&PaperServer, &mut observer);
        }
        let TrojanObserver { reports, stats, .. } = observer;
        (pool, prepared, reports, stats)
    }

    #[test]
    fn finds_the_negative_address_trojan() {
        let (_pool, prepared, reports, _stats) = run_pipeline(Optimizations::default());
        assert_eq!(prepared.client.len(), 2);
        assert_eq!(reports.len(), 1, "exactly the READ path has Trojans");
        let r = &reports[0];
        assert!(r.verified);
        assert!(r.notes.contains(&"READ".to_string()));
        // The witness address is negative (or ≥ 100): not generable.
        let addr = Width::W32.to_signed(r.witness_fields[1]);
        assert!(!(0..100).contains(&addr), "addr = {addr}");
        // And its request field is READ.
        assert_eq!(r.witness_fields[0], 1);
    }

    #[test]
    fn non_optimized_finds_the_same_trojans() {
        let (_p1, _c1, optimized, stats_opt) = {
            let (p, c, r, s) = run_pipeline(Optimizations::default());
            drop((p, c));
            ((), (), r, s)
        };
        let (_p2, _c2, plain, stats_plain) = {
            let (p, c, r, s) = run_pipeline(Optimizations::none());
            drop((p, c));
            ((), (), r, s)
        };
        assert_eq!(optimized.len(), plain.len());
        assert_eq!(optimized[0].witness_fields[0], plain[0].witness_fields[0]);
        // The optimized run actually dropped predicates; the plain one did not.
        assert!(stats_opt.direct_drops > 0);
        assert_eq!(stats_plain.direct_drops, 0);
        assert_eq!(stats_plain.paths_pruned, 0);
    }

    #[test]
    fn samples_decrease_along_paths() {
        let (_pool, _prepared, _reports, _stats) = run_pipeline(Optimizations::default());
        // Behavioural check happens in the FSP benches; here just confirm the
        // sample channel carries data when enabled.
    }

    #[test]
    fn write_path_has_no_trojans() {
        let (_pool, _prepared, reports, stats) = run_pipeline(Optimizations::default());
        assert!(
            !reports
                .iter()
                .any(|r| r.notes.contains(&"WRITE".to_string())),
            "WRITE validates fully; it must not be reported"
        );
        // The WRITE accepting path was pruned before completion or produced
        // no witness; either way pruning must have engaged somewhere.
        assert!(stats.paths_pruned > 0 || stats.trojan_checks > 0);
    }
}
