//! Trojan message reports.

use std::time::Duration;

use achilles_solver::{TermId, TermPool};
use achilles_symvm::SymMessage;

/// One discovered Trojan message: a server path that accepts messages no
/// correct client can generate, with both the symbolic characterization and
/// a concrete injectable example (§3.2: "Achilles outputs a symbolic
/// expression and a concrete example of the Trojan message").
#[derive(Clone, Debug)]
pub struct TrojanReport {
    /// Id of the accepting server path.
    pub server_path_id: usize,
    /// The server path constraints.
    pub constraints: Vec<TermId>,
    /// Concrete per-field values of the witness message.
    pub witness_fields: Vec<u64>,
    /// Number of client path predicates still active on this path (Trojans
    /// bundled with valid messages have `> 0`, exclusive paths have `0`).
    pub active_clients: usize,
    /// Whether the witness survived verification against *every* client
    /// path predicate (guaranteed not generable by a correct client).
    pub verified: bool,
    /// Wall-clock offset from the start of the server analysis.
    pub found_at: Duration,
    /// Server program notes on the path (e.g. which action it performs).
    pub notes: Vec<String>,
}

impl TrojanReport {
    /// Renders a short human-readable summary.
    pub fn render(&self, pool: &TermPool, server_msg: &SymMessage) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Trojan on server path {} ({} client predicates still matching{})\n",
            self.server_path_id,
            self.active_clients,
            if self.verified {
                ", verified"
            } else {
                ", UNVERIFIED"
            },
        ));
        if !self.notes.is_empty() {
            out.push_str(&format!("  action: {}\n", self.notes.join("; ")));
        }
        out.push_str("  witness: ");
        let fields = server_msg.layout().fields();
        for (i, (f, v)) in fields.iter().zip(&self.witness_fields).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}={}", f.name, v));
        }
        out.push('\n');
        out.push_str("  path constraints:\n");
        for &c in &self.constraints {
            out.push_str(&format!("    {}\n", achilles_solver::render(pool, c)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::Width;
    use achilles_symvm::MessageLayout;

    #[test]
    fn render_mentions_fields_and_status() {
        let mut pool = TermPool::new();
        let layout = MessageLayout::builder("m")
            .field("cmd", Width::W8)
            .field("addr", Width::W32)
            .build();
        let msg = SymMessage::fresh(&mut pool, &layout, "msg");
        let report = TrojanReport {
            server_path_id: 3,
            constraints: vec![],
            witness_fields: vec![1, 0xfffffffb],
            active_clients: 2,
            verified: true,
            found_at: Duration::from_millis(5),
            notes: vec!["read".into()],
        };
        let s = report.render(&pool, &msg);
        assert!(s.contains("cmd=1"), "{s}");
        assert!(s.contains("addr=4294967291"), "{s}");
        assert!(s.contains("verified"), "{s}");
        assert!(s.contains("read"), "{s}");
    }
}
