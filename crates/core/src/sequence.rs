//! Multi-message (session) Trojan analysis.
//!
//! The paper analyzes one message per server activation and notes (§7) that
//! message *ordering* is future work ("Achilles could be enhanced by
//! techniques such as MODIST to also consider alternative orderings"). This
//! module implements the natural first step: servers that consume a fixed
//! **sequence** of messages in one session (handshake → command, prepare →
//! accept, upload → install).
//!
//! A session is Trojan when the server accepts it but at least one of its
//! messages is un-generable by a correct client *in that slot*:
//! `¬(gen₁(m₁) ∧ … ∧ genₖ(mₖ)) = ⋁ₛ ¬genₛ(mₛ)`. Each slot gets its own
//! client predicate and negations; the Trojan check becomes
//! `pathS ∧ ⋁ₛ (⋀_{i active in s} negate(pathC_{s,i}))`.

use std::collections::HashMap;

use achilles_solver::{SatResult, Solver, TermId, TermPool};
use achilles_symvm::{
    Executor, ExploreConfig, NodeProgram, ObserverCx, PathObserver, PathRecord, Verdict,
};

use crate::predicate::combine;
use crate::report::TrojanReport;
use crate::search::{canonical_witness_fields, Optimizations, PreparedClient};

/// Tag-family salt for the session server's symbolic inputs (see
/// [`ExploreConfig::sym_salt`]); distinct from both the client default (`0`)
/// and the single-message server salt.
const SESSION_SYM_SALT: u64 = 0x5345_5300; // "SES\0"

/// The per-slot state of a sequence search.
#[derive(Debug)]
struct SlotState {
    active: Vec<bool>,
    active_count: usize,
}

/// A [`PathObserver`] searching for session Trojans across several receive
/// slots, each with its own prepared client predicate.
#[derive(Debug)]
pub struct SequenceObserver<'p> {
    slots: Vec<&'p PreparedClient>,
    opts: Optimizations,
    states: Vec<SlotState>,
    /// Session Trojan reports (one per accepting server path with Trojans).
    pub reports: Vec<TrojanReport>,
    /// For each report, the slots whose message is un-generable.
    pub trojan_slots: Vec<Vec<usize>>,
    started: std::time::Instant,
}

impl<'p> SequenceObserver<'p> {
    /// Creates an observer over per-slot prepared clients (slot order must
    /// match the server's `recv` order).
    pub fn new(slots: Vec<&'p PreparedClient>, opts: Optimizations) -> SequenceObserver<'p> {
        let states = slots
            .iter()
            .map(|p| SlotState {
                active: vec![true; p.client.len()],
                active_count: p.client.len(),
            })
            .collect();
        SequenceObserver {
            slots,
            opts,
            states,
            reports: Vec::new(),
            trojan_slots: Vec::new(),
            started: std::time::Instant::now(),
        }
    }

    /// `⋁ₛ (⋀ active negations of slot s)`, or `None` if no slot can host a
    /// provable Trojan.
    fn trojan_disjunction(&self, pool: &mut TermPool) -> Option<TermId> {
        let mut per_slot = Vec::new();
        for (prepared, state) in self.slots.iter().zip(&self.states) {
            let mut conj = Vec::new();
            let mut feasible = true;
            for (i, neg) in prepared.negations.iter().enumerate() {
                if !state.active[i] {
                    continue;
                }
                match neg.disjunction {
                    Some(d) => conj.push(d),
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible {
                per_slot.push(pool.and_all(conj));
            }
        }
        if per_slot.is_empty() {
            return None;
        }
        Some(pool.or_all(per_slot))
    }

    fn drop_pass(&mut self, cx: &mut ObserverCx<'_>) {
        for (slot, prepared) in self.slots.iter().enumerate() {
            // A slot only constrains anything once its message was received.
            if slot >= cx.received.len() {
                continue;
            }
            let state = &mut self.states[slot];
            for i in 0..state.active.len() {
                if !state.active[i] {
                    continue;
                }
                let q = combine(
                    cx.pool,
                    &cx.received[slot],
                    cx.pc,
                    &prepared.client.paths[i],
                    prepared.mask.indices(),
                );
                if cx.solver.is_unsat(cx.pool, &q) {
                    state.active[i] = false;
                    state.active_count -= 1;
                }
            }
        }
    }

    /// Which slots still admit a Trojan message on `pc`.
    fn slots_with_trojans(
        &self,
        pool: &mut TermPool,
        solver: &mut Solver,
        pc: &[TermId],
    ) -> Vec<usize> {
        let mut out = Vec::new();
        for (slot, (prepared, state)) in self.slots.iter().zip(&self.states).enumerate() {
            let mut query = pc.to_vec();
            let mut feasible = true;
            for (i, neg) in prepared.negations.iter().enumerate() {
                if !state.active[i] {
                    continue;
                }
                match neg.disjunction {
                    Some(d) => query.push(d),
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible && !solver.is_unsat(pool, &query) {
                out.push(slot);
            }
        }
        out
    }
}

impl PathObserver for SequenceObserver<'_> {
    fn on_path_start(&mut self) {
        for state in &mut self.states {
            state.active.iter_mut().for_each(|a| *a = true);
            state.active_count = state.active.len();
        }
    }

    fn on_constraint(&mut self, cx: &mut ObserverCx<'_>) -> bool {
        if self.opts.drop_covered {
            self.drop_pass(cx);
        }
        if !self.opts.prune_paths {
            return true;
        }
        match self.trojan_disjunction(cx.pool) {
            None => false,
            Some(d) => {
                let mut query = cx.pc.to_vec();
                query.push(d);
                !cx.solver.is_unsat(cx.pool, &query)
            }
        }
    }

    fn on_path_end(&mut self, cx: &mut ObserverCx<'_>, record: &PathRecord) {
        if record.verdict != Verdict::Accept {
            return;
        }
        let slots = self.slots_with_trojans(cx.pool, cx.solver, &record.constraints);
        if slots.is_empty() {
            return;
        }
        // Witness: a model of the path with the first Trojan slot's
        // negations asserted.
        let slot = slots[0];
        let prepared = self.slots[slot];
        let state = &self.states[slot];
        let mut query = record.constraints.clone();
        for (i, neg) in prepared.negations.iter().enumerate() {
            if state.active[i] {
                if let Some(d) = neg.disjunction {
                    query.push(d);
                }
            }
        }
        if let SatResult::Sat(model) = cx.solver.check(cx.pool, &query) {
            // Concretize the whole session (all received messages) to the
            // canonical least witness — worker-count invariant even when
            // several negation clauses leave the model underdetermined.
            let exprs: Vec<_> = record
                .received
                .iter()
                .flat_map(|msg| msg.values().iter().copied())
                .collect();
            let fields = canonical_witness_fields(cx.pool, cx.solver, &query, &exprs, &model);
            self.reports.push(TrojanReport {
                server_path_id: record.id,
                constraints: record.constraints.clone(),
                witness_fields: fields,
                active_clients: state.active_count,
                verified: false, // sequence witnesses are not re-verified yet
                found_at: self.started.elapsed(),
                notes: record.notes.clone(),
            });
            self.trojan_slots.push(slots);
        }
    }
}

/// Runs a sequence analysis: the server receives one message per entry of
/// `slots`, each slot checked against its own prepared client predicate.
///
/// With `workers > 1` the session exploration fans out over the same
/// work-stealing pool as [`run_trojan_search`](crate::search::run_trojan_search):
/// every worker runs its own [`SequenceObserver`] over a fork of `pool`,
/// and afterwards reports are imported back, their path ids remapped to the
/// canonical depth-first numbering, and the result sorted by path id — so
/// the session-Trojan set is identical for every worker count.
///
/// Returns `(reports, trojan slots per report, completed server paths)`.
pub fn analyze_sequence(
    pool: &mut TermPool,
    solver: &mut Solver,
    server: &(dyn NodeProgram + Sync),
    slots: Vec<&PreparedClient>,
    opts: Optimizations,
    workers: usize,
) -> (Vec<TrojanReport>, Vec<Vec<usize>>, usize) {
    let explore = ExploreConfig {
        workers: workers.max(1),
        ..ExploreConfig::default()
    };
    analyze_sequence_with(pool, solver, server, slots, opts, explore)
}

/// [`analyze_sequence`] with a caller-supplied exploration configuration —
/// budgets (`max_paths`/`max_runs`), depth, and worker count all honored
/// (capped runs truncate canonically, so the session-Trojan set stays
/// bit-identical for every worker count even under a binding budget). The
/// receive script is replaced with the slot messages and a zero `sym_salt`
/// gets the session salt; BFS-ordered configurations run sequentially,
/// like [`run_trojan_search`](crate::search::run_trojan_search).
pub fn analyze_sequence_with(
    pool: &mut TermPool,
    solver: &mut Solver,
    server: &(dyn NodeProgram + Sync),
    slots: Vec<&PreparedClient>,
    opts: Optimizations,
    mut explore: ExploreConfig,
) -> (Vec<TrojanReport>, Vec<Vec<usize>>, usize) {
    explore.recv_script = slots.iter().map(|p| p.server_msg.clone()).collect();
    explore.workers = explore.workers.max(1);
    if explore.sym_salt == 0 {
        explore.sym_salt = SESSION_SYM_SALT;
    }
    if explore.workers <= 1 || explore.order == achilles_symvm::ExploreOrder::Bfs {
        // A new phase of the engine's persistent cache (the parallel
        // branch advances inside the pool).
        if let Some(shared) = solver.shared_cache() {
            shared.advance_epoch();
        }
        let mut observer = SequenceObserver::new(slots, opts);
        let result = {
            let mut exec = Executor::new(pool, solver, explore);
            exec.explore_observed(server, &mut observer)
        };
        let SequenceObserver {
            reports,
            trojan_slots,
            ..
        } = observer;
        return (reports, trojan_slots, result.paths.len());
    }

    let outcome = {
        let mut exec = Executor::new(pool, solver, explore);
        exec.explore_parallel(server, |_| SequenceObserver::new(slots.clone(), opts))
    };
    let server_paths = outcome.result.paths.len();
    let mut merged: Vec<(TrojanReport, Vec<usize>)> = Vec::new();
    for worker in outcome.workers {
        let observer = worker.observer;
        let mut memo = HashMap::new();
        for (mut report, tslots) in observer.reports.into_iter().zip(observer.trojan_slots) {
            // Reports on paths past a binding budget's canonical cut are
            // discarded (their ids are absent from the map), matching the
            // sequential capped run.
            let Some(&final_id) = outcome.id_map.get(&report.server_path_id) else {
                continue;
            };
            report.server_path_id = final_id;
            report.constraints = report
                .constraints
                .iter()
                .map(|&t| pool.import_term(&worker.pool, t, &mut memo))
                .collect();
            merged.push((report, tslots));
        }
    }
    // Canonical order: one report per accepting path, sorted like the paths.
    merged.sort_by_key(|(r, _)| r.server_path_id);
    let (reports, trojan_slots) = merged.into_iter().unzip();
    (reports, trojan_slots, server_paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{ClientPredicate, FieldMask};
    use crate::search::prepare_client;
    use achilles_solver::Width;
    use achilles_symvm::{MessageLayout, PathResult, SymEnv, SymMessage};
    use std::sync::Arc;

    fn hs_layout() -> Arc<MessageLayout> {
        MessageLayout::builder("hs")
            .field("token", Width::W16)
            .build()
    }

    fn cmd_layout() -> Arc<MessageLayout> {
        MessageLayout::builder("cmd")
            .field("op", Width::W8)
            .field("arg", Width::W16)
            .build()
    }

    /// Slot-1 client: handshake tokens are validated to < 100.
    fn handshake_client(env: &mut SymEnv<'_>) -> PathResult<()> {
        let token = env.sym("token", Width::W16);
        let cap = env.constant(100, Width::W16);
        if !env.if_ult(token, cap)? {
            return Ok(());
        }
        env.send(SymMessage::new(hs_layout(), vec![token]));
        Ok(())
    }

    /// Slot-2 client: ops are 1 or 2, args validated to < 50.
    fn command_client(env: &mut SymEnv<'_>) -> PathResult<()> {
        let which = env.sym("which", Width::BOOL);
        let arg = env.sym("arg", Width::W16);
        let cap = env.constant(50, Width::W16);
        if !env.if_ult(arg, cap)? {
            return Ok(());
        }
        let op = if env.branch(which)? {
            env.constant(1, Width::W8)
        } else {
            env.constant(2, Width::W8)
        };
        env.send(SymMessage::new(cmd_layout(), vec![op, arg]));
        Ok(())
    }

    /// Session server: accepts token < 200 (bug: 2× the client range), then
    /// any op in {1,2} with arg < 50 (correct).
    fn session_server(env: &mut SymEnv<'_>) -> PathResult<()> {
        let hs = env.recv(&hs_layout())?;
        let tcap = env.constant(200, Width::W16);
        if !env.if_ult(hs.field("token"), tcap)? {
            return Ok(());
        }
        let cmd = env.recv(&cmd_layout())?;
        let one = env.constant(1, Width::W8);
        let two = env.constant(2, Width::W8);
        let is1 = env.if_eq(cmd.field("op"), one)?;
        if !is1 && !env.if_eq(cmd.field("op"), two)? {
            return Ok(());
        }
        let acap = env.constant(50, Width::W16);
        if !env.if_ult(cmd.field("arg"), acap)? {
            return Ok(());
        }
        env.mark_accept();
        Ok(())
    }

    fn prepare_slots() -> (TermPool, Solver, PreparedClient, PreparedClient) {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let hs_pred = {
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            ClientPredicate::from_exploration(&exec.explore(&handshake_client))
        };
        let cmd_pred = {
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            ClientPredicate::from_exploration(&exec.explore(&command_client))
        };
        let hs_msg = SymMessage::fresh(&mut pool, &hs_layout(), "hs");
        let cmd_msg = SymMessage::fresh(&mut pool, &cmd_layout(), "cmd");
        let hs_prep = prepare_client(
            &mut pool,
            &mut solver,
            hs_pred,
            hs_msg,
            FieldMask::none(),
            Optimizations::default(),
        );
        let cmd_prep = prepare_client(
            &mut pool,
            &mut solver,
            cmd_pred,
            cmd_msg,
            FieldMask::none(),
            Optimizations::default(),
        );
        (pool, solver, hs_prep, cmd_prep)
    }

    #[test]
    fn finds_the_handshake_session_trojan() {
        let (mut pool, mut solver, hs_prep, cmd_prep) = prepare_slots();
        let (reports, slots, _paths) = analyze_sequence(
            &mut pool,
            &mut solver,
            &session_server,
            vec![&hs_prep, &cmd_prep],
            Optimizations::default(),
            1,
        );
        // Both accepting paths (op 1 and op 2) host the handshake Trojan.
        assert_eq!(reports.len(), 2);
        for (r, s) in reports.iter().zip(&slots) {
            assert_eq!(s, &vec![0], "only the handshake slot is Trojan");
            // The witness token is in the server-only window [100, 200).
            let token = r.witness_fields[0];
            assert!((100..200).contains(&token), "token {token}");
        }
    }

    #[test]
    fn patched_session_server_is_clean() {
        fn patched(env: &mut SymEnv<'_>) -> PathResult<()> {
            let hs = env.recv(&hs_layout())?;
            let tcap = env.constant(100, Width::W16); // fixed bound
            if !env.if_ult(hs.field("token"), tcap)? {
                return Ok(());
            }
            let cmd = env.recv(&cmd_layout())?;
            let one = env.constant(1, Width::W8);
            let two = env.constant(2, Width::W8);
            let is1 = env.if_eq(cmd.field("op"), one)?;
            if !is1 && !env.if_eq(cmd.field("op"), two)? {
                return Ok(());
            }
            let acap = env.constant(50, Width::W16);
            if !env.if_ult(cmd.field("arg"), acap)? {
                return Ok(());
            }
            env.mark_accept();
            Ok(())
        }
        let (mut pool, mut solver, hs_prep, cmd_prep) = prepare_slots();
        let (reports, _slots, paths) = analyze_sequence(
            &mut pool,
            &mut solver,
            &patched,
            vec![&hs_prep, &cmd_prep],
            Optimizations::default(),
            1,
        );
        assert_eq!(reports.len(), 0, "both slots accept exactly C");
        assert!(paths > 0 || reports.is_empty());
    }

    #[test]
    fn second_slot_bug_is_attributed_to_the_right_slot() {
        fn arg_bug_server(env: &mut SymEnv<'_>) -> PathResult<()> {
            let hs = env.recv(&hs_layout())?;
            let tcap = env.constant(100, Width::W16);
            if !env.if_ult(hs.field("token"), tcap)? {
                return Ok(());
            }
            let cmd = env.recv(&cmd_layout())?;
            let one = env.constant(1, Width::W8);
            if !env.if_eq(cmd.field("op"), one)? {
                return Ok(());
            }
            let acap = env.constant(500, Width::W16); // bug: 10× the client cap
            if !env.if_ult(cmd.field("arg"), acap)? {
                return Ok(());
            }
            env.mark_accept();
            Ok(())
        }
        let (mut pool, mut solver, hs_prep, cmd_prep) = prepare_slots();
        let (reports, slots, _) = analyze_sequence(
            &mut pool,
            &mut solver,
            &arg_bug_server,
            vec![&hs_prep, &cmd_prep],
            Optimizations::default(),
            1,
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(slots[0], vec![1], "the command slot hosts the Trojan");
        // Witness arg in [50, 500).
        let arg = reports[0].witness_fields[2];
        assert!((50..500).contains(&arg), "arg {arg}");
    }
}
