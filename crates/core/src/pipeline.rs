//! The end-to-end Achilles pipeline.
//!
//! [`Achilles`] owns the shared term pool and solver and drives the three
//! phases of the paper:
//!
//! 1. **Client analysis** — explore the client program, capture sent
//!    messages → [`ClientPredicate`];
//! 2. **Pre-processing** — negate every client path predicate and compute
//!    the `differentFrom` matrix → [`PreparedClient`];
//! 3. **Server analysis** — explore the server with the [`TrojanObserver`]
//!    installed, incrementally emitting [`TrojanReport`]s.
//!
//! Local state (§3.4) is configured through [`LocalState`]: run the server
//! from concrete state, from state constructed by symbolic messages of a
//! previous analysis, or from annotated over-approximate state.

use std::sync::Arc;
use std::time::Duration;

use achilles_solver::{SharedCache, Solver, TermId, TermPool};
use achilles_symvm::{
    Executor, ExploreConfig, ExploreStats, MessageLayout, NodeProgram, SymMessage,
};

use crate::predicate::{ClientPredicate, FieldMask};
use crate::report::TrojanReport;
use crate::search::{
    prepare_client_workers, run_trojan_search, MatchSample, Optimizations, PreparedClient,
    TrojanSearchOutcome, TrojanSearchStats, WorkerSummary,
};

/// How the analyzed server node obtains its local state (§3.4).
#[derive(Clone, Debug, Default)]
pub enum LocalState {
    /// The program builds (or receives) fully concrete local state — the
    /// default: run the system concretely up to the point of interest.
    #[default]
    Concrete,
    /// Constructed Symbolic Local State: the constraints under which the
    /// state-building messages were produced are seeded into every server
    /// path, and the state itself may contain symbolic values.
    Constructed {
        /// Constraints carried over from the state-construction phase.
        constraints: Vec<TermId>,
    },
    /// Over-approximate Symbolic Local State: the server program itself
    /// replaces state reads with annotated symbolic values
    /// ([`SymEnv::sym`](achilles_symvm::SymEnv::sym) /
    /// [`SymEnv::sym_in_range`](achilles_symvm::SymEnv::sym_in_range));
    /// nothing extra is seeded here.
    OverApproximate,
}

/// Wall-clock time of each pipeline phase (the §6.2 breakdown).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Gathering the client predicate.
    pub client: Duration,
    /// Pre-processing the client predicate.
    pub preprocess: Duration,
    /// Analyzing the server (wall clock).
    pub server: Duration,
    /// CPU time spent across all server-analysis workers (equals `server`
    /// for single-threaded runs; up to `workers ×` it when scaling).
    pub server_cpu: Duration,
    /// Concrete witness replay (the opt-in `validate` phase driven by
    /// `achilles-replay`; zero when validation did not run).
    pub validate: Duration,
}

impl PhaseTimes {
    /// Total pipeline wall-clock time.
    pub fn total(&self) -> Duration {
        self.client + self.preprocess + self.server + self.validate
    }
}

/// Everything one full Achilles run produces.
#[derive(Debug)]
pub struct AchillesReport {
    /// The extracted client predicate (pre-negation).
    pub client: ClientPredicate,
    /// The symbolic message analyzed by the server.
    pub server_msg: SymMessage,
    /// Discovered Trojan messages, in discovery order.
    pub trojans: Vec<TrojanReport>,
    /// Per-phase wall-clock times.
    pub phase_times: PhaseTimes,
    /// Figure 11 samples (path length vs matching predicates).
    pub samples: Vec<MatchSample>,
    /// Search counters.
    pub search_stats: TrojanSearchStats,
    /// Client exploration counters.
    pub client_explore: ExploreStats,
    /// Server exploration counters (includes steals and shared-cache hits
    /// for parallel runs).
    pub server_explore: ExploreStats,
    /// Completed server paths.
    pub server_paths: usize,
    /// Per-worker server-analysis breakdown (one entry for sequential runs).
    pub server_workers: Vec<WorkerSummary>,
}

/// Configuration for a full pipeline run.
#[derive(Clone, Debug, Default)]
pub struct AchillesConfig {
    /// Field mask (checksums, digests, authenticators — §5.2).
    pub mask: FieldMask,
    /// Optimization toggles (§6.4 ablation).
    pub optimizations: Optimizations,
    /// Re-verify every witness against every client path predicate.
    pub verify_witnesses: bool,
    /// Client exploration limits.
    pub client_explore: ExploreConfig,
    /// Server exploration limits.
    pub server_explore: ExploreConfig,
    /// Server local-state mode.
    pub local_state: LocalState,
}

impl AchillesConfig {
    /// A configuration with verification on and default limits.
    pub fn verified() -> AchillesConfig {
        AchillesConfig {
            verify_witnesses: true,
            ..AchillesConfig::default()
        }
    }
}

/// The Achilles analysis engine: shared pool, solver, and pipeline drivers.
///
/// The engine owns one [`SharedCache`] for its whole lifetime, attached to
/// the base solver and inherited by every worker solver a parallel phase
/// spawns — so a query the client phase paid for is a cache hit during the
/// server-path drop checks, and stays one across later session analyses on
/// the same engine. Each phase is an epoch of the cache; the reuse is
/// reported per exploration as
/// [`ExploreStats::cross_phase_cache_hits`].
///
/// # Examples
///
/// See the crate-level docs for the full working example of the paper's §2.
#[derive(Debug)]
pub struct Achilles {
    /// The shared term pool (exposed for custom queries over the results).
    pub pool: TermPool,
    /// The shared caching solver.
    pub solver: Solver,
    shared: Arc<SharedCache>,
}

impl Default for Achilles {
    fn default() -> Achilles {
        // Opt-in proof auditing: when `ACHILLES_CHECK_PROOFS` is set, every
        // unsat verdict any engine produces is validated by the independent
        // checker (a rejection is a solver bug and panics loudly).
        achilles_proofcheck::install_audit_from_env();
        let shared = Arc::new(SharedCache::new());
        Achilles {
            pool: TermPool::new(),
            solver: Solver::new().with_shared_cache(Arc::clone(&shared)),
            shared,
        }
    }
}

impl Achilles {
    /// Creates an engine with default solver configuration.
    pub fn new() -> Achilles {
        Achilles::default()
    }

    /// The engine-lifetime shared query cache (every pipeline phase — and
    /// every worker solver a parallel phase spawns — publishes into and
    /// reads from this one cache).
    pub fn shared_cache(&self) -> &Arc<SharedCache> {
        &self.shared
    }

    /// Phase 1: extracts the client predicate from a client program.
    ///
    /// Honors [`ExploreConfig::workers`]: client exploration parallelizes the
    /// same way the server analysis does.
    pub fn extract_client_predicate(
        &mut self,
        client: &(dyn NodeProgram + Sync),
        config: &ExploreConfig,
    ) -> (ClientPredicate, ExploreStats) {
        let mut exec = Executor::new(&mut self.pool, &mut self.solver, config.clone());
        let result = exec.explore_multi(client);
        (ClientPredicate::from_exploration(&result), result.stats)
    }

    /// Phase 1½: pre-processes a client predicate against a fresh symbolic
    /// server message of `layout`.
    pub fn prepare(
        &mut self,
        client: ClientPredicate,
        layout: &Arc<MessageLayout>,
        mask: FieldMask,
        opts: Optimizations,
    ) -> PreparedClient {
        self.prepare_with_workers(client, layout, mask, opts, 1)
    }

    /// [`Achilles::prepare`] with the per-path negation loop fanned out
    /// over `workers` threads (deterministic: see
    /// [`prepare_client_workers`]).
    pub fn prepare_with_workers(
        &mut self,
        client: ClientPredicate,
        layout: &Arc<MessageLayout>,
        mask: FieldMask,
        opts: Optimizations,
        workers: usize,
    ) -> PreparedClient {
        let server_msg = SymMessage::fresh(&mut self.pool, layout, "msg");
        prepare_client_workers(
            &mut self.pool,
            &mut self.solver,
            client,
            server_msg,
            mask,
            opts,
            workers,
        )
    }

    /// Phase 2: analyzes the server with the Trojan observer installed.
    ///
    /// Sequential when `config.server_explore.workers <= 1`; otherwise the
    /// exploration fans out over a work-stealing pool with per-worker
    /// solvers and a shared query cache (see
    /// [`run_trojan_search`](crate::search::run_trojan_search)).
    pub fn analyze_server(
        &mut self,
        server: &(dyn NodeProgram + Sync),
        prepared: &PreparedClient,
        config: &AchillesConfig,
    ) -> TrojanSearchOutcome {
        let mut explore = config.server_explore.clone();
        explore.recv_script = vec![prepared.server_msg.clone()];
        if let LocalState::Constructed { constraints } = &config.local_state {
            explore.initial_constraints.extend_from_slice(constraints);
        }
        run_trojan_search(
            &mut self.pool,
            &mut self.solver,
            prepared,
            server,
            explore,
            config.optimizations,
            config.verify_witnesses,
        )
    }

    /// Runs the full pipeline: client → preprocessing → server.
    ///
    /// Phase timing comes from `achilles_obs` timed spans: each phase of
    /// [`PhaseTimes`] is the duration of the matching span, so the §6.2
    /// breakdown and the exported Chrome trace are views of one
    /// measurement. The run also mirrors its deterministic counters
    /// (Trojan-search drops/checks, proof-audit totals) into the process
    /// metrics registry.
    pub fn run(
        &mut self,
        client: &(dyn NodeProgram + Sync),
        server: &(dyn NodeProgram + Sync),
        layout: &Arc<MessageLayout>,
        config: &AchillesConfig,
    ) -> AchillesReport {
        let run_span = achilles_obs::timed("pipeline:run", "pipeline");

        let phase = achilles_obs::timed("phase:client", "pipeline");
        let (client_pred, client_explore) =
            self.extract_client_predicate(client, &config.client_explore);
        let client_time = phase.finish();

        let phase = achilles_obs::timed("phase:preprocess", "pipeline");
        let prepared = self.prepare_with_workers(
            client_pred,
            layout,
            config.mask.clone(),
            config.optimizations,
            config.server_explore.workers.max(1),
        );
        let preprocess_time = phase.finish();

        let phase = achilles_obs::timed("phase:server", "pipeline");
        let outcome = self.analyze_server(server, &prepared, config);
        let server_time = phase.finish();

        run_span.finish();
        let server_cpu: Duration = outcome.workers.iter().map(|w| w.busy).sum();
        outcome.stats.record_metrics();
        self.shared.stats().record_metrics();
        record_proof_audit_metrics();
        AchillesReport {
            client: prepared.client.clone(),
            server_msg: prepared.server_msg.clone(),
            trojans: outcome.reports,
            phase_times: PhaseTimes {
                client: client_time,
                preprocess: preprocess_time,
                server: server_time,
                server_cpu,
                validate: Duration::ZERO,
            },
            samples: outcome.samples,
            search_stats: outcome.stats,
            client_explore,
            server_explore: outcome.explore,
            server_paths: outcome.server_paths,
            server_workers: outcome.workers,
        }
    }
}

/// Publishes the process-lifetime proof-audit totals (certificates checked
/// by the independent `achilles-proofcheck` auditor, and the wall time it
/// spent) as registry gauges. The count is workload-fixed when the audit is
/// installed; the time is wall.
pub(crate) fn record_proof_audit_metrics() {
    let (checked, spent) = achilles_solver::proof_audit_stats();
    let reg = achilles_obs::global();
    reg.set(
        achilles_obs::Class::Deterministic,
        "achilles_solver_proof_audit_checked_total",
        &[],
        checked,
    );
    reg.set(
        achilles_obs::Class::Wall,
        "achilles_solver_proof_audit_time_ns_total",
        &[],
        spent.as_nanos() as u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::Width;
    use achilles_symvm::{PathResult, SymEnv};

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("kv")
            .field("op", Width::W8)
            .field("key", Width::W16)
            .build()
    }

    fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
        let key = env.sym("key", Width::W16);
        let limit = env.constant(1024, Width::W16);
        if !env.if_ult(key, limit)? {
            return Ok(());
        }
        let op = env.constant(1, Width::W8);
        env.send(SymMessage::new(layout(), vec![op, key]));
        Ok(())
    }

    fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
        let msg = env.recv(&layout())?;
        let one = env.constant(1, Width::W8);
        if !env.if_eq(msg.field("op"), one)? {
            return Ok(());
        }
        // Bug: the server accepts keys up to 4096, clients only send < 1024.
        let limit = env.constant(4096, Width::W16);
        if !env.if_ult(msg.field("key"), limit)? {
            return Ok(());
        }
        env.mark_accept();
        Ok(())
    }

    #[test]
    fn full_pipeline_finds_oversized_keys() {
        let mut achilles = Achilles::new();
        let config = AchillesConfig::verified();
        let report = achilles.run(&client, &server, &layout(), &config);
        assert_eq!(report.client.len(), 1);
        assert_eq!(report.trojans.len(), 1);
        let t = &report.trojans[0];
        assert!(t.verified);
        let key = t.witness_fields[1];
        assert!(
            (1024..4096).contains(&key),
            "witness key {key} in the Trojan window"
        );
        assert!(report.phase_times.total() > Duration::ZERO);
        assert!(report.server_paths >= 1);
    }

    #[test]
    fn constructed_state_constraints_are_seeded() {
        let mut achilles = Achilles::new();
        // Pretend a previous phase pinned the state: key space reduced so the
        // Trojan window shrinks but survives.
        let (client_pred, _) =
            achilles.extract_client_predicate(&client, &ExploreConfig::default());
        let prepared = achilles.prepare(
            client_pred,
            &layout(),
            FieldMask::none(),
            Optimizations::default(),
        );
        let key_field = prepared.server_msg.field("key");
        let cap = achilles.pool.constant(2000, Width::W16);
        let seeded = achilles.pool.ult(key_field, cap);
        let config = AchillesConfig {
            verify_witnesses: true,
            local_state: LocalState::Constructed {
                constraints: vec![seeded],
            },
            ..AchillesConfig::default()
        };
        let outcome = achilles.analyze_server(&server, &prepared, &config);
        assert_eq!(outcome.reports.len(), 1);
        let key = outcome.reports[0].witness_fields[1];
        assert!(
            (1024..2000).contains(&key),
            "seeded constraint caps the witness: {key}"
        );
    }
}
