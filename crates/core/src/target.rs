//! The protocol-agnostic target description: one [`TargetSpec`] carries
//! everything the pipeline needs to analyze and validate a protocol.
//!
//! The paper's pipeline — client predicate extraction, negation, server
//! Trojan search, concrete witness replay — is protocol-independent, but
//! each phase needs protocol-specific ingredients: the client and server
//! [`NodeProgram`]s, the wire [`MessageLayout`], a field mask, the
//! supported local-state modes, and a concrete deployment to fire
//! witnesses at. [`TargetSpec`] bundles those ingredients behind one
//! trait, so a protocol is onboarded by implementing it in the protocol's
//! own crate and registering the spec in a
//! [`TargetRegistry`](crate::TargetRegistry) — **zero changes to the core
//! pipeline, the replay harness, or the bench drivers**.
//!
//! The concrete half lives here too: [`ReplayTarget`] (a bootable
//! deployment that accepts wire datagrams) and the wire codec helpers
//! ([`fields_to_wire`] / [`wire_to_fields`]) that concretize solver models
//! into injectable bytes through the same
//! [`achilles_netsim::bytes`] framing the deployments parse with. The
//! `achilles-replay` crate drives a [`ReplayTarget`] produced by
//! [`TargetSpec::replay_target`] through fault plans, triage, and corpus
//! persistence.
//!
//! See the crate-level docs ("Porting a protocol") for the step-by-step
//! guide.

use std::sync::Arc;

pub use achilles_netsim::bytes::WireError;
use achilles_netsim::bytes::{decode_fields, encode_fields};
use achilles_symvm::{MessageLayout, NodeProgram};

use crate::pipeline::AchillesConfig;
use crate::predicate::FieldMask;
use crate::report::TrojanReport;

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

/// Per-field widths (in bits) of a message layout, in declaration order.
pub fn layout_widths(layout: &MessageLayout) -> Vec<u32> {
    layout.fields().iter().map(|f| f.width.bits()).collect()
}

/// Encodes layout-ordered field values to wire bytes (big-endian, the
/// framing every concrete deployment parses with).
///
/// # Errors
///
/// Returns [`WireError::BadWidth`] if the layout has a field narrower than
/// one byte (such layouts cannot travel on the modeled wire).
pub fn fields_to_wire(layout: &MessageLayout, fields: &[u64]) -> Result<Vec<u8>, WireError> {
    let pairs: Vec<(u32, u64)> = layout_widths(layout)
        .into_iter()
        .zip(fields.iter().copied())
        .collect();
    encode_fields(&pairs)
}

/// Decodes wire bytes back to layout-ordered field values.
///
/// # Errors
///
/// Returns a [`WireError`] if the buffer is truncated or the layout has a
/// sub-byte field.
pub fn wire_to_fields(layout: &MessageLayout, wire: &[u8]) -> Result<Vec<u64>, WireError> {
    decode_fields(wire, &layout_widths(layout))
}

// ---------------------------------------------------------------------------
// Concrete deployments
// ---------------------------------------------------------------------------

/// One delivery of an injection plan: wire bytes plus whether this copy is
/// the witness (as opposed to a benign companion).
pub type Delivery = (Vec<u8>, bool);

/// What one injection run did, per delivery and in aggregate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InjectionOutcome {
    /// Per-delivery acceptance, aligned with the delivery plan.
    pub accepted_each: Vec<bool>,
    /// Structural effect notes (unsorted; the replay triage sorts them
    /// into the crash signature).
    pub effects: Vec<String>,
}

/// A concrete deployment a witness can be fired at.
///
/// Implementations must be pure: [`ReplayTarget::inject`] boots fresh
/// state every call and its result is a function of the delivery plan
/// alone. That purity is what makes replay results bit-identical across
/// worker counts, runs, and machines.
pub trait ReplayTarget: Sync {
    /// Short system name used in crash signatures (`"fsp"`, `"pbft"`, …).
    fn name(&self) -> &'static str;

    /// The wire layout witnesses for this target use.
    fn layout(&self) -> Arc<MessageLayout>;

    /// Field values of a benign message a correct client would send
    /// (the ddmin baseline and the reorder-fault companion).
    fn benign_fields(&self) -> Vec<u64>;

    /// Whether a correct client can generate `fields` — the concrete
    /// client-side oracle.
    fn client_generable(&self, fields: &[u64]) -> bool;

    /// Boots a fresh deployment and fires the delivery plan at it.
    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome;
}

// ---------------------------------------------------------------------------
// The target spec
// ---------------------------------------------------------------------------

/// Which local-state modes (§3.4) a protocol's analysis supports.
///
/// This is declarative metadata mirroring
/// [`LocalState`](crate::LocalState) (which carries the actual seeded
/// constraints): registries and conformance suites use it to know what a
/// spec can be asked to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LocalStateMode {
    /// Run the server from fully concrete local state.
    Concrete,
    /// Constructed Symbolic Local State (constraints seeded from a
    /// previous analysis phase).
    Constructed,
    /// Over-approximate Symbolic Local State (annotated symbolic reads).
    OverApproximate,
}

/// Everything the Achilles pipeline needs from one protocol.
///
/// A `TargetSpec` is the single onboarding point for a protocol: it names
/// the target, supplies the symbolic client and server programs and the
/// wire layout for discovery, the codec for witness concretization, and a
/// factory for the concrete [`ReplayTarget`] used by validation. Drivers —
/// [`AchillesSession`](crate::AchillesSession), the bench bins, the
/// conformance suite — consume specs through a
/// [`TargetRegistry`](crate::TargetRegistry) and never name a protocol in
/// code.
pub trait TargetSpec: Sync {
    /// Registry name of the protocol (`"fsp"`, `"pbft"`, `"paxos"`,
    /// `"twopc"`, …). Must be stable and unique within a registry.
    fn name(&self) -> &'static str;

    /// One-line human description shown by registry-driven tooling.
    fn description(&self) -> &'static str {
        ""
    }

    /// The wire layout of the analyzed message.
    fn layout(&self) -> Arc<MessageLayout>;

    /// The client programs whose sent messages form the client predicate
    /// `P_C` (their predicates are merged in order — e.g. the eight FSP
    /// utilities). Must be non-empty.
    fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>>;

    /// The server program analyzed for Trojan acceptance.
    fn server(&self) -> Box<dyn NodeProgram + Sync + '_>;

    /// Field mask (checksums, digests, authenticators — §5.2).
    fn mask(&self) -> FieldMask {
        FieldMask::none()
    }

    /// The pipeline configuration this protocol is normally analyzed with
    /// (verification on by default). [`AchillesSession`](crate::AchillesSession)
    /// starts from this and lets callers override knobs.
    fn analysis_config(&self) -> AchillesConfig {
        AchillesConfig::verified()
    }

    /// The local-state modes this spec's analysis supports.
    fn local_state_modes(&self) -> Vec<LocalStateMode> {
        vec![LocalStateMode::Concrete]
    }

    /// How many Trojan reports the default configuration is expected to
    /// discover, when the protocol's bounded model makes that number exact
    /// (the paper's counting arithmetic). `None` when open-ended.
    fn expected_trojans(&self) -> Option<usize> {
        None
    }

    /// Classifies a discovered report into a protocol-level family label
    /// (used for triage summaries; `"trojan"` when the protocol has a
    /// single family).
    fn classify(&self, _report: &TrojanReport) -> String {
        "trojan".to_string()
    }

    /// Builds the concrete deployment used to validate witnesses.
    ///
    /// The factory bundles the boot logic that used to be hand-assembled
    /// per protocol in the replay harness: the returned target boots a
    /// fresh deployment per injection, configured consistently with the
    /// analyzed [`TargetSpec::server`].
    fn replay_target(&self) -> Box<dyn ReplayTarget>;

    /// Concretizes layout-ordered field values into injectable wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the layout cannot travel on the wire.
    fn encode(&self, fields: &[u64]) -> Result<Vec<u8>, WireError> {
        fields_to_wire(&self.layout(), fields)
    }

    /// Decodes wire bytes back into layout-ordered field values.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated buffers or sub-byte layouts.
    fn decode(&self, wire: &[u8]) -> Result<Vec<u64>, WireError> {
        wire_to_fields(&self.layout(), wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::Width;
    use achilles_symvm::{PathResult, SymEnv, SymMessage};

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("kv")
            .field("op", Width::W8)
            .field("key", Width::W16)
            .build()
    }

    struct KvSpec;

    struct NullTarget;
    impl ReplayTarget for NullTarget {
        fn name(&self) -> &'static str {
            "kv"
        }
        fn layout(&self) -> Arc<MessageLayout> {
            layout()
        }
        fn benign_fields(&self) -> Vec<u64> {
            vec![1, 0]
        }
        fn client_generable(&self, fields: &[u64]) -> bool {
            fields[1] < 1024
        }
        fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
            InjectionOutcome {
                accepted_each: vec![true; deliveries.len()],
                effects: vec![],
            }
        }
    }

    impl TargetSpec for KvSpec {
        fn name(&self) -> &'static str {
            "kv"
        }
        fn layout(&self) -> Arc<MessageLayout> {
            layout()
        }
        fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
            fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
                let key = env.sym("key", Width::W16);
                let op = env.constant(1, Width::W8);
                env.send(SymMessage::new(
                    MessageLayout::builder("kv")
                        .field("op", Width::W8)
                        .field("key", Width::W16)
                        .build(),
                    vec![op, key],
                ));
                Ok(())
            }
            vec![Box::new(client)]
        }
        fn server(&self) -> Box<dyn NodeProgram + Sync + '_> {
            fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
                let _ = env.recv(&layout())?;
                env.mark_accept();
                Ok(())
            }
            Box::new(server)
        }
        fn replay_target(&self) -> Box<dyn ReplayTarget> {
            Box::new(NullTarget)
        }
    }

    #[test]
    fn default_codec_round_trips_through_the_layout() {
        let spec = KvSpec;
        let wire = spec.encode(&[0x41, 0x1234]).unwrap();
        assert_eq!(wire, vec![0x41, 0x12, 0x34]);
        assert_eq!(spec.decode(&wire).unwrap(), vec![0x41, 0x1234]);
    }

    #[test]
    fn defaults_are_sensible() {
        let spec = KvSpec;
        assert_eq!(spec.local_state_modes(), vec![LocalStateMode::Concrete]);
        assert_eq!(spec.expected_trojans(), None);
        assert!(spec.analysis_config().verify_witnesses);
        assert!(spec.description().is_empty());
    }
}
