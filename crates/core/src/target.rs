//! The protocol-agnostic target description: one [`TargetSpec`] carries
//! everything the pipeline needs to analyze and validate a protocol.
//!
//! The paper's pipeline — client predicate extraction, negation, server
//! Trojan search, concrete witness replay — is protocol-independent, but
//! each phase needs protocol-specific ingredients: the client and server
//! [`NodeProgram`]s, the wire [`MessageLayout`], a field mask, the
//! supported local-state modes, and a concrete deployment to fire
//! witnesses at. [`TargetSpec`] bundles those ingredients behind one
//! trait, so a protocol is onboarded by implementing it in the protocol's
//! own crate and registering the spec in a
//! [`TargetRegistry`](crate::TargetRegistry) — **zero changes to the core
//! pipeline, the replay harness, or the bench drivers**.
//!
//! The concrete half lives here too: [`ReplayTarget`] (a bootable
//! deployment that accepts wire datagrams) and the wire codec helpers
//! ([`fields_to_wire`] / [`wire_to_fields`]) that concretize solver models
//! into injectable bytes through the same
//! [`achilles_netsim::bytes`] framing the deployments parse with. The
//! `achilles-replay` crate drives a [`ReplayTarget`] produced by
//! [`TargetSpec::replay_target`] through fault plans, triage, and corpus
//! persistence.
//!
//! See the crate-level docs ("Porting a protocol") for the step-by-step
//! guide.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

pub use achilles_netsim::bytes::WireError;
use achilles_netsim::bytes::{decode_fields, encode_fields};
use achilles_symvm::{MessageLayout, NodeProgram};

use crate::diverge::StateRoot;
use crate::pipeline::AchillesConfig;
use crate::predicate::FieldMask;
use crate::report::TrojanReport;

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

/// Per-field widths (in bits) of a message layout, in declaration order.
pub fn layout_widths(layout: &MessageLayout) -> Vec<u32> {
    layout.fields().iter().map(|f| f.width.bits()).collect()
}

/// Encodes layout-ordered field values to wire bytes (big-endian, the
/// framing every concrete deployment parses with).
///
/// # Errors
///
/// Returns [`WireError::BadWidth`] if the layout has a field narrower than
/// one byte (such layouts cannot travel on the modeled wire).
pub fn fields_to_wire(layout: &MessageLayout, fields: &[u64]) -> Result<Vec<u8>, WireError> {
    let pairs: Vec<(u32, u64)> = layout_widths(layout)
        .into_iter()
        .zip(fields.iter().copied())
        .collect();
    encode_fields(&pairs)
}

/// Decodes wire bytes back to layout-ordered field values.
///
/// # Errors
///
/// Returns a [`WireError`] if the buffer is truncated or the layout has a
/// sub-byte field.
pub fn wire_to_fields(layout: &MessageLayout, wire: &[u8]) -> Result<Vec<u64>, WireError> {
    decode_fields(wire, &layout_widths(layout))
}

// ---------------------------------------------------------------------------
// Concrete deployments
// ---------------------------------------------------------------------------

/// One delivery of an injection plan: wire bytes plus whether this copy is
/// the witness (as opposed to a benign companion).
pub type Delivery = (Vec<u8>, bool);

/// What one injection run did, per delivery and in aggregate.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InjectionOutcome {
    /// Per-delivery acceptance, aligned with the delivery plan.
    pub accepted_each: Vec<bool>,
    /// Structural effect notes (unsorted; the replay triage sorts them
    /// into the crash signature).
    pub effects: Vec<String>,
}

/// A concrete deployment a witness can be fired at.
///
/// Implementations must be pure: [`ReplayTarget::inject`] boots fresh
/// state every call and its result is a function of the delivery plan
/// alone. That purity is what makes replay results bit-identical across
/// worker counts, runs, and machines.
///
/// Session targets — deployments that consume a fixed *sequence* of
/// messages per session (see [`TargetSpec::sessions`]) — additionally
/// override the `slot_*` hooks so the replay harness can build per-slot
/// benign companions and judge per-slot generability. The defaults make
/// every single-message target a valid one-slot session target.
pub trait ReplayTarget: Sync {
    /// Short system name used in crash signatures (`"fsp"`, `"pbft"`, …).
    fn name(&self) -> &'static str;

    /// The wire layout witnesses for this target use.
    fn layout(&self) -> Arc<MessageLayout>;

    /// Field values of a benign message a correct client would send
    /// (the ddmin baseline and the reorder-fault companion).
    fn benign_fields(&self) -> Vec<u64>;

    /// Whether a correct client can generate `fields` — the concrete
    /// client-side oracle.
    fn client_generable(&self, fields: &[u64]) -> bool;

    /// Boots a fresh deployment and fires the delivery plan at it.
    ///
    /// For session targets the plan carries one delivery per slot in
    /// session order (plus any fault-injected copies); the deployment
    /// consumes them statefully, exactly like real traffic.
    fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome;

    /// Per-slot wire layouts of a session witness, in slot order.
    ///
    /// Single-message targets keep the default (one slot, the
    /// [`ReplayTarget::layout`]).
    fn slot_layouts(&self) -> Vec<Arc<MessageLayout>> {
        vec![self.layout()]
    }

    /// Benign field values for `slot` (the per-slot ddmin baseline and the
    /// benign interleaving companion a fault schedule inserts between
    /// deliveries). Defaults to [`ReplayTarget::benign_fields`].
    fn slot_benign_fields(&self, slot: usize) -> Vec<u64> {
        let _ = slot;
        self.benign_fields()
    }

    /// Whether a correct client can produce `fields` *in `slot`* — the
    /// per-slot concrete oracle. Defaults to
    /// [`ReplayTarget::client_generable`].
    fn slot_generable(&self, slot: usize, fields: &[u64]) -> bool {
        let _ = slot;
        self.client_generable(fields)
    }

    /// Boots a fresh deployment as an incremental *fork session* — the
    /// snapshot/restore capability behind the sweep fork-server.
    ///
    /// Snapshot-capable targets return `Some(session)` where delivering
    /// every plan entry through [`SnapshotReplayTarget::deliver`] and then
    /// calling [`SnapshotReplayTarget::finish`] produces exactly the
    /// [`InjectionOutcome`] that [`ReplayTarget::inject`] would for the
    /// same plan (the *equivalence law*; the fork-server equivalence suite
    /// pins it per target). The default is `None`: drivers fall back
    /// transparently to cold-booting one [`ReplayTarget::inject`] per
    /// cell, so snapshots are a pure speed lever, never a semantic one.
    fn boot_fork(&self) -> Option<Box<dyn SnapshotReplayTarget + '_>> {
        None
    }

    /// Whether this deployment observes per-node state roots and reports
    /// divergence through its effects (see [`crate::diverge`]).
    ///
    /// Multi-node targets that embed a
    /// [`DivergenceProbe`](crate::diverge::DivergenceProbe) return `true`;
    /// the conformance suite then holds them to the divergence contract
    /// (fault-free benign agreement, ≥ 1 diverging schedule, and
    /// drop-the-arming-slot restores agreement). Single-node targets keep
    /// the default.
    fn reports_state_roots(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Snapshot fork sessions
// ---------------------------------------------------------------------------

/// An opaque, clone-able copy of a fork session's mutable engine state.
///
/// Produced by [`SnapshotReplayTarget::snapshot`] and consumed only by the
/// matching target's [`SnapshotReplayTarget::restore`] — the payload type
/// is private to the target implementation. Snapshots are deep copies:
/// restoring one must not alias live state (no shared `Arc<Mutex<…>>`
/// interiors), so a restored session and the session it forked from evolve
/// independently.
pub struct TargetSnapshot(Box<dyn AnyState>);

impl TargetSnapshot {
    /// Wraps a deep copy of a fork session's mutable state.
    pub fn of<T: Clone + Send + 'static>(state: T) -> TargetSnapshot {
        TargetSnapshot(Box::new(state))
    }

    /// Recovers the state payload, if this snapshot holds a `T`.
    ///
    /// Targets call this from [`SnapshotReplayTarget::restore`] and may
    /// `expect` the downcast: the fork-server only ever hands a session
    /// snapshots that same session (or a sibling of the same target)
    /// produced.
    pub fn get<T: Clone + Send + 'static>(&self) -> Option<&T> {
        self.0.as_any().downcast_ref::<T>()
    }
}

impl Clone for TargetSnapshot {
    fn clone(&self) -> TargetSnapshot {
        TargetSnapshot(self.0.clone_box())
    }
}

impl fmt::Debug for TargetSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("TargetSnapshot(..)")
    }
}

/// Object-safe `Clone + Any` bridge for snapshot payloads.
trait AnyState: Send {
    fn clone_box(&self) -> Box<dyn AnyState>;
    fn as_any(&self) -> &dyn Any;
}

impl<T: Clone + Send + 'static> AnyState for T {
    fn clone_box(&self) -> Box<dyn AnyState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// One booted deployment driven incrementally, with snapshot/restore at
/// arbitrary points — the AFL-style fork-server capability.
///
/// Where [`ReplayTarget::inject`] boots fresh state per call and consumes a
/// whole delivery plan, a fork session is handed deliveries one at a time
/// and can be rewound: the sweep fork-server walks a delivery-prefix trie,
/// snapshotting at branch points and restoring from the deepest shared
/// ancestor instead of cold-booting every cell.
///
/// # Contract
///
/// - [`deliver`](SnapshotReplayTarget::deliver) pushes exactly one entry
///   onto `outcome.accepted_each` and appends any per-delivery effects, in
///   the same order `inject` would.
/// - [`finish`](SnapshotReplayTarget::finish) appends the end-of-plan
///   effects `inject` computes after its delivery loop (filesystem diffs,
///   final decisions). It may leave the engine state unspecified — the
///   fork-server always restores a snapshot before reusing the session.
/// - *Equivalence law*: boot → `deliver` each plan entry → `finish` must
///   produce an [`InjectionOutcome`] equal to `inject` on the same plan,
///   and `snapshot` → any deliveries → `restore` must put the session back
///   bit-exactly (re-delivering yields identical outcomes).
pub trait SnapshotReplayTarget {
    /// Feeds one delivery to the live deployment, recording acceptance and
    /// effects into `outcome`.
    fn deliver(&mut self, delivery: &Delivery, outcome: &mut InjectionOutcome);

    /// Deep-copies the mutable engine state.
    fn snapshot(&self) -> TargetSnapshot;

    /// Rewinds the session to a previously captured snapshot.
    fn restore(&mut self, snapshot: &TargetSnapshot);

    /// Appends the end-of-plan effects (whatever `inject` computes after
    /// delivering everything). May consume the session state; callers
    /// restore a snapshot before delivering again.
    fn finish(&mut self, outcome: &mut InjectionOutcome);

    /// The current per-node state roots, for deployments that observe
    /// them (`None` — the default — for single-node targets).
    ///
    /// The roots must be a pure function of the deliveries applied since
    /// boot, and snapshot/restore must rewind them with the rest of the
    /// engine state — the probe and the digests belong in the
    /// [`TargetSnapshot`] payload.
    fn state_roots(&self) -> Option<Vec<StateRoot>> {
        None
    }
}

// ---------------------------------------------------------------------------
// Session declarations
// ---------------------------------------------------------------------------

/// One receive slot of a declared session: the wire layout of the message
/// the server consumes in this position, plus which of the spec's
/// [`session client programs`](TargetSpec::session_clients) can legally
/// fill it.
#[derive(Clone, Debug)]
pub struct SessionSlot {
    /// Slot name used in reports and witness provenance (`"login"`,
    /// `"command"`, …).
    pub name: String,
    /// The wire layout of the message received in this slot.
    pub layout: Arc<MessageLayout>,
    /// Indices into [`TargetSpec::session_clients`] whose predicates are
    /// merged (in order) into this slot's client predicate `P_C`.
    pub clients: Vec<usize>,
    /// Field mask for this slot (checksums/digests, §5.2).
    pub mask: FieldMask,
}

impl SessionSlot {
    /// A slot named `name` of `layout`, fed by the given session clients,
    /// with no field mask.
    pub fn new(
        name: impl Into<String>,
        layout: Arc<MessageLayout>,
        clients: Vec<usize>,
    ) -> SessionSlot {
        SessionSlot {
            name: name.into(),
            layout,
            clients,
            mask: FieldMask::none(),
        }
    }
}

/// A multi-message session a [`TargetSpec`] declares: an ordered slot list
/// the server consumes in one activation (handshake → command, VOTE →
/// DECIDE), plus an expected session-Trojan hint.
///
/// A session is Trojan when the server accepts it but at least one slot's
/// message is un-generable by that slot's correct clients —
/// `⋁ₛ ¬genₛ(mₛ)` (the stateful findings single-message analysis is blind
/// to). Declared sessions are driven end-to-end by
/// [`AchillesSession::run_sessions`](crate::AchillesSession::run_sessions)
/// and validated through the spec's session replay target.
#[derive(Clone, Debug)]
pub struct SessionSpec {
    /// Session name, unique within the spec (`"login-command"`, …).
    pub name: String,
    /// The ordered receive slots (must match the session server's `recv`
    /// order). Must be non-empty.
    pub slots: Vec<SessionSlot>,
    /// How many session-Trojan reports the default configuration is
    /// expected to discover, when the bounded model makes that exact.
    pub expected_trojans: Option<usize>,
}

impl SessionSpec {
    /// A session named `name` over `slots` with no expected-count hint.
    pub fn new(name: impl Into<String>, slots: Vec<SessionSlot>) -> SessionSpec {
        SessionSpec {
            name: name.into(),
            slots,
            expected_trojans: None,
        }
    }

    /// Sets the expected session-Trojan count.
    pub fn expecting(mut self, count: usize) -> SessionSpec {
        self.expected_trojans = Some(count);
        self
    }

    /// Per-slot field counts (the shape used to split a flat witness back
    /// into slot messages).
    pub fn slot_field_counts(&self) -> Vec<usize> {
        self.slots.iter().map(|s| s.layout.num_fields()).collect()
    }
}

// ---------------------------------------------------------------------------
// The target spec
// ---------------------------------------------------------------------------

/// Which local-state modes (§3.4) a protocol's analysis supports.
///
/// This is declarative metadata mirroring
/// [`LocalState`](crate::LocalState) (which carries the actual seeded
/// constraints): registries and conformance suites use it to know what a
/// spec can be asked to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LocalStateMode {
    /// Run the server from fully concrete local state.
    Concrete,
    /// Constructed Symbolic Local State (constraints seeded from a
    /// previous analysis phase).
    Constructed,
    /// Over-approximate Symbolic Local State (annotated symbolic reads).
    OverApproximate,
}

/// Everything the Achilles pipeline needs from one protocol.
///
/// A `TargetSpec` is the single onboarding point for a protocol: it names
/// the target, supplies the symbolic client and server programs and the
/// wire layout for discovery, the codec for witness concretization, and a
/// factory for the concrete [`ReplayTarget`] used by validation. Drivers —
/// [`AchillesSession`](crate::AchillesSession), the bench bins, the
/// conformance suite — consume specs through a
/// [`TargetRegistry`](crate::TargetRegistry) and never name a protocol in
/// code.
///
/// Specs are `Send + Sync`: a registry is shared across driver threads
/// (the parallel pool, the fleetd campaign executors), so a spec must be
/// plain configuration data, never a handle to thread-local state.
pub trait TargetSpec: Send + Sync {
    /// Registry name of the protocol (`"fsp"`, `"pbft"`, `"paxos"`,
    /// `"twopc"`, …). Must be stable and unique within a registry.
    fn name(&self) -> &'static str;

    /// One-line human description shown by registry-driven tooling.
    fn description(&self) -> &'static str {
        ""
    }

    /// The wire layout of the analyzed message.
    fn layout(&self) -> Arc<MessageLayout>;

    /// The client programs whose sent messages form the client predicate
    /// `P_C` (their predicates are merged in order — e.g. the eight FSP
    /// utilities). Must be non-empty.
    fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>>;

    /// The server program analyzed for Trojan acceptance.
    fn server(&self) -> Box<dyn NodeProgram + Sync + '_>;

    /// Field mask (checksums, digests, authenticators — §5.2).
    fn mask(&self) -> FieldMask {
        FieldMask::none()
    }

    /// The pipeline configuration this protocol is normally analyzed with
    /// (verification on by default). [`AchillesSession`](crate::AchillesSession)
    /// starts from this and lets callers override knobs.
    fn analysis_config(&self) -> AchillesConfig {
        AchillesConfig::verified()
    }

    /// The local-state modes this spec's analysis supports.
    fn local_state_modes(&self) -> Vec<LocalStateMode> {
        vec![LocalStateMode::Concrete]
    }

    /// How many Trojan reports the default configuration is expected to
    /// discover, when the protocol's bounded model makes that number exact
    /// (the paper's counting arithmetic). `None` when open-ended.
    fn expected_trojans(&self) -> Option<usize> {
        None
    }

    /// Classifies a discovered report into a protocol-level family label
    /// (used for triage summaries; `"trojan"` when the protocol has a
    /// single family).
    fn classify(&self, _report: &TrojanReport) -> String {
        "trojan".to_string()
    }

    /// Builds the concrete deployment used to validate witnesses.
    ///
    /// The factory bundles the boot logic that used to be hand-assembled
    /// per protocol in the replay harness: the returned target boots a
    /// fresh deployment per injection, configured consistently with the
    /// analyzed [`TargetSpec::server`].
    fn replay_target(&self) -> Box<dyn ReplayTarget>;

    /// Concretizes layout-ordered field values into injectable wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] when the layout cannot travel on the wire.
    fn encode(&self, fields: &[u64]) -> Result<Vec<u8>, WireError> {
        fields_to_wire(&self.layout(), fields)
    }

    /// Decodes wire bytes back into layout-ordered field values.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncated buffers or sub-byte layouts.
    fn decode(&self, wire: &[u8]) -> Result<Vec<u64>, WireError> {
        wire_to_fields(&self.layout(), wire)
    }

    /// The multi-message sessions this protocol declares (empty — the
    /// default — for single-message protocols).
    ///
    /// Declared sessions are registry-drivable exactly like the
    /// single-message analysis:
    /// [`AchillesSession::run_sessions`](crate::AchillesSession::run_sessions)
    /// runs `analyze_sequence` per session over the work-stealing pool, and
    /// `achilles_replay::validate_spec_sessions` fires the resulting
    /// session witnesses at [`TargetSpec::session_replay_target`].
    fn sessions(&self) -> Vec<SessionSpec> {
        Vec::new()
    }

    /// The client programs session slots select from (referenced by index
    /// in [`SessionSlot::clients`]). Defaults to [`TargetSpec::clients`];
    /// override when sessions need clients beyond the single-message set
    /// (a login utility, a controller, …).
    fn session_clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
        self.clients()
    }

    /// The server program analyzed for session `name`: one `recv` per
    /// declared slot, in slot order. Defaults to [`TargetSpec::server`]
    /// (correct only for specs whose server already consumes the session's
    /// message sequence).
    fn session_server(&self, name: &str) -> Box<dyn NodeProgram + Sync + '_> {
        let _ = name;
        self.server()
    }

    /// The concrete deployment session witnesses for `name` are fired at.
    /// Defaults to [`TargetSpec::replay_target`]; session targets override
    /// the [`ReplayTarget`] `slot_*` hooks for per-slot layouts, benign
    /// baselines, and generability.
    fn session_replay_target(&self, name: &str) -> Box<dyn ReplayTarget> {
        let _ = name;
        self.replay_target()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::Width;
    use achilles_symvm::{PathResult, SymEnv, SymMessage};

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("kv")
            .field("op", Width::W8)
            .field("key", Width::W16)
            .build()
    }

    struct KvSpec;

    struct NullTarget;
    impl ReplayTarget for NullTarget {
        fn name(&self) -> &'static str {
            "kv"
        }
        fn layout(&self) -> Arc<MessageLayout> {
            layout()
        }
        fn benign_fields(&self) -> Vec<u64> {
            vec![1, 0]
        }
        fn client_generable(&self, fields: &[u64]) -> bool {
            fields[1] < 1024
        }
        fn inject(&self, deliveries: &[Delivery]) -> InjectionOutcome {
            InjectionOutcome {
                accepted_each: vec![true; deliveries.len()],
                effects: vec![],
            }
        }
    }

    impl TargetSpec for KvSpec {
        fn name(&self) -> &'static str {
            "kv"
        }
        fn layout(&self) -> Arc<MessageLayout> {
            layout()
        }
        fn clients(&self) -> Vec<Box<dyn NodeProgram + Sync + '_>> {
            fn client(env: &mut SymEnv<'_>) -> PathResult<()> {
                let key = env.sym("key", Width::W16);
                let op = env.constant(1, Width::W8);
                env.send(SymMessage::new(
                    MessageLayout::builder("kv")
                        .field("op", Width::W8)
                        .field("key", Width::W16)
                        .build(),
                    vec![op, key],
                ));
                Ok(())
            }
            vec![Box::new(client)]
        }
        fn server(&self) -> Box<dyn NodeProgram + Sync + '_> {
            fn server(env: &mut SymEnv<'_>) -> PathResult<()> {
                let _ = env.recv(&layout())?;
                env.mark_accept();
                Ok(())
            }
            Box::new(server)
        }
        fn replay_target(&self) -> Box<dyn ReplayTarget> {
            Box::new(NullTarget)
        }
    }

    #[test]
    fn default_codec_round_trips_through_the_layout() {
        let spec = KvSpec;
        let wire = spec.encode(&[0x41, 0x1234]).unwrap();
        assert_eq!(wire, vec![0x41, 0x12, 0x34]);
        assert_eq!(spec.decode(&wire).unwrap(), vec![0x41, 0x1234]);
    }

    #[test]
    fn defaults_are_sensible() {
        let spec = KvSpec;
        assert_eq!(spec.local_state_modes(), vec![LocalStateMode::Concrete]);
        assert_eq!(spec.expected_trojans(), None);
        assert!(spec.analysis_config().verify_witnesses);
        assert!(spec.description().is_empty());
    }
}
