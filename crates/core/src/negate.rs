//! The under-approximate `negate` operator (§3.2).
//!
//! `negate(pathC)` builds a predicate over the *server's* received message
//! that is satisfied only by messages the client path cannot generate. The
//! true negation of a client path predicate carries a universal quantifier
//! (no assignment of the client's inputs produces this message); following
//! the paper, we under-approximate it field by field:
//!
//! 1. a field whose client expression is a **concrete** value `C` negates to
//!    `msg_S.f ≠ C`;
//! 2. a field whose client expression is **symbolic** negates to
//!    `msg_S.f == e'(λ') ∧ ¬Q'(λ')` where `e'`, `Q'` are the field's
//!    expression and influencing constraints with variables renamed to fresh
//!    existential copies;
//! 3. a symbolic field with **no influencing constraints** cannot be negated
//!    and is skipped (the client can already put any value there).
//!
//! `negate(pathC)` is the disjunction of the per-field clauses. Per §4.1,
//! each clause is checked against the original field predicate: if a common
//! solution exists the clause is discarded, keeping the operator *strictly*
//! under-approximate (no false positives from negation).

use std::time::{Duration, Instant};

use achilles_solver::{Solver, TermId, TermPool};
use achilles_symvm::SymMessage;

use crate::predicate::{mix_tag, rename_fresh_tagged, ClientPathPredicate, FieldMask};

/// The negation of one client path predicate against a server message.
#[derive(Clone, Debug)]
pub struct NegatedPath {
    /// Index of the client path predicate this negates.
    pub client_index: usize,
    /// Per-field negation clauses `(field index, clause)`.
    pub field_clauses: Vec<(usize, TermId)>,
    /// The full disjunction of the clauses; `None` when no field could be
    /// negated (the negation under-approximates to `false`).
    pub disjunction: Option<TermId>,
}

/// Counters for one negation pre-computation.
#[derive(Clone, Copy, Debug, Default)]
pub struct NegateStats {
    /// Fields negated via the concrete-value rule.
    pub concrete_fields: u64,
    /// Fields negated via constraint renaming.
    pub symbolic_fields: u64,
    /// Fields skipped because they are unconstrained.
    pub skipped_unconstrained: u64,
    /// Clauses discarded by the §4.1 soundness check.
    pub discarded_unsound: u64,
    /// Time spent building and checking negations.
    pub time: Duration,
}

/// Negates a single field of a client path predicate.
///
/// `server_field` is the server-side term the clause constrains (normally
/// the received message's field variable). `tag` seeds the identity
/// fingerprints of the existential `λ'` copies (see
/// [`rename_fresh_tagged`]); callers negating several fields or paths must
/// pass distinct tags. Returns `None` when the field cannot be negated
/// (rule 3) or the clause fails the soundness check.
pub fn negate_field(
    pool: &mut TermPool,
    solver: &mut Solver,
    server_field: TermId,
    client: &ClientPathPredicate,
    field_idx: usize,
    tag: u64,
    stats: &mut NegateStats,
) -> Option<TermId> {
    let expr = client.message.value(field_idx);

    // Rule 1: concrete value.
    if let Some(c) = pool.as_const(expr) {
        stats.concrete_fields += 1;
        let cc = pool.constant(c, pool.width(expr));
        return Some(pool.ne(server_field, cc));
    }

    // Rule 2/3: symbolic expression.
    let vars = pool.vars_of(expr);
    let influencing = client.influencing_constraints(pool, &vars);
    if influencing.is_empty() {
        stats.skipped_unconstrained += 1;
        return None;
    }
    let mut to_rename = Vec::with_capacity(1 + influencing.len());
    to_rename.push(expr);
    to_rename.extend_from_slice(&influencing);
    let (renamed, _map) = rename_fresh_tagged(pool, &to_rename, tag);
    let expr_fresh = renamed[0];
    let q_fresh = pool.and_all(renamed[1..].iter().copied());
    let not_q = pool.not(q_fresh);
    let eq = pool.eq(server_field, expr_fresh);
    let clause = pool.and(eq, not_q);
    stats.symbolic_fields += 1;

    // §4.1 soundness check: discard the clause if it intersects the original
    // field predicate (a message the client *can* generate also satisfies
    // the clause).
    let mut common = Vec::with_capacity(2 + client.constraints.len());
    let orig_eq = pool.eq(server_field, expr);
    common.push(orig_eq);
    common.extend_from_slice(&client.constraints);
    common.push(clause);
    if solver.is_sat(pool, &common) {
        stats.discarded_unsound += 1;
        return None;
    }
    Some(clause)
}

/// Negates a whole client path predicate against the server message
/// (disjunction of per-field clauses, masked fields excluded).
pub fn negate_path(
    pool: &mut TermPool,
    solver: &mut Solver,
    server_msg: &SymMessage,
    client: &ClientPathPredicate,
    mask: &FieldMask,
    stats: &mut NegateStats,
) -> NegatedPath {
    let started = Instant::now();
    // Tag seed for the existential copies: unique per (server message,
    // client path), stable across pool forks — the server message's field
    // terms pre-date any fork, so their fingerprints agree in every worker.
    let salt = server_msg
        .values()
        .iter()
        .fold(0x4E45_4741_5445_0000_u64, |acc, &t| {
            mix_tag(acc, (pool.term_fp(t) >> 64) as u64 ^ pool.term_fp(t) as u64)
        });
    let path_salt = mix_tag(salt, client.index as u64);
    let mut field_clauses = Vec::new();
    for field_idx in 0..server_msg.values().len() {
        if mask.contains(field_idx) {
            continue;
        }
        let server_field = server_msg.value(field_idx);
        let tag = mix_tag(path_salt, field_idx as u64);
        if let Some(clause) =
            negate_field(pool, solver, server_field, client, field_idx, tag, stats)
        {
            field_clauses.push((field_idx, clause));
        }
    }
    let disjunction = if field_clauses.is_empty() {
        None
    } else {
        Some(pool.or_all(field_clauses.iter().map(|&(_, c)| c)))
    };
    stats.time += started.elapsed();
    NegatedPath {
        client_index: client.index,
        field_clauses,
        disjunction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::ClientPredicate;
    use achilles_solver::Width;
    use achilles_symvm::{Executor, ExploreConfig, MessageLayout, PathResult, SymEnv};
    use std::sync::Arc;

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("m")
            .field("cmd", Width::W8)
            .field("addr", Width::W32)
            .field("free", Width::W16)
            .build()
    }

    /// Client: cmd is the concrete value 7, addr validated into [0, 100),
    /// free is sent unvalidated.
    fn client_predicate() -> (TermPool, Solver, ClientPredicate) {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
        let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
            let addr = env.sym("addr", Width::W32);
            let free = env.sym("free", Width::W16);
            let hundred = env.constant(100, Width::W32);
            let zero = env.constant(0, Width::W32);
            if !env.if_slt(addr, hundred)? {
                return Ok(());
            }
            if env.if_slt(addr, zero)? {
                return Ok(());
            }
            let cmd = env.constant(7, Width::W8);
            env.send(achilles_symvm::SymMessage::new(
                layout(),
                vec![cmd, addr, free],
            ));
            Ok(())
        });
        let pred = ClientPredicate::from_exploration(&result);
        (pool, solver, pred)
    }

    #[test]
    fn concrete_field_negates_to_disequality() {
        let (mut pool, mut solver, pred) = client_predicate();
        let server_msg = SymMessage::fresh(&mut pool, &layout(), "smsg");
        let mut stats = NegateStats::default();
        let clause = negate_field(
            &mut pool,
            &mut solver,
            server_msg.value(0),
            &pred.paths[0],
            0,
            0xA0,
            &mut stats,
        )
        .expect("cmd is negatable");
        // smsg.cmd == 7 contradicts the clause; smsg.cmd == 8 satisfies it.
        let seven = pool.constant(7, Width::W8);
        let pin7 = pool.eq(server_msg.value(0), seven);
        assert!(solver.is_unsat(&mut pool, &[clause, pin7]));
        let eight = pool.constant(8, Width::W8);
        let pin8 = pool.eq(server_msg.value(0), eight);
        assert!(solver.is_sat(&mut pool, &[clause, pin8]));
        assert_eq!(stats.concrete_fields, 1);
    }

    #[test]
    fn constrained_symbolic_field_negates_to_out_of_range() {
        let (mut pool, mut solver, pred) = client_predicate();
        let server_msg = SymMessage::fresh(&mut pool, &layout(), "smsg");
        let mut stats = NegateStats::default();
        let clause = negate_field(
            &mut pool,
            &mut solver,
            server_msg.value(1),
            &pred.paths[0],
            1,
            0xA1,
            &mut stats,
        )
        .expect("addr is negatable");
        // In-range address contradicts the negation…
        let fifty = pool.constant(50, Width::W32);
        let pin_in = pool.eq(server_msg.value(1), fifty);
        assert!(solver.is_unsat(&mut pool, &[clause, pin_in]));
        // …negative and too-large addresses satisfy it.
        for bad in [-1i64, -1000, 100, 100_000] {
            let c = pool.constant_signed(bad, Width::W32);
            let pin = pool.eq(server_msg.value(1), c);
            assert!(
                solver.is_sat(&mut pool, &[clause, pin]),
                "address {bad} should be un-generable"
            );
        }
        assert_eq!(stats.symbolic_fields, 1);
        assert_eq!(stats.discarded_unsound, 0);
    }

    #[test]
    fn unconstrained_field_is_skipped() {
        let (mut pool, mut solver, pred) = client_predicate();
        let server_msg = SymMessage::fresh(&mut pool, &layout(), "smsg");
        let mut stats = NegateStats::default();
        let clause = negate_field(
            &mut pool,
            &mut solver,
            server_msg.value(2),
            &pred.paths[0],
            2,
            0xA2,
            &mut stats,
        );
        assert!(clause.is_none(), "free field cannot be negated");
        assert_eq!(stats.skipped_unconstrained, 1);
    }

    #[test]
    fn negate_path_is_disjunction_of_fields() {
        let (mut pool, mut solver, pred) = client_predicate();
        let server_msg = SymMessage::fresh(&mut pool, &layout(), "smsg");
        let mut stats = NegateStats::default();
        let neg = negate_path(
            &mut pool,
            &mut solver,
            &server_msg,
            &pred.paths[0],
            &FieldMask::none(),
            &mut stats,
        );
        assert_eq!(
            neg.field_clauses.len(),
            2,
            "cmd and addr clauses; free skipped"
        );
        let disj = neg.disjunction.expect("nonempty");
        // A message the client can send violates the disjunction…
        let seven = pool.constant(7, Width::W8);
        let fifty = pool.constant(50, Width::W32);
        let pin_cmd = pool.eq(server_msg.value(0), seven);
        let pin_addr = pool.eq(server_msg.value(1), fifty);
        assert!(solver.is_unsat(&mut pool, &[disj, pin_cmd, pin_addr]));
        // …but wrong cmd or out-of-range addr satisfies it.
        let neg_addr = pool.constant_signed(-3, Width::W32);
        let pin_bad_addr = pool.eq(server_msg.value(1), neg_addr);
        assert!(solver.is_sat(&mut pool, &[disj, pin_cmd, pin_bad_addr]));
    }

    #[test]
    fn mask_removes_fields_from_negation() {
        let (mut pool, mut solver, pred) = client_predicate();
        let server_msg = SymMessage::fresh(&mut pool, &layout(), "smsg");
        let l = layout();
        let mask = FieldMask::by_names(&l, &["cmd"]);
        let mut stats = NegateStats::default();
        let neg = negate_path(
            &mut pool,
            &mut solver,
            &server_msg,
            &pred.paths[0],
            &mask,
            &mut stats,
        );
        assert_eq!(neg.field_clauses.len(), 1, "only addr remains");
        assert_eq!(neg.field_clauses[0].0, 1);
    }
}
