//! Witness refinement by focused client re-execution (§4.1).
//!
//! The paper's false-positive discussion proposes, as future work, "using
//! the expressions that define Trojan messages to guide a new symbolic
//! execution of the client node; this approach is similar in spirit to the
//! abstraction refinement in CEGAR". This module implements it: a reported
//! witness is taken back to the **client program itself** (not the
//! already-extracted predicate) and the client is re-explored under
//! possibly *larger* bounds, with an observer that prunes every client path
//! that can no longer emit the witness.
//!
//! This closes the §4.1 false-positive window: if the phase-1 client
//! exploration was truncated (path or depth limits), a message may have
//! been reported Trojan only because its generating path was never seen.
//! Refinement either **confirms** the witness (no client path can emit it,
//! even under the larger bounds) or **refutes** it (and names the
//! generating path).

use achilles_solver::{Solver, TermId, TermPool};
use achilles_symvm::{
    Executor, ExploreConfig, NodeProgram, ObserverCx, PathObserver, PathRecord, SymMessage,
};

use crate::predicate::FieldMask;

/// The outcome of refining one witness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Refinement {
    /// No client path (within the refinement bounds) generates the witness:
    /// the Trojan is confirmed.
    ConfirmedTrojan {
        /// Client paths explored during refinement.
        explored_paths: usize,
    },
    /// A client path generates the witness — it was a false positive of the
    /// (truncated) phase-1 exploration.
    Refuted {
        /// Id of the generating client path.
        client_path_id: usize,
        /// Its notes (which utility / input scenario emits the message).
        notes: Vec<String>,
    },
}

impl Refinement {
    /// Whether the witness survived refinement.
    pub fn is_confirmed(&self) -> bool {
        matches!(self, Refinement::ConfirmedTrojan { .. })
    }
}

/// Observer that prunes client paths as soon as their constraints
/// contradict emitting the witness — the "focused symbolic execution" of
/// §4.1 (ESD / demand-driven style): instead of blindly re-exploring the
/// client, whole subtrees that cannot reach the witness are cut.
struct WitnessFocus {
    witness: Vec<u64>,
    masked: std::collections::HashSet<usize>,
    generating_path: Option<(usize, Vec<String>)>,
}

impl WitnessFocus {
    /// Can any message sent on a path with constraints `pc` equal the
    /// witness? Conservative: if the path has not sent yet, only the path
    /// constraints are checked (sending may still happen deeper).
    fn can_emit(
        &self,
        pool: &mut TermPool,
        solver: &mut Solver,
        pc: &[TermId],
        sent: Option<&SymMessage>,
    ) -> bool {
        let mut query = pc.to_vec();
        if let Some(msg) = sent {
            for (fi, (&expr, &value)) in msg.values().iter().zip(&self.witness).enumerate() {
                if self.masked.contains(&fi) {
                    continue;
                }
                let w = pool.width(expr);
                let c = pool.constant(value, w);
                let eq = pool.eq(expr, c);
                query.push(eq);
            }
        }
        !solver.is_unsat(pool, &query)
    }
}

impl PathObserver for WitnessFocus {
    fn on_constraint(&mut self, cx: &mut ObserverCx<'_>) -> bool {
        // Prune subtrees whose path condition is already incompatible with
        // *any* message value — cheap guided pruning. Message-level checks
        // happen at path end (messages are known then).
        let pc = cx.pc.to_vec();
        self.can_emit(cx.pool, cx.solver, &pc, None)
    }

    fn on_path_end(&mut self, cx: &mut ObserverCx<'_>, record: &PathRecord) {
        if self.generating_path.is_some() {
            return;
        }
        for msg in &record.sent {
            let pc = record.constraints.clone();
            if self.can_emit(cx.pool, cx.solver, &pc, Some(msg)) {
                self.generating_path = Some((record.id, record.notes.clone()));
                return;
            }
        }
    }
}

/// Refines a witness against the client program under `bounds`.
///
/// Typically `bounds` is *larger* than the phase-1 exploration config
/// (deeper paths, more of them), so refinement can refute witnesses the
/// truncated first pass missed.
pub fn refine_witness(
    pool: &mut TermPool,
    solver: &mut Solver,
    client: &(dyn NodeProgram + Sync),
    witness_fields: &[u64],
    mask: &FieldMask,
    bounds: &ExploreConfig,
) -> Refinement {
    let mut focus = WitnessFocus {
        witness: witness_fields.to_vec(),
        masked: mask.indices().clone(),
        generating_path: None,
    };
    let result = {
        let mut exec = Executor::new(pool, solver, bounds.clone());
        exec.explore_observed(client, &mut focus)
    };
    match focus.generating_path {
        Some((client_path_id, notes)) => Refinement::Refuted {
            client_path_id,
            notes,
        },
        None => Refinement::ConfirmedTrojan {
            explored_paths: result.paths.len(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::Width;
    use achilles_symvm::{MessageLayout, PathResult, SymEnv};
    use std::sync::Arc;

    fn layout() -> Arc<MessageLayout> {
        MessageLayout::builder("m")
            .field("op", Width::W8)
            .field("key", Width::W16)
            .build()
    }

    /// Client with a rare deep path: op 2 is only sent after a long chain
    /// of guards, so shallow explorations miss it.
    fn deep_client(env: &mut SymEnv<'_>) -> PathResult<()> {
        let key = env.sym("key", Width::W16);
        let cap = env.constant(100, Width::W16);
        if !env.if_ult(key, cap)? {
            return Ok(());
        }
        // A chain of guards hiding the "admin" message variant.
        let mut all_set = true;
        for i in 0..6 {
            let flag = env.sym(&format!("flag{i}"), Width::BOOL);
            if !env.branch(flag)? {
                all_set = false;
                break;
            }
        }
        let op = if all_set {
            env.constant(2, Width::W8) // rare admin message
        } else {
            env.constant(1, Width::W8)
        };
        env.send(SymMessage::new(layout(), vec![op, key]));
        Ok(())
    }

    #[test]
    fn confirms_genuine_trojans() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        // op=3 is not generable on any path.
        let witness = vec![3u64, 50];
        let r = refine_witness(
            &mut pool,
            &mut solver,
            &deep_client,
            &witness,
            &FieldMask::none(),
            &ExploreConfig::default(),
        );
        assert!(r.is_confirmed(), "{r:?}");
    }

    #[test]
    fn refutes_deep_false_positives() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        // op=2 IS generable — but only on the deep all-flags path that a
        // truncated phase-1 exploration (max_depth 3) would never see.
        let shallow = ExploreConfig {
            max_depth: 3,
            ..ExploreConfig::default()
        };
        let witness = vec![2u64, 50];
        let r_shallow = refine_witness(
            &mut pool,
            &mut solver,
            &deep_client,
            &witness,
            &FieldMask::none(),
            &shallow,
        );
        assert!(
            r_shallow.is_confirmed(),
            "under truncated bounds it looks Trojan"
        );

        let full = ExploreConfig::default();
        let r_full = refine_witness(
            &mut pool,
            &mut solver,
            &deep_client,
            &witness,
            &FieldMask::none(),
            &full,
        );
        assert!(
            matches!(r_full, Refinement::Refuted { .. }),
            "deeper refinement finds the generating path: {r_full:?}"
        );
    }

    #[test]
    fn refutes_out_of_range_key_only_when_in_range() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        // key 200 is out of the client's validated range: Trojan.
        let witness = vec![1u64, 200];
        let r = refine_witness(
            &mut pool,
            &mut solver,
            &deep_client,
            &witness,
            &FieldMask::none(),
            &ExploreConfig::default(),
        );
        assert!(r.is_confirmed());
        // key 50 with op 1 is ordinary traffic: refuted.
        let witness2 = vec![1u64, 50];
        let r2 = refine_witness(
            &mut pool,
            &mut solver,
            &deep_client,
            &witness2,
            &FieldMask::none(),
            &ExploreConfig::default(),
        );
        assert!(matches!(r2, Refinement::Refuted { .. }));
    }

    #[test]
    fn masked_fields_are_ignored_during_refinement() {
        let mut pool = TermPool::new();
        let mut solver = Solver::new();
        let l = layout();
        // With `op` masked, witness op=3 key=50 matches an op=1 path.
        let mask = FieldMask::by_names(&l, &["op"]);
        let witness = vec![3u64, 50];
        let r = refine_witness(
            &mut pool,
            &mut solver,
            &deep_client,
            &witness,
            &mask,
            &ExploreConfig::default(),
        );
        assert!(matches!(r, Refinement::Refuted { .. }));
    }
}
