pub fn anchor() {}
