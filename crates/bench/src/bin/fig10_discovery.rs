//! Regenerates **Figure 10** (§6.2): percentage of the known Trojan
//! messages discovered as a function of server-analysis time, plus the
//! §6.2 phase-time breakdown (client 3 min / preprocess 15 min / server
//! 45 min on the paper's testbed — shapes, not absolutes, are the target).
//!
//! ```text
//! cargo run --release -p achilles-bench --bin fig10_discovery \
//!     [-- --target NAME] [-- --workers N] [-- --validate]
//! ```
//!
//! The bin is registry-driven: `--target` selects any registered
//! [`TargetSpec`](achilles::TargetSpec) (default `fsp`, the paper's
//! figure) and the whole pipeline — discovery curve, expected-count check,
//! optional concrete replay — runs without naming a protocol.
//!
//! With `--check-proofs` (or `ACHILLES_CHECK_PROOFS=1`), every unsat
//! verdict the discovery produces is validated by the independent
//! certificate checker; the first rejection aborts the run.

use achilles::AchillesSession;
use achilles_bench::{
    arg_present, arg_value_required, bar, fmt_secs, header, row, trace_path_from_args,
    validate_spec_result, workers_from_args, write_trace,
};
use achilles_targets::builtin_registry;

fn main() {
    let trace = trace_path_from_args();
    let workers = workers_from_args();
    let registry = builtin_registry();
    let name = arg_value_required("--target").unwrap_or_else(|| "fsp".to_string());
    let Some(spec) = registry.get(&name) else {
        eprintln!(
            "unknown --target {name:?}; registered targets: {}",
            registry.names().join(", ")
        );
        std::process::exit(2);
    };
    let check_proofs = if arg_present("--check-proofs") {
        achilles_proofcheck::install_audit();
        true
    } else {
        achilles_proofcheck::install_audit_from_env()
    };
    header(&format!(
        "Figure 10 — Trojan discovery over server-analysis time ({name}, {workers} worker(s))"
    ));
    let (audit_before, _) = achilles_solver::proof_audit_stats();
    let mut session = AchillesSession::new(&**spec).workers(workers);
    let report = session.run();
    let cache_stats = session.engine().shared_cache().stats();
    let (audit_after, audit_wall) = achilles_solver::proof_audit_stats();

    println!(
        "{}",
        row(
            "phase: client predicate",
            fmt_secs(report.phase_times.client)
        )
    );
    println!(
        "{}",
        row(
            "phase: preprocessing",
            fmt_secs(report.phase_times.preprocess)
        )
    );
    println!(
        "{}",
        row(
            "phase: server analysis",
            fmt_secs(report.phase_times.server)
        )
    );
    println!("{}", row("Trojans discovered", report.trojans.len()));
    println!(
        "{}",
        row(
            "certified unsat",
            format!(
                "{} ({} subsumption hits)",
                cache_stats.certified_unsat, cache_stats.core_subsumption_hits
            )
        )
    );
    if check_proofs {
        let audited = audit_after - audit_before;
        println!(
            "{}",
            row(
                "proof audit",
                format!(
                    "{} certificates checked ({})",
                    audited,
                    fmt_secs(audit_wall)
                )
            )
        );
        assert!(
            audited >= cache_stats.certified_unsat,
            "the audit must cover every certificate the discovery published"
        );
    }

    let expected = spec.expected_trojans().unwrap_or(report.trojans.len()) as f64;

    // Discovery curve: found_at timestamps are relative to the server
    // analysis start.
    println!("\n  time_ms,percent_found");
    let mut rows = Vec::new();
    for (i, t) in report.trojans.iter().enumerate() {
        let pct = (i + 1) as f64 / expected * 100.0;
        rows.push((t.found_at.as_secs_f64() * 1000.0, pct));
    }
    // Downsample to at most 20 printed points to keep the figure readable.
    let step = (rows.len() / 20).max(1);
    for (i, (ms, pct)) in rows.iter().enumerate() {
        if i % step == 0 || i + 1 == rows.len() {
            println!("  {ms:.1},{pct:.1}  |{}", bar(*pct, 100.0, 40));
        }
    }

    let first = rows.first().map(|r| r.0).unwrap_or(0.0);
    let last = rows.last().map(|r| r.0).unwrap_or(0.0);
    let total_ms = report.phase_times.server.as_secs_f64() * 1000.0;
    header("paper vs measured");
    println!("  paper:    first Trojan at ~44% of server analysis, all by ~96% (20/43/45 min)");
    println!(
        "  measured: first at {:.0}% of server analysis, all by {:.0}% ({:.0}/{:.0}/{:.0} ms)",
        first / total_ms.max(1e-9) * 100.0,
        last / total_ms.max(1e-9) * 100.0,
        first,
        last,
        total_ms
    );
    println!("  shape:    discovery is incremental — interrupting early still yields results");
    if let Some(expected) = spec.expected_trojans() {
        assert_eq!(
            report.trojans.len(),
            expected,
            "all known {name} Trojans discovered"
        );
    }

    if arg_present("--validate") {
        let summary = validate_spec_result(&**spec, &report.trojans, workers);
        assert_eq!(
            summary.confirmed,
            report.trojans.len(),
            "every discovered Trojan replays to a concrete failure"
        );
    }

    if let Some(path) = &trace {
        write_trace(path);
    }
}
