//! Regenerates **Figure 10** (§6.2): percentage of the known FSP Trojan
//! messages discovered as a function of server-analysis time, plus the
//! §6.2 phase-time breakdown (client 3 min / preprocess 15 min / server
//! 45 min on the paper's testbed — shapes, not absolutes, are the target).
//!
//! ```text
//! cargo run --release -p achilles-bench --bin fig10_discovery [-- --workers N] [-- --validate]
//! ```
//!
//! With `--validate`, every discovered Trojan is additionally replayed
//! against the concrete FSP deployment (the opt-in validate phase).

use achilles_bench::{
    arg_present, bar, fmt_secs, header, row, validate_fsp_result, workers_from_args,
};
use achilles_fsp::{expected_length_mismatch_trojans, run_analysis, FspAnalysisConfig};

fn main() {
    let workers = workers_from_args();
    header(&format!(
        "Figure 10 — Trojan discovery over server-analysis time (FSP, {workers} worker(s))"
    ));
    let config = FspAnalysisConfig::accuracy().with_workers(workers);
    let result = run_analysis(&config);
    let expected = expected_length_mismatch_trojans(config.commands.len()) as f64;

    println!(
        "{}",
        row("phase: client predicate", fmt_secs(result.client_time))
    );
    println!(
        "{}",
        row("phase: preprocessing", fmt_secs(result.preprocess_time))
    );
    println!(
        "{}",
        row("phase: server analysis", fmt_secs(result.server_time))
    );
    println!("{}", row("Trojans discovered", result.trojans.len()));

    // Discovery curve: found_at timestamps are relative to the server
    // analysis start.
    println!("\n  time_ms,percent_found");
    let mut rows = Vec::new();
    for (i, t) in result.trojans.iter().enumerate() {
        let pct = (i + 1) as f64 / expected * 100.0;
        rows.push((t.found_at.as_secs_f64() * 1000.0, pct));
    }
    // Downsample to at most 20 printed points to keep the figure readable.
    let step = (rows.len() / 20).max(1);
    for (i, (ms, pct)) in rows.iter().enumerate() {
        if i % step == 0 || i + 1 == rows.len() {
            println!("  {ms:.1},{pct:.1}  |{}", bar(*pct, 100.0, 40));
        }
    }

    let first = rows.first().map(|r| r.0).unwrap_or(0.0);
    let last = rows.last().map(|r| r.0).unwrap_or(0.0);
    let total_ms = result.server_time.as_secs_f64() * 1000.0;
    header("paper vs measured");
    println!("  paper:    first Trojan at ~44% of server analysis, all by ~96% (20/43/45 min)");
    println!(
        "  measured: first at {:.0}% of server analysis, all by {:.0}% ({:.0}/{:.0}/{:.0} ms)",
        first / total_ms * 100.0,
        last / total_ms * 100.0,
        first,
        last,
        total_ms
    );
    println!("  shape:    discovery is incremental — interrupting early still yields results");
    assert_eq!(rows.len() as f64, expected, "all known Trojans discovered");

    if arg_present("--validate") {
        let summary = validate_fsp_result(&result, &config, workers);
        assert_eq!(
            summary.confirmed,
            result.trojans.len(),
            "every discovered Trojan replays to a concrete failure"
        );
    }
}
