//! Parallel scaling of the Trojan search: the Figure 10 discovery workload
//! swept over `workers ∈ {1, 2, 4, 8}`.
//!
//! Prints a scaling table and, with `--json [PATH]`, emits a machine-readable
//! `BENCH_parallel.json` (default path) so the perf trajectory is tracked
//! from commit to commit. The sweep also asserts that every worker count
//! finds the identical Trojan set — scaling must never buy speed with
//! soundness.
//!
//! ```text
//! cargo run --release -p achilles-bench --bin parallel_scaling -- --json
//! ```

use std::time::Instant;

use achilles_bench::{
    arg_present, arg_value, bar, fmt_secs, header, host_cores, row, trace_path_from_args,
    write_trace,
};
use achilles_fsp::{run_analysis, FspAnalysisConfig};

struct Sweep {
    workers: usize,
    workers_effective: usize,
    wall_s: f64,
    server_s: f64,
    trojans: usize,
    steals: u64,
    shared_hits: u64,
    solver_queries: u64,
    certified_unsat: u64,
    core_subsumption_hits: u64,
    /// Proof-audit wall time during this sweep point (0 unless the audit
    /// is installed via `--check-proofs` / `ACHILLES_CHECK_PROOFS`).
    proof_check_wall_s: f64,
    /// Sum of worker busy time / (server wall clock x workers) — the
    /// ROADMAP's steal-granularity tuning criterion (< 0.7 at 8 workers
    /// means batch stealing is worth a look).
    efficiency: f64,
}

fn main() {
    let trace = trace_path_from_args();
    let cores = host_cores();
    // Post-parse branching deepens every accepting parse with state-dependent
    // subtrees (the regime of the paper's real run); it also makes the sweep
    // long enough that scaling is not noise-dominated.
    let depth: usize = arg_value("--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    header(&format!(
        "Parallel Trojan search scaling (fig10 workload, depth {depth}, {cores} core(s))"
    ));

    if arg_present("--check-proofs") {
        achilles_proofcheck::install_audit();
    } else {
        achilles_proofcheck::install_audit_from_env();
    }

    let sweep_counts = [1usize, 2, 4, 8];
    let mut sweeps: Vec<Sweep> = Vec::new();
    let mut witness_sets: Vec<Vec<Vec<u64>>> = Vec::new();
    for &workers in &sweep_counts {
        let mut config = FspAnalysisConfig::accuracy().with_workers(workers);
        config.server.post_parse_branching = depth;
        let (_, audit_wall_before) = achilles_solver::proof_audit_stats();
        let started = Instant::now();
        let result = run_analysis(&config);
        let wall = started.elapsed();
        let (_, audit_wall_after) = achilles_solver::proof_audit_stats();
        witness_sets.push(
            result
                .trojans
                .iter()
                .map(|t| t.witness_fields.clone())
                .collect(),
        );
        let busy: f64 = result
            .worker_stats
            .iter()
            .map(|w| w.busy.as_secs_f64())
            .sum();
        let server_s = result.server_time.as_secs_f64();
        sweeps.push(Sweep {
            workers,
            workers_effective: result.explore_stats.workers_effective.max(1),
            wall_s: wall.as_secs_f64(),
            server_s,
            trojans: result.trojans.len(),
            steals: result.explore_stats.steals,
            shared_hits: result.explore_stats.shared_cache_hits,
            solver_queries: result.worker_stats.iter().map(|w| w.queries).sum(),
            certified_unsat: result.explore_stats.certified_unsat,
            core_subsumption_hits: result.explore_stats.core_subsumption_hits,
            proof_check_wall_s: (audit_wall_after - audit_wall_before).as_secs_f64(),
            efficiency: (busy / (server_s.max(1e-9) * workers as f64)).min(1.0),
        });
        println!(
            "{}",
            row(
                &format!("workers={workers}"),
                format!(
                    "{} total / {} server, {} trojans, {} steals, {} shared hits, \
                     {} certified unsat ({} subsumed), {:.0}% eff",
                    fmt_secs(wall),
                    format_args!("{:.3}s", result.server_time.as_secs_f64()),
                    result.trojans.len(),
                    result.explore_stats.steals,
                    result.explore_stats.shared_cache_hits,
                    result.explore_stats.certified_unsat,
                    result.explore_stats.core_subsumption_hits,
                    sweeps.last().expect("just pushed").efficiency * 100.0,
                )
            )
        );
    }

    for ws in &witness_sets[1..] {
        assert_eq!(
            ws, &witness_sets[0],
            "every worker count must discover the identical Trojan set"
        );
    }

    header("server-phase speedup vs workers=1");
    let base = sweeps[0].server_s;
    for s in &sweeps {
        let speedup = base / s.server_s.max(1e-9);
        println!(
            "  {:>2} workers  {speedup:5.2}x  |{}",
            s.workers,
            bar(speedup, 8.0, 40)
        );
    }

    if arg_present("--json") {
        let path = arg_value("--json").unwrap_or_else(|| "BENCH_parallel.json".to_string());
        let path = if path.starts_with("--") {
            "BENCH_parallel.json".to_string()
        } else {
            path
        };
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"fig10_discovery_parallel\",\n");
        json.push_str(&format!(
            "  \"workload\": \"FSP accuracy, 8 utilities, post-parse depth {depth}\",\n"
        ));
        json.push_str(&format!("  \"host_cores\": {cores},\n"));
        json.push_str("  \"sweep\": [\n");
        for (i, s) in sweeps.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"workers\": {}, \"workers_effective\": {}, \"wall_s\": {:.4}, \
                 \"server_s\": {:.4}, \
                 \"speedup_vs_1\": {:.3}, \"trojans\": {}, \"steals\": {}, \
                 \"shared_cache_hits\": {}, \"solver_queries\": {}, \
                 \"certified_unsat\": {}, \"core_subsumption_hits\": {}, \
                 \"proof_check_wall_s\": {:.4}, \"efficiency\": {:.3}}}{}\n",
                s.workers,
                s.workers_effective,
                s.wall_s,
                s.server_s,
                base / s.server_s.max(1e-9),
                s.trojans,
                s.steals,
                s.shared_hits,
                s.solver_queries,
                s.certified_unsat,
                s.core_subsumption_hits,
                s.proof_check_wall_s,
                s.efficiency,
                if i + 1 == sweeps.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench json");
        println!("\n  wrote {path}");
    }

    if let Some(path) = &trace {
        write_trace(path);
    }
}
