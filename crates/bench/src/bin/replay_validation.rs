//! Concrete replay validation of every symbolically discovered Trojan —
//! the reproduction of the paper's "we validated the vulnerabilities by
//! injecting Trojan messages into the system" step, plus a worker-scaling
//! sweep of the replay phase.
//!
//! Discovers Trojans on FSP (accuracy configuration, eight utilities),
//! PBFT (paper configuration), and Paxos (concrete local-state scenario),
//! replays all of them against the concrete deployments, dedups confirmed
//! failures by crash signature, ddmin-minimizes the first witness of each
//! signature, and sweeps the replay fan-out over `workers ∈ {1, 2, 4, 8}`.
//! With `--json [PATH]` emits `BENCH_replay.json`.
//!
//! ```text
//! cargo run --release -p achilles-bench --bin replay_validation -- --json
//! ```

use std::time::Instant;

use achilles_bench::{arg_present, arg_value, header, row};
use achilles_fsp::{run_analysis as run_fsp, FspAnalysisConfig};
use achilles_paxos::{analyze_local_state, AcceptorMode, ProposerMode};
use achilles_pbft::{run_analysis as run_pbft, PbftAnalysisConfig};
use achilles_replay::{
    validate_trojans, FspTarget, PaxosTarget, PbftTarget, ReplayCorpus, ReplayTarget,
    ValidateConfig, ValidationSummary,
};

struct SystemRun {
    name: &'static str,
    discovered: usize,
    confirmed: usize,
    signatures: usize,
    minimized_shrunk: usize,
    skipped_second_pass: usize,
}

fn validate_system(
    name: &'static str,
    target: &dyn ReplayTarget,
    trojans: &[achilles::TrojanReport],
) -> (SystemRun, ValidationSummary) {
    let mut corpus = ReplayCorpus::new();
    let config = ValidateConfig {
        minimize: true,
        ..ValidateConfig::default()
    };
    let summary = validate_trojans(target, trojans, &mut corpus, &config);
    // Second pass: the corpus must short-circuit every known witness.
    let second = validate_trojans(target, trojans, &mut corpus, &config);
    let run = SystemRun {
        name,
        discovered: trojans.len(),
        confirmed: summary.confirmed,
        signatures: corpus.distinct_signatures(),
        minimized_shrunk: summary
            .minimized
            .iter()
            .filter(|m| m.strictly_shrunk())
            .count(),
        skipped_second_pass: second.skipped_known,
    };
    println!(
        "{}",
        row(
            name,
            format!(
                "{} discovered, {} confirmed ({:.0}%), {} signatures, {} minimized-shrunk, \
                 {} skipped on re-run",
                run.discovered,
                run.confirmed,
                summary.confirmation_rate() * 100.0,
                run.signatures,
                run.minimized_shrunk,
                run.skipped_second_pass,
            )
        )
    );
    assert_eq!(
        run.confirmed, run.discovered,
        "{name}: every symbolic Trojan must replay to a concrete failure"
    );
    assert_eq!(
        run.skipped_second_pass, run.discovered,
        "{name}: the corpus must skip every known witness on re-analysis"
    );
    (run, summary)
}

fn main() {
    header("Concrete replay validation (FSP + PBFT + Paxos)");

    // --- Discover. -------------------------------------------------------
    let fsp_config = FspAnalysisConfig::accuracy();
    let fsp = run_fsp(&fsp_config);
    let pbft = run_pbft(&PbftAnalysisConfig::paper());
    let (_paxos_pool, paxos_trojans) =
        analyze_local_state(ProposerMode::Concrete(5, 7), AcceptorMode::Concrete(5), 1);

    // --- Validate each system. -------------------------------------------
    let fsp_target = FspTarget::new(fsp_config.server.clone(), fsp_config.client.glob_expansion);
    let pbft_target = PbftTarget::default();
    let paxos_target = PaxosTarget::new(5, ProposerMode::Concrete(5, 7));
    let runs = [
        validate_system("fsp", &fsp_target, &fsp.trojans).0,
        validate_system("pbft", &pbft_target, &pbft.trojans).0,
        validate_system("paxos", &paxos_target, &paxos_trojans).0,
    ];

    // --- Worker sweep over the largest witness set (FSP). -----------------
    header("replay fan-out sweep (FSP witnesses)");
    let sweep_counts = [1usize, 2, 4, 8];
    let mut sweep = Vec::new();
    let mut reference: Option<Vec<(Vec<u64>, String)>> = None;
    for &workers in &sweep_counts {
        let mut corpus = ReplayCorpus::new();
        let started = Instant::now();
        let summary = validate_trojans(
            &fsp_target,
            &fsp.trojans,
            &mut corpus,
            &ValidateConfig::default().with_workers(workers),
        );
        let wall = started.elapsed().as_secs_f64();
        let key: Vec<(Vec<u64>, String)> = summary
            .results
            .iter()
            .map(|r| (r.witness.fields.clone(), r.signature.to_line()))
            .collect();
        match &reference {
            None => reference = Some(key),
            Some(r) => assert_eq!(
                r, &key,
                "replay results must be identical for every worker count"
            ),
        }
        let wps = summary.replayed as f64 / wall.max(1e-9);
        println!(
            "{}",
            row(
                &format!("workers={workers}"),
                format!("{:.3}s, {:.0} witnesses/s", wall, wps)
            )
        );
        sweep.push((workers, wall, wps));
    }

    if arg_present("--json") {
        let path = arg_value("--json").unwrap_or_else(|| "BENCH_replay.json".to_string());
        let path = if path.starts_with("--") {
            "BENCH_replay.json".to_string()
        } else {
            path
        };
        let mut json = String::new();
        json.push_str("{\n  \"bench\": \"replay_validation\",\n  \"systems\": [\n");
        for (i, r) in runs.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"system\": \"{}\", \"discovered\": {}, \"confirmed\": {}, \
                 \"signatures\": {}, \"minimized_shrunk\": {}, \"skipped_on_rerun\": {}}}{}\n",
                r.name,
                r.discovered,
                r.confirmed,
                r.signatures,
                r.minimized_shrunk,
                r.skipped_second_pass,
                if i + 1 == runs.len() { "" } else { "," },
            ));
        }
        json.push_str("  ],\n  \"sweep\": [\n");
        for (i, (workers, wall, wps)) in sweep.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"workers\": {workers}, \"wall_s\": {wall:.4}, \
                 \"witnesses_per_sec\": {wps:.1}}}{}\n",
                if i + 1 == sweep.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench json");
        println!("\n  wrote {path}");
    }
}
