//! Concrete replay validation of every symbolically discovered Trojan —
//! the reproduction of the paper's "we validated the vulnerabilities by
//! injecting Trojan messages into the system" step, plus a worker-scaling
//! sweep of the replay phase.
//!
//! The bin is registry-driven: it iterates every registered
//! [`TargetSpec`](achilles::TargetSpec) (or one selected with
//! `--target NAME`), discovers Trojans with an
//! [`AchillesSession`](achilles::AchillesSession) under the spec's default
//! configuration, replays all of them against the spec's concrete
//! deployment, dedups confirmed failures by crash signature,
//! ddmin-minimizes the first witness of each signature, and sweeps the
//! replay fan-out over `workers ∈ {1, 2, 4, 8}`. There is no per-protocol
//! code path: onboarding a protocol adds a row here automatically.
//!
//! ```text
//! cargo run --release -p achilles-bench --bin replay_validation -- --json
//! ```
//!
//! With `--corpus DIR`, each target's confirmed witnesses persist to
//! `DIR/<name>.corpus` (and `DIR/<name>.sessions.corpus`) across runs (the
//! CI cache wires this up keyed on the corpus format version), so
//! cross-commit re-validation is incremental: already-known witnesses are
//! skipped, not replayed.
//!
//! With `--sessions`, every declared multi-message session is additionally
//! discovered through [`AchillesSession::run_sessions`] and validated
//! under the fault-free [`FaultSchedule`](achilles_replay::FaultSchedule),
//! adding per-session rows to the report and to `BENCH_replay.json`.

use std::path::PathBuf;
use std::time::Instant;

use achilles::AchillesSession;
use achilles_bench::{arg_present, arg_value, arg_value_required, header, host_cores, row};
use achilles_replay::{
    validate_spec, validate_spec_sessions, ReplayCorpus, SessionValidateConfig, ValidateConfig,
};
use achilles_targets::builtin_registry;

struct SystemRun {
    name: &'static str,
    discovered: usize,
    confirmed: usize,
    skipped_known: usize,
    signatures: usize,
    minimized_shrunk: usize,
    skipped_second_pass: usize,
}

struct SessionRun {
    name: &'static str,
    session: String,
    discovered: usize,
    confirmed: usize,
    skipped_known: usize,
    signatures: usize,
    skipped_second_pass: usize,
}

fn corpus_path(dir: &str, name: &str) -> PathBuf {
    PathBuf::from(dir).join(format!("{name}.corpus"))
}

/// Loads a corpus, treating a malformed file as empty *loudly* (the
/// strict v2 parser reports the offending line; a CI cache hit on a
/// corrupt file should re-validate, not crash the bench).
fn load_corpus(path: &std::path::Path) -> ReplayCorpus {
    match ReplayCorpus::load(path) {
        Ok(corpus) => corpus,
        Err(e) => {
            eprintln!(
                "warning: ignoring corpus {} ({e}); re-validating from scratch",
                path.display()
            );
            ReplayCorpus::new()
        }
    }
}

fn session_corpus_path(dir: &str, name: &str) -> PathBuf {
    PathBuf::from(dir).join(format!("{name}.sessions.corpus"))
}

fn validate_sessions(spec: &dyn achilles::TargetSpec, corpus_dir: Option<&str>) -> Vec<SessionRun> {
    let name = spec.name();
    let mut driver = AchillesSession::new(spec);
    let reports = driver.run_sessions();
    let mut corpus = match corpus_dir {
        Some(dir) => load_corpus(&session_corpus_path(dir, name)),
        None => ReplayCorpus::new(),
    };
    let mut runs = Vec::with_capacity(reports.len());
    for report in &reports {
        let config = SessionValidateConfig {
            minimize: true,
            ..SessionValidateConfig::default()
        };
        let summary = validate_spec_sessions(spec, report, &mut corpus, &config);
        // Second pass: the corpus must short-circuit every known session.
        let second = validate_spec_sessions(spec, report, &mut corpus, &config);
        let run = SessionRun {
            name,
            session: report.session.clone(),
            discovered: report.trojans.len(),
            confirmed: summary.confirmed,
            skipped_known: summary.skipped_known,
            signatures: summary.confirmed_signatures.len(),
            skipped_second_pass: second.skipped_known,
        };
        println!(
            "{}",
            row(
                &format!("{name}/{}", run.session),
                format!(
                    "{} session Trojans, {} confirmed ({:.0}%), {} known-skipped, \
                     {} new signatures, {} skipped on re-run",
                    run.discovered,
                    run.confirmed,
                    summary.confirmation_rate() * 100.0,
                    run.skipped_known,
                    run.signatures,
                    run.skipped_second_pass,
                )
            )
        );
        assert_eq!(
            run.confirmed + run.skipped_known,
            run.discovered,
            "{name}/{}: every session Trojan must replay to a concrete \
             failure (or already be a known confirmed session witness)",
            run.session
        );
        assert_eq!(
            run.skipped_second_pass, run.discovered,
            "{name}/{}: the corpus must skip every known session witness",
            run.session
        );
        runs.push(run);
    }
    if let Some(dir) = corpus_dir {
        if !reports.is_empty() {
            std::fs::create_dir_all(dir).expect("create corpus dir");
            corpus
                .save(&session_corpus_path(dir, name))
                .expect("persist session corpus");
        }
    }
    runs
}

fn validate_system(
    spec: &dyn achilles::TargetSpec,
    trojans: &[achilles::TrojanReport],
    corpus_dir: Option<&str>,
) -> SystemRun {
    let name = spec.name();
    let mut corpus = match corpus_dir {
        Some(dir) => load_corpus(&corpus_path(dir, name)),
        None => ReplayCorpus::new(),
    };
    let config = ValidateConfig {
        minimize: true,
        ..ValidateConfig::default()
    };
    let summary = validate_spec(spec, trojans, &mut corpus, &config);
    // Second pass: the corpus must short-circuit every known witness.
    let second = validate_spec(spec, trojans, &mut corpus, &config);
    if let Some(dir) = corpus_dir {
        std::fs::create_dir_all(dir).expect("create corpus dir");
        corpus
            .save(&corpus_path(dir, name))
            .expect("persist corpus");
    }
    // Distinct signatures of *this run's* witnesses (replayed or already
    // known), not of the whole historical corpus — keeps the bench column
    // meaningful when `--corpus` preloads prior runs.
    let witness_fields: std::collections::HashSet<&[u64]> = trojans
        .iter()
        .map(|t| t.witness_fields.as_slice())
        .collect();
    let run_signatures = corpus
        .entries()
        .iter()
        .filter(|e| witness_fields.contains(e.fields.as_slice()))
        .map(|e| e.signature.clone())
        .collect::<std::collections::HashSet<_>>()
        .len();
    let run = SystemRun {
        name,
        discovered: trojans.len(),
        confirmed: summary.confirmed,
        skipped_known: summary.skipped_known,
        signatures: run_signatures,
        minimized_shrunk: summary
            .minimized
            .iter()
            .filter(|m| m.strictly_shrunk())
            .count(),
        skipped_second_pass: second.skipped_known,
    };
    println!(
        "{}",
        row(
            name,
            format!(
                "{} discovered, {} confirmed ({:.0}%), {} known-skipped, {} signatures, \
                 {} minimized-shrunk, {} skipped on re-run",
                run.discovered,
                run.confirmed,
                summary.confirmation_rate() * 100.0,
                run.skipped_known,
                run.signatures,
                run.minimized_shrunk,
                run.skipped_second_pass,
            )
        )
    );
    assert_eq!(
        run.confirmed + run.skipped_known,
        run.discovered,
        "{name}: every symbolic Trojan must replay to a concrete failure \
         (or already be a known confirmed witness)"
    );
    assert_eq!(
        run.skipped_second_pass, run.discovered,
        "{name}: the corpus must skip every known witness on re-analysis"
    );
    run
}

fn main() {
    let registry = builtin_registry();
    let selected = arg_value_required("--target");
    let names: Vec<&str> = match &selected {
        Some(name) => {
            if registry.get(name).is_none() {
                eprintln!(
                    "unknown --target {name:?}; registered targets: {}",
                    registry.names().join(", ")
                );
                std::process::exit(2);
            }
            vec![name.as_str()]
        }
        None => registry.names(),
    };
    let corpus_dir = arg_value_required("--corpus");

    header(&format!(
        "Concrete replay validation ({})",
        names.join(" + ")
    ));

    // --- Discover and validate each registered system. --------------------
    let sessions_enabled = arg_present("--sessions");
    let mut runs = Vec::new();
    let mut session_runs = Vec::new();
    let mut largest: Option<(&str, Vec<achilles::TrojanReport>)> = None;
    for name in &names {
        let spec = registry.get(name).expect("validated above");
        let report = AchillesSession::new(&**spec).run();
        let run = validate_system(&**spec, &report.trojans, corpus_dir.as_deref());
        if largest
            .as_ref()
            .map(|(_, t)| t.len() < report.trojans.len())
            .unwrap_or(true)
        {
            largest = Some((run.name, report.trojans));
        }
        runs.push(run);
        if sessions_enabled {
            session_runs.extend(validate_sessions(&**spec, corpus_dir.as_deref()));
        }
    }

    // --- Worker sweep over the largest witness set. -----------------------
    let (sweep_name, sweep_trojans) = largest.expect("at least one target");
    header(&format!("replay fan-out sweep ({sweep_name} witnesses)"));
    let sweep_spec = registry.get(sweep_name).expect("validated above");
    let sweep_counts = [1usize, 2, 4, 8];
    // (workers requested, workers effective, wall seconds, witnesses/sec).
    let mut sweep: Vec<(usize, usize, f64, f64)> = Vec::new();
    let mut reference: Option<Vec<(Vec<u64>, String)>> = None;
    for &workers in &sweep_counts {
        let mut corpus = ReplayCorpus::new();
        let started = Instant::now();
        let summary = validate_spec(
            &**sweep_spec,
            &sweep_trojans,
            &mut corpus,
            &ValidateConfig::default().with_workers(workers),
        );
        let wall = started.elapsed().as_secs_f64();
        let key: Vec<(Vec<u64>, String)> = summary
            .results
            .iter()
            .map(|r| (r.witness.fields.clone(), r.signature.to_line()))
            .collect();
        match &reference {
            None => reference = Some(key),
            Some(r) => assert_eq!(
                r, &key,
                "replay results must be identical for every worker count"
            ),
        }
        let wps = summary.replayed as f64 / wall.max(1e-9);
        // The replay fan-out claims items from a shared cursor: more
        // workers than witnesses can never run.
        let effective = workers.min(summary.replayed.max(1));
        println!(
            "{}",
            row(
                &format!("workers={workers}"),
                format!("{wall:.3}s, {wps:.0} witnesses/s ({effective} effective)")
            )
        );
        sweep.push((workers, effective, wall, wps));
    }

    if arg_present("--json") {
        let path = arg_value("--json").unwrap_or_else(|| "BENCH_replay.json".to_string());
        let path = if path.starts_with("--") {
            "BENCH_replay.json".to_string()
        } else {
            path
        };
        let mut json = String::new();
        json.push_str("{\n  \"bench\": \"replay_validation\",\n");
        json.push_str(&format!("  \"host_cores\": {},\n", host_cores()));
        json.push_str("  \"systems\": [\n");
        for (i, r) in runs.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"system\": \"{}\", \"discovered\": {}, \"confirmed\": {}, \
                 \"known_skipped\": {}, \"signatures\": {}, \"minimized_shrunk\": {}, \
                 \"skipped_on_rerun\": {}}}{}\n",
                r.name,
                r.discovered,
                r.confirmed,
                r.skipped_known,
                r.signatures,
                r.minimized_shrunk,
                r.skipped_second_pass,
                if i + 1 == runs.len() { "" } else { "," },
            ));
        }
        json.push_str("  ],\n  \"sessions\": [\n");
        for (i, r) in session_runs.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"system\": \"{}\", \"session\": \"{}\", \"discovered\": {}, \
                 \"confirmed\": {}, \"known_skipped\": {}, \"signatures\": {}, \
                 \"skipped_on_rerun\": {}}}{}\n",
                r.name,
                r.session,
                r.discovered,
                r.confirmed,
                r.skipped_known,
                r.signatures,
                r.skipped_second_pass,
                if i + 1 == session_runs.len() { "" } else { "," },
            ));
        }
        json.push_str("  ],\n  \"sweep\": [\n");
        for (i, (workers, effective, wall, wps)) in sweep.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"workers\": {workers}, \"workers_effective\": {effective}, \
                 \"wall_s\": {wall:.4}, \
                 \"witnesses_per_sec\": {wps:.1}}}{}\n",
                if i + 1 == sweep.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench json");
        println!("\n  wrote {path}");
    }
}
