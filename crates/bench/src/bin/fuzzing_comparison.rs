//! Regenerates the **§6.2 fuzzing comparison**: measured black-box fuzzing
//! throughput, the analytic probability of hitting a Trojan, the expected
//! discoveries per hour, and the false-positive flood — against Achilles
//! finding all 80 in one bounded run.
//!
//! ```text
//! cargo run --release -p achilles-bench --bin fuzzing_comparison
//! ```

use achilles_bench::{arg_present, fmt_secs, header, row, validate_spec_result};
use achilles_fsp::{expected_length_mismatch_trojans, run_analysis, FspAnalysisConfig};
use achilles_fuzz::{expectation, run_campaign, FuzzConfig};

fn main() {
    header("§6.2 — black-box fuzzing vs Achilles (FSP)");

    // In-process oracle classification: an upper bound on any fuzzer.
    let config = FuzzConfig {
        budget_tests: 5_000_000,
        ..FuzzConfig::default()
    };
    let report = run_campaign(&config);
    println!("{}", row("oracle-only tests executed", report.tests_run));
    println!("{}", row("oracle-only wall time", fmt_secs(report.elapsed)));
    println!(
        "{}",
        row(
            "oracle-only throughput (tests/min)",
            format!("{:.0}", report.tests_per_minute())
        )
    );

    // End-to-end against a deployed server (wire encode → parse → validate
    // → act → reply): the setup the paper's 75,000 tests/min measured.
    let e2e_config = FuzzConfig {
        budget_tests: 200_000,
        ..FuzzConfig::default()
    };
    let e2e = achilles_fuzz::run_e2e_campaign(&e2e_config);
    println!("{}", row("e2e tests executed", e2e.tests_run));
    println!("{}", row("e2e wall time", fmt_secs(e2e.elapsed)));
    println!(
        "{}",
        row(
            "e2e throughput (tests/min)",
            format!("{:.0}", e2e.tests_per_minute())
        )
    );
    println!("{}", row("messages accepted by server", e2e.accepted));
    println!(
        "{}",
        row("actual Trojans found by fuzzing", e2e.trojans_found)
    );

    let e = expectation(e2e.tests_per_minute(), false);
    println!("{}", row("Trojan messages in fuzzed space", e.trojan_count));
    println!(
        "{}",
        row("fuzzed space size", format!("{:.3e}", e.space_size))
    );
    println!(
        "{}",
        row(
            "P(random test is Trojan)",
            format!("{:.3e}", e.trojan_probability)
        )
    );
    println!(
        "{}",
        row(
            "expected Trojans per fuzzing hour",
            format!("{:.4}", e.expected_per_hour)
        )
    );
    println!(
        "{}",
        row(
            "accepted-but-valid msgs per hour (FPs)",
            format!("{:.1}", e.false_positives_per_hour)
        )
    );

    // Achilles on the same protocol and bounds.
    let a = run_analysis(&FspAnalysisConfig::accuracy());
    let total = a.client_time + a.preprocess_time + a.server_time;
    println!("{}", row("Achilles: Trojans found", a.trojans.len()));
    println!("{}", row("Achilles: total analysis time", fmt_secs(total)));

    // Apples-to-apples (the paper compares fuzzing against Achilles' own
    // runtime — one hour there): expected Trojans from fuzzing in the time
    // Achilles needs to find all 80.
    let expected_in_achilles_window = e.expected_per_hour / 3600.0 * total.as_secs_f64();
    println!(
        "{}",
        row(
            "expected fuzz Trojans in Achilles' runtime",
            format!("{expected_in_achilles_window:.6}")
        )
    );

    header("paper vs measured");
    println!("  paper:    75,000 tests/min; expected Trojans in Achilles' 1h window ≈ 1e-5;");
    println!("            4.5M FPs/h; Achilles: all 80");
    println!(
        "  measured: {:.0} tests/min (e2e); expected in Achilles' {} window ≈ {:.6};",
        e2e.tests_per_minute(),
        fmt_secs(total),
        expected_in_achilles_window,
    );
    println!(
        "            {:.0} accepted-but-valid msgs/h to sift; Achilles: all {}",
        e.false_positives_per_hour,
        a.trojans.len()
    );
    println!("  shape:    in the time Achilles finds every Trojan class, fuzzing expects ~zero");
    let _ = report;
    assert_eq!(a.trojans.len(), expected_length_mismatch_trojans(8));
    assert_eq!(
        e2e.trojans_found, 0,
        "a bounded fuzzing campaign finds nothing"
    );
    assert!(
        expected_in_achilles_window < 0.01,
        "fuzzing expects ~zero in the window"
    );

    // Replay-validate Achilles' findings: fuzzing found zero real Trojans,
    // while every symbolic finding reproduces as a concrete failure.
    if arg_present("--validate") {
        let spec = achilles_fsp::FspSpec::accuracy();
        let summary = validate_spec_result(&spec, &a.trojans, 1);
        assert_eq!(
            summary.confirmed,
            a.trojans.len(),
            "every discovered Trojan replays to a concrete failure"
        );
    }
}
