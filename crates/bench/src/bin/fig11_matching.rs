//! Regenerates **Figure 11** (§6.4): the number of client path predicates
//! that can still trigger each server execution path, as a function of the
//! length of the (partial) path. Uses the wildcard configuration so the
//! client predicate has hundreds of paths, like the paper's run.
//!
//! ```text
//! cargo run --release -p achilles-bench --bin fig11_matching [-- --workers N] [-- --validate]
//! ```
//!
//! With `--validate`, the discovered Trojans (wildcard family included) are
//! replayed against the concrete FSP deployment.

use achilles_bench::{arg_present, bar, header, row, validate_spec_result, workers_from_args};
use achilles_fsp::{run_analysis, FspAnalysisConfig};
use std::collections::BTreeMap;

fn main() {
    let workers = workers_from_args();
    header(&format!(
        "Figure 11 — matching client path predicates vs server path length (FSP, {workers} worker(s))"
    ));
    let config = FspAnalysisConfig::wildcard().with_workers(workers);
    let result = run_analysis(&config);
    println!("{}", row("client path predicates", result.client.len()));
    println!("{}", row("samples collected", result.samples.len()));

    // Aggregate: per path length, min/mean/max matching predicates.
    let mut by_len: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for s in &result.samples {
        by_len.entry(s.path_len).or_default().push(s.matching);
    }
    println!("\n  path_len,min_matching,mean_matching,max_matching,samples");
    let overall_max = result.client.len() as f64;
    for (len, matches) in &by_len {
        let min = *matches.iter().min().unwrap();
        let max = *matches.iter().max().unwrap();
        let mean = matches.iter().sum::<usize>() as f64 / matches.len() as f64;
        println!(
            "  {len},{min},{mean:.1},{max},{n}  |{}",
            bar(mean, overall_max, 40),
            n = matches.len()
        );
    }

    header("paper vs measured");
    println!("  paper:    predicates start near the full set and fall as paths specialize");
    let first_len = by_len.keys().next().copied().unwrap_or(0);
    let last_len = by_len.keys().last().copied().unwrap_or(0);
    let first_mean: f64 = {
        let v = &by_len[&first_len];
        v.iter().sum::<usize>() as f64 / v.len() as f64
    };
    let last_mean: f64 = {
        let v = &by_len[&last_len];
        v.iter().sum::<usize>() as f64 / v.len() as f64
    };
    println!(
        "  measured: mean matching falls {first_mean:.0} → {last_mean:.0} between path lengths {first_len} and {last_len}"
    );
    assert!(
        last_mean < first_mean,
        "matching predicates must decrease with depth"
    );

    if arg_present("--validate") {
        let spec = achilles_fsp::FspSpec::new(config.clone());
        let summary = validate_spec_result(&spec, &result.trojans, workers);
        assert_eq!(
            summary.confirmed,
            result.trojans.len(),
            "every discovered Trojan replays to a concrete failure"
        );
    }
}
