//! Soak the fleetd campaign service and measure its service-level
//! numbers: ingest→result latency, sustained cells/s, queue depth, and
//! fork-server savings — the operational counterpart of the batch
//! `sweep_campaign` bench.
//!
//! Three phases, all over the session-bearing specs of the registry:
//!
//! 1. **Latency** (`shards = 0`, pump-driven): each witness is ingested
//!    and pumped to completion on the calling thread, so the measured
//!    ingest→result wall time is pure campaign compute — no condvar
//!    wakeup quantization in the numbers.
//! 2. **Throughput/affinity** (`shards = 1`): the whole corpus streams in
//!    at once and drains through one executor — peak queue depth and
//!    batched fork-server savings come from here.
//! 3. **Scaling** (`shards = 8`): the same stream against eight
//!    executors. `efficiency` is (shard-1 wall ÷ shard-8 wall) ÷
//!    min(8, host cores); on a multicore host below 0.7 the bin flags a
//!    batch-stealing follow-up (on a 1-core host the number is recorded
//!    but can't mean anything).
//!
//! `--json [PATH]` emits `BENCH_service.json` with the host core count
//! and per-verb request-latency percentiles (p50/p95/p99) from the
//! service's own `achilles-obs` histograms. `--quick` sweeps the reduced
//! schedule space. `--metrics PATH` writes the phase-1 service's full
//! `METRICS` snapshot (pump-driven, single-threaded — its
//! `# deterministic` section is bit-identical run to run, the CI
//! determinism gate). `--trace PATH` writes a Chrome-trace of the soak.

use std::sync::Arc;
use std::time::Instant;

use achilles::export::session_witness_record;
use achilles::{AchillesSession, TargetSpec};
use achilles_bench::{
    arg_present, arg_value, arg_value_required, header, host_cores, row, trace_path_from_args,
    write_trace,
};
use achilles_fleetd::{Fleetd, FleetdConfig};
use achilles_replay::session_from_report;
use achilles_targets::{builtin_registry, session_bearing};

/// One target's ingestable stream: `(target, session, record)` triples in
/// discovery order.
fn discover_stream(specs: &[&Arc<dyn TargetSpec>]) -> Vec<(String, String, String)> {
    let mut stream = Vec::new();
    for spec in specs {
        for report in AchillesSession::new(&***spec).run_sessions() {
            for (i, trojan) in report.trojans.iter().enumerate() {
                let witness = session_from_report(&report.layouts, i, trojan)
                    .expect("session layouts are wire-encodable");
                stream.push((
                    spec.name().to_string(),
                    report.session.clone(),
                    session_witness_record(&witness.fields),
                ));
            }
        }
    }
    stream
}

fn config(quick: bool) -> FleetdConfig {
    let config = FleetdConfig::default();
    if quick {
        config.quick()
    } else {
        config
    }
}

/// Streams the whole corpus into a fresh service with `shards` executors
/// and drains; returns the service (for counters) and the wall seconds.
fn timed_run(stream: &[(String, String, String)], shards: usize, quick: bool) -> (Fleetd, f64) {
    let service =
        Fleetd::start(builtin_registry(), config(quick).shards(shards)).expect("service starts");
    let started = Instant::now();
    for (target, session, record) in stream {
        service.handle_line(&format!("REGISTER {target}"));
        let reply = service.handle_line(&format!("INGEST {target}/{session} {record}"));
        assert!(reply.starts_with("OK "), "ingest {record}: {reply}");
    }
    assert_eq!(service.handle_line("DRAIN"), "OK drained");
    (service, started.elapsed().as_secs_f64())
}

fn main() {
    let trace = trace_path_from_args();
    let quick = arg_present("--quick");
    let cores = host_cores();
    let registry = builtin_registry();
    let specs = session_bearing(&registry);
    header(&format!(
        "fleetd service soak ({} session-bearing target(s); {cores} host core(s))",
        specs.len()
    ));

    let stream = discover_stream(&specs);
    assert!(!stream.is_empty(), "discovery yields session witnesses");

    // Phase 1: per-witness ingest→result latency, pump-driven.
    let service =
        Fleetd::start(builtin_registry(), config(quick).shards(0)).expect("service starts");
    let mut latencies = Vec::with_capacity(stream.len());
    for (target, session, record) in &stream {
        service.handle_line(&format!("REGISTER {target}"));
        let started = Instant::now();
        let reply = service.handle_line(&format!("INGEST {target}/{session} {record}"));
        assert!(reply.starts_with("OK "), "ingest {record}: {reply}");
        service.pump();
        latencies.push(started.elapsed().as_secs_f64());
    }
    let lat_stats = service.stats();
    assert_eq!(
        lat_stats.results, lat_stats.witnesses,
        "every ingest completed"
    );
    let total_latency: f64 = latencies.iter().sum();
    let mean_latency = total_latency / latencies.len() as f64;
    let p_max = latencies.iter().cloned().fold(0.0f64, f64::max);
    let cells_per_s = if total_latency > 0.0 {
        lat_stats.replays as f64 / total_latency
    } else {
        0.0
    };
    println!(
        "{}",
        row(
            "ingest → result latency",
            format!(
                "{:.4}s mean, {:.4}s max over {} witnesses",
                mean_latency,
                p_max,
                latencies.len()
            )
        )
    );
    println!(
        "{}",
        row(
            "sustained throughput",
            format!("{cells_per_s:.0} cells/s ({} replays)", lat_stats.replays)
        )
    );
    if let Some(path) = arg_value_required("--metrics") {
        // Written from the pump-driven phase-1 service: single-threaded,
        // so the snapshot's `# deterministic` section is bit-identical
        // run to run — what the CI determinism gate diffs.
        std::fs::write(&path, service.metrics_text()).expect("write metrics snapshot");
        println!("{}", row("metrics snapshot", &path));
    }

    // Phase 2: one executor, whole corpus queued at once.
    let (one, wall_1) = timed_run(&stream, 1, quick);
    let one_stats = one.stats();
    assert_eq!(one_stats.results, one_stats.witnesses);
    println!(
        "{}",
        row(
            "queue depth (1 executor)",
            format!("{} cells peak", one_stats.peak_cells)
        )
    );
    println!(
        "{}",
        row(
            "fork-server savings",
            format!(
                "{} boots for {} plans ({} saved), {} restores",
                one_stats.boots,
                one_stats.fork_plans,
                one_stats.boots_saved(),
                one_stats.snapshot_restores
            )
        )
    );

    // Exercise the METRICS verb on the drained phase-2 service and
    // surface its per-verb request-latency histograms — service-side
    // numbers from the obs registry, not client-side wall clocks.
    let metrics_reply = one.handle_line("METRICS");
    assert!(
        metrics_reply.starts_with("OK "),
        "METRICS serves: {metrics_reply}"
    );
    let series = metrics_reply
        .lines()
        .skip(1)
        .filter(|l| !l.starts_with('#'))
        .count();
    println!("{}", row("METRICS series served", series));
    let mut latency_json = String::from("{");
    for verb in ["REGISTER", "INGEST", "DRAIN", "METRICS"] {
        let Some(h) = one.request_latency(verb) else {
            continue;
        };
        let (p50, p95, p99) = (
            h.quantile_ns(0.50),
            h.quantile_ns(0.95),
            h.quantile_ns(0.99),
        );
        println!(
            "{}",
            row(
                &format!("request latency ({verb})"),
                format!(
                    "p50 {:.3}ms p95 {:.3}ms p99 {:.3}ms over {} request(s)",
                    p50 as f64 / 1e6,
                    p95 as f64 / 1e6,
                    p99 as f64 / 1e6,
                    h.count()
                )
            )
        );
        if latency_json.len() > 1 {
            latency_json.push_str(", ");
        }
        latency_json.push_str(&format!(
            "\"{verb}\": {{\"count\": {}, \"p50_ns\": {p50}, \"p95_ns\": {p95}, \
             \"p99_ns\": {p99}}}",
            h.count()
        ));
    }
    latency_json.push('}');

    // Phase 3: eight executors over the same stream.
    let (eight, wall_8) = timed_run(&stream, 8, quick);
    let eight_stats = eight.stats();
    assert_eq!(
        eight_stats.results, one_stats.results,
        "scaling changes no answers"
    );
    let speedup = if wall_8 > 0.0 { wall_1 / wall_8 } else { 1.0 };
    let effective = cores.clamp(1, 8);
    let efficiency = speedup / effective as f64;
    println!(
        "{}",
        row(
            "executor scaling",
            format!(
                "{wall_1:.3}s @1 shard vs {wall_8:.3}s @8 shards \
                 (speedup {speedup:.2}x, efficiency {efficiency:.2} on {cores} core(s))"
            )
        )
    );
    if cores >= 2 && efficiency < 0.7 {
        println!(
            "{}",
            row(
                "  follow-up",
                format!(
                    "pool efficiency {efficiency:.2} < 0.7 at 8 executors on a \
                     {cores}-core host — consider batch stealing (see CHANGES.md)"
                )
            )
        );
    }

    if arg_present("--json") {
        let path = arg_value("--json").unwrap_or_else(|| "BENCH_service.json".to_string());
        let path = if path.starts_with("--") {
            "BENCH_service.json".to_string()
        } else {
            path
        };
        let json = format!(
            "{{\n  \"bench\": \"fleetd_soak\",\n  \"host_cores\": {cores},\n  \
             \"quick\": {quick},\n  \"targets\": {},\n  \"witnesses\": {},\n  \
             \"replays\": {},\n  \"ingest_to_result_mean_s\": {mean_latency:.6},\n  \
             \"ingest_to_result_max_s\": {p_max:.6},\n  \"cells_per_s\": {cells_per_s:.2},\n  \
             \"request_latency_ns\": {latency_json},\n  \
             \"peak_queue_cells\": {},\n  \"boots\": {},\n  \"boots_saved\": {},\n  \
             \"snapshot_restores\": {},\n  \"wall_1shard_s\": {wall_1:.4},\n  \
             \"wall_8shard_s\": {wall_8:.4},\n  \"speedup\": {speedup:.4},\n  \
             \"efficiency\": {efficiency:.4}\n}}\n",
            specs.len(),
            lat_stats.witnesses,
            lat_stats.replays,
            one_stats.peak_cells,
            one_stats.boots,
            one_stats.boots_saved(),
            one_stats.snapshot_restores,
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("\n  wrote {path}");
    }

    if let Some(path) = &trace {
        // Dropping the services joins their executors, flushing every
        // worker thread's span buffer into the sink before the write.
        drop(service);
        drop(one);
        drop(eight);
        write_trace(path);
    }
}
