//! Regenerates **Table 1** (§6.2): Achilles vs classic symbolic execution
//! on FSP, plus the surrounding accuracy numbers (80 known Trojans, zero
//! false positives).
//!
//! ```text
//! cargo run --release -p achilles-bench --bin table1_accuracy
//! ```

use achilles::{classic_symex, FieldMask};
use achilles_bench::{fmt_secs, header, row};
use achilles_fsp::{
    expected_length_mismatch_trojans, is_trojan, run_analysis, FspAnalysisConfig, FspMessage,
    FspServer, FspServerConfig,
};
use achilles_solver::{Solver, TermPool};
use achilles_symvm::{ExploreConfig, SymMessage};

fn main() {
    header("Table 1 — Achilles vs classic symbolic execution (FSP, path length < 5)");

    // --- Achilles, the paper's accuracy configuration -------------------
    let config = FspAnalysisConfig::accuracy();
    let result = run_analysis(&config);
    let expected = expected_length_mismatch_trojans(config.commands.len());
    let achilles_tp = result.trojans.iter().filter(|t| t.verified).count();
    let achilles_fp = result.unverified();

    println!("{}", row("known Trojan message classes", expected));
    println!("{}", row("client path predicates", result.client.len()));
    println!("{}", row("server paths completed", result.server_paths));
    println!(
        "{}",
        row(
            "server paths pruned by Trojan-set check",
            result.explore_stats.pruned
        )
    );
    println!(
        "{}",
        row("phase: client predicate", fmt_secs(result.client_time))
    );
    println!(
        "{}",
        row("phase: preprocessing", fmt_secs(result.preprocess_time))
    );
    println!(
        "{}",
        row("phase: server analysis", fmt_secs(result.server_time))
    );

    // --- Classic symbolic execution -------------------------------------
    // Vanilla exploration of the same server; one concrete test message per
    // accepting path per enumeration step. Every candidate that is not a
    // true Trojan is sifting noise for the developer (Table 1's FPs).
    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    let server_msg = SymMessage::fresh(&mut pool, &achilles_fsp::layout(), "msg");
    let models_per_path = 100;
    let classic = classic_symex(
        &mut pool,
        &mut solver,
        &FspServer::new(FspServerConfig::default()),
        &server_msg,
        &ExploreConfig::default(),
        &FieldMask::none(),
        models_per_path,
    );
    let mut classic_tp_classes = std::collections::HashSet::new();
    let mut classic_fp = 0u64;
    for cand in &classic.candidates {
        let msg = FspMessage::from_field_values(&cand.fields);
        if is_trojan(&msg, &FspServerConfig::default(), false) {
            // Count Trojan *classes* (cmd, reported, actual) like the paper.
            let reported = (msg.bb_len as usize).min(achilles_fsp::MAX_PATH);
            let actual = msg.buf[..reported]
                .iter()
                .position(|&b| b == 0)
                .unwrap_or(reported);
            classic_tp_classes.insert((msg.cmd, reported, actual));
        } else {
            classic_fp += 1;
        }
    }

    println!(
        "\n  {:<30} {:>12} {:>24}",
        "", "Achilles", "Classic symbolic exec."
    );
    println!(
        "  {:<30} {:>12} {:>24}",
        "True positives",
        achilles_tp,
        classic_tp_classes.len()
    );
    println!(
        "  {:<30} {:>12} {:>24}",
        "False positives", achilles_fp, classic_fp
    );
    println!(
        "\n  (classic symex enumerated {} candidate messages over {} accepting paths\n   in {}; the tester must sift Trojans out by hand)",
        classic.candidates.len(),
        classic.accepting_paths,
        fmt_secs(classic.time),
    );

    // --- Paper-vs-measured summary --------------------------------------
    header("paper vs measured");
    println!("  paper:    Achilles TP=80 FP=0 | classic TP=80 FP=7,520");
    println!(
        "  measured: Achilles TP={achilles_tp} FP={achilles_fp} | classic TP={} FP={classic_fp}",
        classic_tp_classes.len(),
    );
    assert_eq!(
        achilles_tp, expected,
        "Achilles must find every known Trojan class"
    );
    assert_eq!(achilles_fp, 0, "and report no false positives");
}
