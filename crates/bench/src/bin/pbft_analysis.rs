//! Regenerates the **§6.2/§6.3 PBFT experiment**: Achilles rediscovers the
//! MAC attack in seconds, and the cluster simulation quantifies its impact
//! (one faulty client triggers expensive recoveries that collapse everyone's
//! throughput).
//!
//! ```text
//! cargo run --release -p achilles-bench --bin pbft_analysis
//! ```

use achilles_bench::{fmt_secs, header, row};
use achilles_pbft::{run_analysis, run_workload, ClusterConfig, PbftAnalysisConfig, PbftRequest};

fn main() {
    header("§6.2 — PBFT analysis");
    let result = run_analysis(&PbftAnalysisConfig::paper());
    println!("{}", row("client path predicates", result.client.len()));
    println!("{}", row("Trojan reports", result.trojans.len()));
    println!(
        "{}",
        row("distinct Trojan types", result.distinct_families())
    );
    println!("{}", row("MAC-attack reports", result.mac_attacks()));
    println!("{}", row("analysis time", fmt_secs(result.total_time)));
    for t in &result.trojans {
        let req = PbftRequest::from_field_values(&t.witness_fields);
        println!(
            "  witness: tag={} cid={} rid={} macs={:08x?} ({})",
            req.tag,
            req.cid,
            req.rid,
            req.macs,
            t.notes.join("/")
        );
    }

    header("§6.3 — MAC-attack impact (4-replica cluster, simulated time)");
    let healthy = run_workload(ClusterConfig::default(), 10_000, 0);
    let attacked = run_workload(ClusterConfig::default(), 10_000, 10);
    let patched = run_workload(
        ClusterConfig {
            primary_verifies_macs: true,
            ..ClusterConfig::default()
        },
        10_000,
        10,
    );
    println!(
        "  {:<28} {:>14} {:>12} {:>12}",
        "workload", "throughput/s", "recoveries", "dropped"
    );
    println!(
        "  {:<28} {:>14.0} {:>12} {:>12}",
        "healthy",
        healthy.throughput(),
        healthy.stats().recoveries,
        healthy.stats().dropped
    );
    println!(
        "  {:<28} {:>14.0} {:>12} {:>12}",
        "10% corrupted MACs",
        attacked.throughput(),
        attacked.stats().recoveries,
        attacked.stats().dropped
    );
    println!(
        "  {:<28} {:>14.0} {:>12} {:>12}",
        "patched (verified upfront)",
        patched.throughput(),
        patched.stats().recoveries,
        patched.stats().dropped
    );

    header("paper vs measured");
    println!("  paper:    analysis completes in a few seconds; a single Trojan type (MAC attack)");
    println!(
        "  measured: analysis in {}; {} Trojan type(s); attack cuts throughput {:.0}×",
        fmt_secs(result.total_time),
        result.distinct_families(),
        healthy.throughput() / attacked.throughput()
    );
    assert_eq!(result.distinct_families(), 1);
    assert!(healthy.throughput() / attacked.throughput() > 10.0);
}
