//! Fault-schedule sweep campaigns over every session-bearing target —
//! which delivery faults arm or disarm each session Trojan.
//!
//! The bin is registry-driven: it iterates every registered
//! [`TargetSpec`](achilles::TargetSpec) that declares sessions (or one
//! selected with `--target NAME`), discovers its session Trojans, replays
//! each witness under the planner's whole bounded schedule space, and
//! prints the per-session sensitivity totals (Armed / Disarmed / Masked /
//! NewSignature). There is no per-protocol code path: a new protocol
//! crate that declares a session gets a sweep row automatically.
//!
//! ```text
//! cargo run --release -p achilles-bench --bin sweep_campaign -- --json
//! ```
//!
//! Every run re-sweeps the campaign at `workers ∈ {1, 4}` with fresh
//! caches and asserts the sensitivity matrices are bit-identical — scaling
//! must never buy speed with soundness.
//!
//! With `--corpus DIR`, each target's sweep cells persist to
//! `DIR/<name>.sweep` across runs (the CI cache wires this up keyed on
//! the corpus format version, which the sweep-cache header tracks), so
//! cross-commit re-sweeps replay only genuinely new (witness, schedule)
//! pairs.
//!
//! With `--json [PATH]`, emits `BENCH_sweep.json` including the host core
//! count and the effective worker count of each row, so multicore
//! measurements stay interpretable.

use std::path::PathBuf;

use achilles_bench::{arg_present, arg_value, arg_value_required, header, host_cores, row};
use achilles_sweep::{
    schedule_token, sweep_report, CampaignConfig, ScheduleClass, SessionSweep, SweepCache,
};
use achilles_targets::builtin_registry;

fn sweep_cache_path(dir: &str, name: &str) -> PathBuf {
    PathBuf::from(dir).join(format!("{name}.sweep"))
}

/// The scheduling-independent fingerprint of a campaign: every matrix's
/// (schedule, class, signature) rows, in plan order.
fn campaign_key(sweeps: &[SessionSweep]) -> Vec<Vec<(String, ScheduleClass, String)>> {
    sweeps
        .iter()
        .flat_map(|s| &s.matrices)
        .map(|m| {
            m.cells
                .iter()
                .map(|c| (schedule_token(&c.schedule), c.class, c.signature.to_line()))
                .collect()
        })
        .collect()
}

fn main() {
    let registry = builtin_registry();
    let selected = arg_value_required("--target");
    let names: Vec<&str> = match &selected {
        Some(name) => {
            if registry.get(name).is_none() {
                eprintln!(
                    "unknown --target {name:?}; registered targets: {}",
                    registry.names().join(", ")
                );
                std::process::exit(2);
            }
            vec![name.as_str()]
        }
        None => registry.names(),
    };
    let corpus_dir = arg_value_required("--corpus");
    let workers = achilles_bench::workers_from_args().max(1);
    let cores = host_cores();

    header(&format!(
        "Fault-schedule sweep campaigns ({}; {cores} host core(s))",
        names.join(" + ")
    ));

    let mut rows: Vec<(SessionSweep, usize)> = Vec::new();
    for name in &names {
        let spec = registry.get(name).expect("validated above");
        if spec.sessions().is_empty() {
            println!("{}", row(name, "no declared sessions — skipped"));
            continue;
        }

        // Symbolic session discovery runs ONCE per target; the worker
        // comparison and the recorded run sweep the same reports.
        let mut driver = achilles::AchillesSession::new(&**spec).workers(workers);
        let reports = driver.run_sessions();

        // Worker-count bit-identity: fresh caches on both sides, so every
        // cell is genuinely replayed and compared.
        for report in &reports {
            let seq = sweep_report(
                &**spec,
                report,
                &CampaignConfig::default(),
                &mut SweepCache::new(),
            );
            let par = sweep_report(
                &**spec,
                report,
                &CampaignConfig::default().with_workers(4),
                &mut SweepCache::new(),
            );
            assert_eq!(
                campaign_key(std::slice::from_ref(&seq)),
                campaign_key(std::slice::from_ref(&par)),
                "{name}/{}: sensitivity matrices must be identical for every \
                 worker count",
                report.session
            );
        }

        // The recorded run: cache-assisted and persistent when --corpus is
        // given.
        let mut cache = match corpus_dir.as_deref() {
            Some(dir) => SweepCache::load(&sweep_cache_path(dir, name)).unwrap_or_default(),
            None => SweepCache::new(),
        };
        let sweeps: Vec<SessionSweep> = reports
            .iter()
            .map(|report| {
                sweep_report(
                    &**spec,
                    report,
                    &CampaignConfig::default().with_workers(workers),
                    &mut cache,
                )
            })
            .collect();
        if let Some(dir) = corpus_dir.as_deref() {
            std::fs::create_dir_all(dir).expect("create corpus dir");
            cache
                .save(&sweep_cache_path(dir, name))
                .expect("persist sweep cache");
        }
        for sweep in sweeps {
            assert_eq!(
                sweep.confirmed_fault_free, sweep.discovered,
                "{name}/{}: every session Trojan must confirm under the \
                 fault-free baseline before its schedule space means anything",
                sweep.session
            );
            assert!(
                sweep.discovered == 0 || (sweep.armed >= 1 && sweep.disarmed >= 1),
                "{name}/{}: a session Trojan's sensitivity matrix must name \
                 at least one arming and one disarming schedule",
                sweep.session
            );
            println!(
                "{}",
                row(
                    &format!("{name}/{}", sweep.session),
                    format!(
                        "{} Trojans, {} cells: {} armed, {} disarmed, {} masked, \
                         {} new-signature; {} replayed, {} cached ({:.3}s)",
                        sweep.discovered,
                        sweep.cells,
                        sweep.armed,
                        sweep.disarmed,
                        sweep.masked,
                        sweep.new_signature,
                        sweep.replayed,
                        sweep.cache_hits,
                        sweep.elapsed.as_secs_f64(),
                    )
                )
            );
            rows.push((sweep, workers));
        }
    }

    if arg_present("--json") {
        let path = arg_value("--json").unwrap_or_else(|| "BENCH_sweep.json".to_string());
        let path = if path.starts_with("--") {
            "BENCH_sweep.json".to_string()
        } else {
            path
        };
        let mut json = String::new();
        json.push_str("{\n  \"bench\": \"sweep_campaign\",\n");
        json.push_str(&format!("  \"host_cores\": {cores},\n"));
        json.push_str("  \"sessions\": [\n");
        for (i, (s, requested)) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"system\": \"{}\", \"session\": \"{}\", \"discovered\": {}, \
                 \"confirmed_fault_free\": {}, \"cells\": {}, \"armed\": {}, \
                 \"disarmed\": {}, \"masked\": {}, \"new_signature\": {}, \
                 \"replayed\": {}, \"cache_hits\": {}, \"workers\": {}, \
                 \"workers_effective\": {}, \"wall_s\": {:.4}}}{}\n",
                s.target,
                s.session,
                s.discovered,
                s.confirmed_fault_free,
                s.cells,
                s.armed,
                s.disarmed,
                s.masked,
                s.new_signature,
                s.replayed,
                s.cache_hits,
                requested,
                s.workers_effective,
                s.elapsed.as_secs_f64(),
                if i + 1 == rows.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench json");
        println!("\n  wrote {path}");
    }
}
