//! Fault-schedule sweep campaigns over every session-bearing target —
//! which delivery faults arm or disarm each session Trojan.
//!
//! The bin is registry-driven: it iterates every registered
//! [`TargetSpec`](achilles::TargetSpec) that declares sessions (or one
//! selected with `--target NAME`), discovers its session Trojans, replays
//! each witness under the planner's whole bounded schedule space, and
//! prints the per-session sensitivity totals (Armed / Diverged /
//! Disarmed / Masked / NewSignature — Diverged being the armed class of
//! multi-node targets whose detonation is a silent root split). There is
//! no per-protocol code path: a new protocol crate that declares a
//! session gets a sweep row automatically.
//!
//! ```text
//! cargo run --release -p achilles-bench --bin sweep_campaign -- --json
//! ```
//!
//! Every run re-sweeps the campaign at `workers ∈ {1, 4}` with fresh
//! caches and asserts the sensitivity matrices are bit-identical — scaling
//! must never buy speed with soundness. By default fresh cells replay
//! through the snapshot fork-server (prefix-shared execution trees); a
//! third cold-boot pass asserts fork classifications are bit-identical to
//! per-cell boots and times the two for the fork-vs-cold comparison.
//! `--no-fork` turns the fork-server off everywhere (the CI baseline
//! variant).
//!
//! With `--corpus DIR`, each target's sweep cells persist to
//! `DIR/<name>.sweep` across runs (the CI cache wires this up keyed on
//! the sweep-cache format version), so cross-commit re-sweeps replay only
//! genuinely new (witness, schedule) pairs. After the recorded run, a
//! warm second iteration re-sweeps the same reports against the populated
//! cache and must replay nothing — its hit counts are emitted as
//! `warm_cache_hits`.
//!
//! With `--serve-compat`, the batch campaign is followed by an assert
//! pass: a fleetd service is seeded with the same discovered witnesses
//! and every target's queried sensitivity matrices must be bit-identical
//! to the batch output — the resident service and the batch pipeline are
//! two drivers of one sweep body, and this keeps them provably so.
//!
//! With `--json [PATH]`, emits `BENCH_sweep.json` including the host core
//! count, the effective worker count, fork-server savings
//! (`boots_saved`, `snapshot_restores`, `mean_shared_prefix_depth`,
//! `fork_wall_s` vs `cold_wall_s`), and parallel `efficiency`
//! (speedup ÷ effective workers) of each row, so multicore measurements
//! stay interpretable.
//!
//! With `--check-proofs` (or `ACHILLES_CHECK_PROOFS=1`), the independent
//! certificate checker audits every unsat verdict the discovery produces;
//! the first rejected certificate aborts the run with a panic naming the
//! rejection. `--no-subsumption` turns the shared cache's unsat-core
//! subsumption index off, for bit-identity comparisons against the default
//! configuration.

use std::path::PathBuf;

use achilles::export::session_witness_record;
use achilles_bench::{
    arg_present, arg_value, arg_value_required, header, host_cores, row, trace_path_from_args,
    write_trace,
};
use achilles_fleetd::{Fleetd, FleetdConfig};
use achilles_replay::session_from_report;
use achilles_sweep::{
    schedule_token, sweep_report, CampaignConfig, ScheduleClass, SessionSweep, SweepCache,
};
use achilles_targets::builtin_registry;

fn sweep_cache_path(dir: &str, name: &str) -> PathBuf {
    PathBuf::from(dir).join(format!("{name}.sweep"))
}

/// The scheduling-independent fingerprint of a campaign: every matrix's
/// (schedule, class, signature) rows, in plan order.
fn campaign_key(sweeps: &[SessionSweep]) -> Vec<Vec<(String, ScheduleClass, String)>> {
    sweeps
        .iter()
        .flat_map(|s| &s.matrices)
        .map(|m| {
            m.cells
                .iter()
                .map(|c| (schedule_token(&c.schedule), c.class, c.signature.to_line()))
                .collect()
        })
        .collect()
}

/// Everything one JSON row needs: the recorded sweep plus the timing
/// passes around it.
struct BenchRow {
    /// The recorded (cache-assisted) sweep.
    sweep: SessionSweep,
    /// Workers requested on the command line.
    requested: usize,
    /// Fresh-cache sweep at workers=1 (the speedup denominator's mate).
    seq_wall_s: f64,
    /// Fresh-cache sweep at workers=4 — fork stats and the speedup
    /// numerator come from here.
    par: SessionSweep,
    /// Fresh-cache cold-boot sweep at workers=4 (only when forking).
    cold_wall_s: Option<f64>,
    /// Replays performed by the warm second iteration (0 when the cache
    /// works).
    warm_replayed: usize,
    /// Cache hits of the warm second iteration.
    warm_cache_hits: usize,
    /// Unsat verdicts (each certificate-carrying) the target's discovery
    /// published into its shared cache. Per-target totals: sessions of one
    /// target share an engine, so every session row of the target reports
    /// the same discovery-wide numbers.
    certified_unsat: u64,
    /// Discovery queries answered by the unsat-core subsumption index.
    core_subsumption_hits: u64,
    /// Certificates validated by the proof audit during this target's
    /// discovery (0 unless `--check-proofs` / `ACHILLES_CHECK_PROOFS`).
    proof_checked: u64,
    /// Wall-clock time the proof audit spent on this target's discovery.
    proof_check_wall_s: f64,
}

fn main() {
    let trace = trace_path_from_args();
    let registry = builtin_registry();
    let selected = arg_value_required("--target");
    let names: Vec<&str> = match &selected {
        Some(name) => {
            if registry.get(name).is_none() {
                eprintln!(
                    "unknown --target {name:?}; registered targets: {}",
                    registry.names().join(", ")
                );
                std::process::exit(2);
            }
            vec![name.as_str()]
        }
        None => registry.names(),
    };
    let corpus_dir = arg_value_required("--corpus");
    let workers = achilles_bench::workers_from_args().max(1);
    let fork_enabled = !arg_present("--no-fork");
    let subsumption = !arg_present("--no-subsumption");
    let check_proofs = if arg_present("--check-proofs") {
        achilles_proofcheck::install_audit();
        true
    } else {
        achilles_proofcheck::install_audit_from_env()
    };
    let cores = host_cores();

    header(&format!(
        "Fault-schedule sweep campaigns ({}; {cores} host core(s); fork-server {}; \
         subsumption {}; proof audit {})",
        names.join(" + "),
        if fork_enabled { "on" } else { "off" },
        if subsumption { "on" } else { "off" },
        if check_proofs { "on" } else { "off" },
    ));

    let base_config = if fork_enabled {
        CampaignConfig::default()
    } else {
        CampaignConfig::default().without_fork()
    };
    let mut rows: Vec<BenchRow> = Vec::new();
    // `(target, session, record, matrix_text)` per batch-swept witness —
    // the --serve-compat oracle.
    let mut serve_oracle: Vec<(String, String, String, String)> = Vec::new();
    for name in &names {
        let spec = registry.get(name).expect("validated above");
        if spec.sessions().is_empty() {
            println!("{}", row(name, "no declared sessions — skipped"));
            continue;
        }

        // Symbolic session discovery runs ONCE per target; the worker
        // comparison, the fork-vs-cold comparison, and the recorded run
        // all sweep the same reports.
        let mut driver = achilles::AchillesSession::new(&**spec).workers(workers);
        driver.engine().shared_cache().set_subsumption(subsumption);
        let (audit_checks_before, audit_wall_before) = achilles_solver::proof_audit_stats();
        let reports = driver.run_sessions();
        let (audit_checks_after, audit_wall_after) = achilles_solver::proof_audit_stats();
        let cache_stats = driver.engine().shared_cache().stats();
        let proof_checked = audit_checks_after - audit_checks_before;
        let proof_check_wall_s = (audit_wall_after - audit_wall_before).as_secs_f64();
        println!(
            "{}",
            row(
                &format!("{name}/certificates"),
                format!(
                    "{} certified unsat, {} cores indexed, {} subsumption hits, \
                     {} audited ({:.3}s)",
                    cache_stats.certified_unsat,
                    cache_stats.cores_indexed,
                    cache_stats.core_subsumption_hits,
                    proof_checked,
                    proof_check_wall_s,
                )
            )
        );

        // Worker-count bit-identity: fresh caches on both sides, so every
        // cell is genuinely replayed and compared. With the fork-server
        // on, a third cold pass pins fork ≡ cold as well.
        let mut timing: Vec<(SessionSweep, f64, Option<f64>)> = Vec::new();
        for report in &reports {
            let seq = sweep_report(&**spec, report, &base_config, &mut SweepCache::new());
            let par = sweep_report(
                &**spec,
                report,
                &base_config.clone().with_workers(4),
                &mut SweepCache::new(),
            );
            assert_eq!(
                campaign_key(std::slice::from_ref(&seq)),
                campaign_key(std::slice::from_ref(&par)),
                "{name}/{}: sensitivity matrices must be identical for every \
                 worker count",
                report.session
            );
            let cold_wall_s = if fork_enabled {
                let cold = sweep_report(
                    &**spec,
                    report,
                    &CampaignConfig::default().without_fork().with_workers(4),
                    &mut SweepCache::new(),
                );
                assert_eq!(
                    campaign_key(std::slice::from_ref(&par)),
                    campaign_key(std::slice::from_ref(&cold)),
                    "{name}/{}: fork-server classifications must be \
                     bit-identical to cold boots",
                    report.session
                );
                Some(cold.elapsed.as_secs_f64())
            } else {
                None
            };
            timing.push((par, seq.elapsed.as_secs_f64(), cold_wall_s));
        }

        // The recorded run: cache-assisted and persistent when --corpus is
        // given — followed by a warm second iteration that must be
        // replay-free.
        let mut cache = match corpus_dir.as_deref() {
            Some(dir) => match SweepCache::load(&sweep_cache_path(dir, name)) {
                Ok(cache) => cache,
                // A malformed cache file is reported, never silently
                // swallowed — but a bench run re-derives, it doesn't die.
                Err(e) => {
                    eprintln!("warning: ignoring unreadable sweep cache for {name}: {e}");
                    SweepCache::new()
                }
            },
            None => SweepCache::new(),
        };
        let recorded_config = base_config.clone().with_workers(workers);
        let sweeps: Vec<SessionSweep> = reports
            .iter()
            .map(|report| sweep_report(&**spec, report, &recorded_config, &mut cache))
            .collect();
        let warm: Vec<SessionSweep> = reports
            .iter()
            .map(|report| sweep_report(&**spec, report, &recorded_config, &mut cache))
            .collect();
        if let Some(dir) = corpus_dir.as_deref() {
            std::fs::create_dir_all(dir).expect("create corpus dir");
            cache
                .save(&sweep_cache_path(dir, name))
                .expect("persist sweep cache");
        }
        for (report, sweep) in reports.iter().zip(&sweeps) {
            for (matrix, (i, trojan)) in
                sweep.matrices.iter().zip(report.trojans.iter().enumerate())
            {
                let witness = session_from_report(&report.layouts, i, trojan)
                    .expect("session layouts are wire-encodable");
                serve_oracle.push((
                    name.to_string(),
                    report.session.clone(),
                    session_witness_record(&witness.fields),
                    matrix.to_text(),
                ));
            }
        }
        for ((sweep, (par, seq_wall_s, cold_wall_s)), warm_sweep) in
            sweeps.into_iter().zip(timing).zip(warm)
        {
            assert_eq!(
                sweep.confirmed_fault_free, sweep.discovered,
                "{name}/{}: every session Trojan must confirm under the \
                 fault-free baseline before its schedule space means anything",
                sweep.session
            );
            assert!(
                sweep.discovered == 0 || (sweep.armed + sweep.diverged >= 1 && sweep.disarmed >= 1),
                "{name}/{}: a session Trojan's sensitivity matrix must name \
                 at least one arming (or diverging) and one disarming schedule",
                sweep.session
            );
            assert_eq!(
                warm_sweep.replayed, 0,
                "{name}/{}: the warm second iteration must answer every \
                 cell from the sweep cache",
                warm_sweep.session
            );
            println!(
                "{}",
                row(
                    &format!("{name}/{}", sweep.session),
                    format!(
                        "{} Trojans, {} cells: {} armed, {} diverged, {} disarmed, \
                         {} masked, {} new-signature; {} replayed, {} cached, \
                         {} warm hits ({:.3}s)",
                        sweep.discovered,
                        sweep.cells,
                        sweep.armed,
                        sweep.diverged,
                        sweep.disarmed,
                        sweep.masked,
                        sweep.new_signature,
                        sweep.replayed,
                        sweep.cache_hits,
                        warm_sweep.cache_hits,
                        sweep.elapsed.as_secs_f64(),
                    )
                )
            );
            if fork_enabled {
                println!(
                    "{}",
                    row(
                        "  fork-server",
                        format!(
                            "{} boots for {} cells ({} saved), {} restores, mean \
                             shared prefix {:.2}; fork {:.3}s vs cold {:.3}s @4 \
                             workers",
                            par.fork.boots,
                            par.fork.plans,
                            par.boots_saved(),
                            par.fork.snapshot_restores,
                            par.mean_shared_prefix_depth(),
                            par.elapsed.as_secs_f64(),
                            cold_wall_s.unwrap_or_default(),
                        )
                    )
                );
            }
            rows.push(BenchRow {
                sweep,
                requested: workers,
                seq_wall_s,
                par,
                cold_wall_s,
                warm_replayed: warm_sweep.replayed,
                warm_cache_hits: warm_sweep.cache_hits,
                certified_unsat: cache_stats.certified_unsat,
                core_subsumption_hits: cache_stats.core_subsumption_hits,
                proof_checked,
                proof_check_wall_s,
            });
        }
    }

    if arg_present("--serve-compat") {
        // Assert mode: seed a fleetd service from the same discovery and
        // require its queried matrices to be bit-identical to the batch
        // campaign just recorded — the service/batch differential, run
        // against the real binaries' configuration.
        header("serve-compat: fleetd vs batch bit-identity");
        let service_config = FleetdConfig {
            fork: fork_enabled,
            ..FleetdConfig::default()
        };
        let service = Fleetd::start(builtin_registry(), service_config).expect("fleetd starts");
        for (target, session, record, _) in &serve_oracle {
            let reply = service.handle_line(&format!("REGISTER {target}"));
            assert!(reply.starts_with("OK "), "{reply}");
            let reply = service.handle_line(&format!("INGEST {target}/{session} {record}"));
            assert!(reply.starts_with("OK "), "ingest {record}: {reply}");
        }
        assert_eq!(service.handle_line("DRAIN"), "OK drained");
        for name in &names {
            // The service stores one witness per canonical record, so the
            // oracle dedupes to first-seen per (session, record).
            let mut expected: Vec<String> = Vec::new();
            let mut first = std::collections::HashSet::new();
            for (target, session, record, text) in &serve_oracle {
                if target == name && first.insert((session.clone(), record.clone())) {
                    expected.extend(text.lines().map(str::to_string));
                }
            }
            if expected.is_empty() {
                continue;
            }
            let reply = service.handle_line(&format!("QUERY {name}"));
            assert!(reply.starts_with("OK "), "{reply}");
            let got: Vec<String> = reply.lines().skip(1).map(str::to_string).collect();
            assert_eq!(
                got, expected,
                "{name}: fleetd matrices must be bit-identical to the batch campaign"
            );
            println!(
                "{}",
                row(
                    name,
                    format!("{} matrix line(s) bit-identical through fleetd", got.len())
                )
            );
        }
    }

    if arg_present("--json") {
        let path = arg_value("--json").unwrap_or_else(|| "BENCH_sweep.json".to_string());
        let path = if path.starts_with("--") {
            "BENCH_sweep.json".to_string()
        } else {
            path
        };
        let mut json = String::new();
        json.push_str("{\n  \"bench\": \"sweep_campaign\",\n");
        json.push_str(&format!("  \"host_cores\": {cores},\n"));
        json.push_str(&format!("  \"fork\": {fork_enabled},\n"));
        json.push_str("  \"sessions\": [\n");
        for (i, r) in rows.iter().enumerate() {
            let s = &r.sweep;
            let par_wall_s = r.par.elapsed.as_secs_f64();
            let speedup = if par_wall_s > 0.0 {
                r.seq_wall_s / par_wall_s
            } else {
                1.0
            };
            let efficiency = speedup / r.par.workers_effective.max(1) as f64;
            json.push_str(&format!(
                "    {{\"system\": \"{}\", \"session\": \"{}\", \"discovered\": {}, \
                 \"confirmed_fault_free\": {}, \"cells\": {}, \"armed\": {}, \
                 \"diverged\": {}, \"disarmed\": {}, \"masked\": {}, \
                 \"new_signature\": {}, \
                 \"replayed\": {}, \"cache_hits\": {}, \"warm_replayed\": {}, \
                 \"warm_cache_hits\": {}, \"workers\": {}, \
                 \"workers_effective\": {}, \"wall_s\": {:.4}, \
                 \"boots_saved\": {}, \"snapshot_restores\": {}, \
                 \"mean_shared_prefix_depth\": {:.4}, \"fork_wall_s\": {:.4}, \
                 \"cold_wall_s\": {:.4}, \"speedup\": {:.4}, \
                 \"efficiency\": {:.4}, \"certified_unsat\": {}, \
                 \"core_subsumption_hits\": {}, \"proof_checked\": {}, \
                 \"proof_check_wall_s\": {:.4}}}{}\n",
                s.target,
                s.session,
                s.discovered,
                s.confirmed_fault_free,
                s.cells,
                s.armed,
                s.diverged,
                s.disarmed,
                s.masked,
                s.new_signature,
                s.replayed,
                s.cache_hits,
                r.warm_replayed,
                r.warm_cache_hits,
                r.requested,
                s.workers_effective,
                s.elapsed.as_secs_f64(),
                r.par.boots_saved(),
                r.par.fork.snapshot_restores,
                r.par.mean_shared_prefix_depth(),
                if r.cold_wall_s.is_some() {
                    par_wall_s
                } else {
                    0.0
                },
                r.cold_wall_s.unwrap_or(par_wall_s),
                speedup,
                efficiency,
                r.certified_unsat,
                r.core_subsumption_hits,
                r.proof_checked,
                r.proof_check_wall_s,
                if i + 1 == rows.len() { "" } else { "," },
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, json).expect("write bench json");
        println!("\n  wrote {path}");
    }

    if let Some(path) = &trace {
        write_trace(path);
    }
}
