//! Regenerates the **§6.4 optimization ablation**: Achilles' incremental
//! search (predicate dropping, differentFrom propagation, Trojan-set path
//! pruning) versus the non-optimized a-posteriori differencing
//! (paper: 1h03 vs 2h15, ≈2.1× speed-up, identical Trojans).
//!
//! Two workloads are measured:
//!
//! * **parse-only** — the server model of the accuracy experiment, whose
//!   exploration is so small that the incremental machinery cannot pay for
//!   itself (the paper's own caveat that vanilla symex "performs fewer
//!   computations" per path);
//! * **deep-processing** — the same server with state-dependent work after
//!   each well-formed parse (`post_parse_branching`), the regime of the
//!   paper's run: Trojan-set pruning skips every post-parse subtree, while
//!   the a-posteriori baseline explores and diffs all of them.
//!
//! ```text
//! cargo run --release -p achilles-bench --bin ablation_optimizations [-- --workers N]
//! ```

use std::time::{Duration, Instant};

use achilles::{a_posteriori_diff, prepare_client, FieldMask, Optimizations};
use achilles_bench::{fmt_secs, header, row, workers_from_args};
use achilles_fsp::{run_analysis_with, FspAnalysisConfig, FspServer};
use achilles_solver::{Solver, TermPool};
use achilles_symvm::{ExploreConfig, SymMessage};

struct Run {
    trojans: usize,
    time: Duration,
    direct_drops: u64,
    matrix_drops: u64,
    paths_pruned: u64,
}

fn incremental(opts: Optimizations, depth: usize) -> Run {
    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    let mut config = FspAnalysisConfig::accuracy().with_workers(workers_from_args());
    config.optimizations = opts;
    config.server.post_parse_branching = depth;
    let started = Instant::now();
    let result = run_analysis_with(&mut pool, &mut solver, &config);
    Run {
        trojans: result.trojans.len(),
        time: started.elapsed(),
        direct_drops: result.search_stats.direct_drops,
        matrix_drops: result.search_stats.matrix_drops,
        paths_pruned: result.explore_stats.pruned as u64,
    }
}

fn a_posteriori(depth: usize) -> (usize, usize, Duration) {
    let mut pool = TermPool::new();
    let mut solver = Solver::new();
    let mut config = FspAnalysisConfig::accuracy();
    config.server.post_parse_branching = depth;
    let started = Instant::now();
    let client = achilles_fsp::extract_client_predicate(
        &mut pool,
        &mut solver,
        &config.commands,
        &config.client,
        &ExploreConfig::default(),
    );
    let server_msg = SymMessage::fresh(&mut pool, &achilles_fsp::layout(), "msg");
    let prepared = prepare_client(
        &mut pool,
        &mut solver,
        client,
        server_msg,
        FieldMask::none(),
        Optimizations::none(),
    );
    let result = a_posteriori_diff(
        &mut pool,
        &mut solver,
        &FspServer::new(config.server.clone()),
        &prepared,
        &ExploreConfig::default(),
    );
    (
        result.trojans.len(),
        result.accepting_paths,
        started.elapsed(),
    )
}

fn run_workload(name: &str, depth: usize) -> (Run, Duration) {
    header(&format!(
        "workload: {name} (post-parse branching depth {depth})"
    ));

    let full = incremental(Optimizations::default(), depth);
    println!("{}", row("[full] Trojans", full.trojans));
    println!("{}", row("[full] time", fmt_secs(full.time)));
    println!(
        "{}",
        row("[full] predicates dropped directly", full.direct_drops)
    );
    println!(
        "{}",
        row(
            "[full] predicates dropped via differentFrom",
            full.matrix_drops
        )
    );
    println!("{}", row("[full] server paths pruned", full.paths_pruned));

    let no_matrix = Optimizations {
        use_diff_matrix: false,
        ..Optimizations::default()
    };
    let nm = incremental(no_matrix, depth);
    println!("{}", row("[no differentFrom] time", fmt_secs(nm.time)));

    let no_prune = Optimizations {
        prune_paths: false,
        ..Optimizations::default()
    };
    let np = incremental(no_prune, depth);
    println!("{}", row("[no path pruning] time", fmt_secs(np.time)));

    let (ap_trojans, ap_accepting, ap_time) = a_posteriori(depth);
    println!(
        "{}",
        row("[a-posteriori] accepting paths diffed", ap_accepting)
    );
    println!("{}", row("[a-posteriori] time", fmt_secs(ap_time)));

    assert_eq!(full.trojans, 80, "all Trojans found");
    assert_eq!(nm.trojans, 80);
    assert_eq!(np.trojans, 80);
    assert_eq!(ap_trojans, 80, "a-posteriori finds the same Trojans");
    (full, ap_time)
}

fn main() {
    let (_small_full, _small_ap) = run_workload("parse-only", 0);
    let (deep_full, deep_ap) = run_workload("deep-processing", 7);

    header("paper vs measured");
    println!("  paper:    optimized 1h03 vs non-optimized 2h15 (2.1× speed-up), same 80 Trojans");
    println!(
        "  measured: optimized {} vs a-posteriori {} ({:.2}× speed-up), same 80 Trojans",
        fmt_secs(deep_full.time),
        fmt_secs(deep_ap),
        deep_ap.as_secs_f64() / deep_full.time.as_secs_f64().max(1e-9),
    );
    println!("  note:     the parse-only workload is below the crossover (vanilla symex does");
    println!("            less work per path); with realistic post-parse processing the");
    println!("            incremental search wins, as in the paper.");
    assert!(
        deep_ap > deep_full.time,
        "incremental search must win on the deep-processing workload"
    );
}
