//! Shared helpers for the Achilles benchmark harness.
//!
//! The `[[bin]]` targets of this crate regenerate every table and figure of
//! the paper's evaluation (§6); the Criterion benches under `benches/`
//! measure the machinery on scaled workloads. This module holds the small
//! formatting utilities they share.

use std::time::Duration;

/// Formats a duration as seconds with millisecond precision.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Value of a `--flag value` pair in the process arguments.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Whether a bare `--flag` is present in the process arguments.
pub fn arg_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Worker-thread count from `--workers N` (default 1 = sequential).
pub fn workers_from_args() -> usize {
    arg_value("--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Renders a simple aligned two-column table row.
pub fn row(label: &str, value: impl std::fmt::Display) -> String {
    format!("  {label:<42} {value}")
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Replays an FSP analysis result against the concrete deployment and
/// prints the validation summary — the shared `--validate` tail of the
/// fig10/fig11/fuzzing bins.
///
/// Returns the summary so callers can assert on it.
pub fn validate_fsp_result(
    result: &achilles_fsp::FspAnalysisResult,
    config: &achilles_fsp::FspAnalysisConfig,
    workers: usize,
) -> achilles_replay::ValidationSummary {
    use achilles_replay::{validate_trojans, FspTarget, ReplayCorpus, ValidateConfig};
    let target = FspTarget::new(config.server.clone(), config.client.glob_expansion);
    let mut corpus = ReplayCorpus::new();
    let summary = validate_trojans(
        &target,
        &result.trojans,
        &mut corpus,
        &ValidateConfig::default().with_workers(workers),
    );
    header("concrete replay validation");
    println!("{}", row("witnesses replayed", summary.replayed));
    println!(
        "{}",
        row(
            "confirmed Trojans",
            format!(
                "{} ({:.0}%)",
                summary.confirmed,
                summary.confirmation_rate() * 100.0
            )
        )
    );
    println!(
        "{}",
        row("distinct crash signatures", corpus.distinct_signatures())
    );
    println!(
        "{}",
        row(
            "replay throughput",
            format!("{:.0} witnesses/s", summary.witnesses_per_sec())
        )
    );
    summary
}

/// A tiny fixed-width histogram for terminal "figures": draws `value`
/// against `max` as a bar of at most `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn fmt_secs_millis() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500s");
    }
}
