//! Shared helpers for the Achilles benchmark harness.
//!
//! The `[[bin]]` targets of this crate regenerate every table and figure of
//! the paper's evaluation (§6); the Criterion benches under `benches/`
//! measure the machinery on scaled workloads. This module holds the small
//! formatting utilities they share.

use std::time::Duration;

/// Formats a duration as seconds with millisecond precision.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

/// Value of a `--flag value` pair in the process arguments.
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// Whether a bare `--flag` is present in the process arguments.
pub fn arg_present(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Like [`arg_value`], but a flag present without a value (missing or
/// another `--flag` in its place) is a hard usage error — no silent
/// fallback to the default.
pub fn arg_value_required(flag: &str) -> Option<String> {
    let value = arg_value(flag);
    if arg_present(flag) && value.as_deref().is_none_or(|v| v.starts_with("--")) {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    value
}

/// Arms span tracing when `--trace FILE` is present and returns the
/// output path; the bin writes the file with [`write_trace`] once its
/// workload is done. Tracing is observation-only (see `achilles-obs`):
/// arming it changes no bench result.
pub fn trace_path_from_args() -> Option<std::path::PathBuf> {
    let path = arg_value_required("--trace")?;
    achilles_obs::set_tracing(true);
    Some(std::path::PathBuf::from(path))
}

/// Drains this thread's span buffer and writes the accumulated
/// Chrome-trace JSON to `path` (the `--trace` argument). Load the file in
/// `chrome://tracing` or Perfetto.
pub fn write_trace(path: &std::path::Path) {
    achilles_obs::drain_thread();
    achilles_obs::write_chrome_trace(path).expect("write trace file");
    println!("\n  wrote {}", path.display());
}

/// Host logical core count (1 when undetectable) — recorded in every
/// bench JSON so multicore measurements are interpretable: a sweep run on
/// a 1-core container cannot show real speedups, and the JSON now says so.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker-thread count from `--workers N` (default 1 = sequential).
pub fn workers_from_args() -> usize {
    arg_value("--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Renders a simple aligned two-column table row.
pub fn row(label: &str, value: impl std::fmt::Display) -> String {
    format!("  {label:<42} {value}")
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Replays discovered Trojans against the concrete deployment of any
/// [`TargetSpec`](achilles::TargetSpec) and prints the validation summary
/// — the shared `--validate` tail of the fig10/fig11/fuzzing bins. The
/// spec's `replay_target` factory supplies the deployment, so this helper
/// (and every bin built on it) names no protocol.
///
/// Returns the summary so callers can assert on it.
pub fn validate_spec_result(
    spec: &dyn achilles::TargetSpec,
    trojans: &[achilles::TrojanReport],
    workers: usize,
) -> achilles_replay::ValidationSummary {
    use achilles_replay::{validate_spec, ReplayCorpus, ValidateConfig};
    let mut corpus = ReplayCorpus::new();
    let summary = validate_spec(
        spec,
        trojans,
        &mut corpus,
        &ValidateConfig::default().with_workers(workers),
    );
    header(&format!("concrete replay validation ({})", spec.name()));
    println!("{}", row("witnesses replayed", summary.replayed));
    println!(
        "{}",
        row(
            "confirmed Trojans",
            format!(
                "{} ({:.0}%)",
                summary.confirmed,
                summary.confirmation_rate() * 100.0
            )
        )
    );
    println!(
        "{}",
        row("distinct crash signatures", corpus.distinct_signatures())
    );
    println!(
        "{}",
        row(
            "replay throughput",
            format!("{:.0} witnesses/s", summary.witnesses_per_sec())
        )
    );
    summary
}

/// A tiny fixed-width histogram for terminal "figures": draws `value`
/// against `max` as a bar of at most `width` characters.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn fmt_secs_millis() {
        assert_eq!(fmt_secs(Duration::from_millis(1500)), "1.500s");
    }
}
