//! Criterion bench of the Figure 10 workload: incremental Trojan discovery
//! during the server analysis (two utilities; the binary runs all eight).

use achilles_fsp::{expected_length_mismatch_trojans, run_analysis, FspAnalysisConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("incremental_discovery_2cmd", |b| {
        b.iter(|| {
            let config = FspAnalysisConfig::accuracy().with_commands(2);
            let result = run_analysis(&config);
            // Discovery timestamps are monotone: the curve of Figure 10.
            let mut last = std::time::Duration::ZERO;
            for t in &result.trojans {
                assert!(t.found_at >= last);
                last = t.found_at;
            }
            black_box(result.trojans.len())
        })
    });
    // One workers>1 smoke entry exercising the parallel path; the full
    // {1,2,4,8} wall-clock sweep lives in the `parallel_scaling` bin
    // (BENCH_parallel.json) — duplicating it here only multiplies bench time.
    group.bench_function("incremental_discovery_2cmd_workers4", |b| {
        b.iter(|| {
            let config = FspAnalysisConfig::accuracy()
                .with_commands(2)
                .with_workers(4);
            let result = run_analysis(&config);
            assert_eq!(result.trojans.len(), expected_length_mismatch_trojans(2));
            black_box(result.server_paths)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
