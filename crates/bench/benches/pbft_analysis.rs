//! Criterion bench of the PBFT experiment: full analysis (the paper's
//! "a few seconds") and the cluster simulation.

use achilles_pbft::{run_analysis, run_workload, ClusterConfig, PbftAnalysisConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_pbft(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbft");
    group.sample_size(10);

    group.bench_function("full_analysis", |b| {
        b.iter(|| {
            let result = run_analysis(&PbftAnalysisConfig::paper());
            assert_eq!(result.distinct_families(), 1);
            black_box(result.trojans.len())
        })
    });

    group.bench_function("cluster_10k_requests", |b| {
        b.iter(|| {
            let cluster = run_workload(ClusterConfig::default(), 10_000, 10);
            black_box(cluster.throughput())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_pbft);
criterion_main!(benches);
