//! Criterion bench of the fuzzing baseline: raw classification throughput
//! (the number behind the §6.2 "75,000 tests per minute" comparison).

use achilles_fuzz::{run_campaign, FuzzConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn bench_fuzz(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuzzing");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("campaign_100k", |b| {
        b.iter(|| {
            let report = run_campaign(&FuzzConfig {
                budget_tests: 100_000,
                ..FuzzConfig::default()
            });
            black_box(report.accepted)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fuzz);
criterion_main!(benches);
