//! Criterion bench of the §6.4 ablation on a two-utility workload:
//! optimized incremental search vs the non-optimized a-posteriori
//! differencing.

use achilles::{a_posteriori_diff, prepare_client, FieldMask, Optimizations};
use achilles_fsp::{
    extract_client_predicate, run_analysis, FspAnalysisConfig, FspServer, FspServerConfig,
};
use achilles_solver::{Solver, TermPool};
use achilles_symvm::{ExploreConfig, SymMessage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    group.bench_function("optimized_2cmd", |b| {
        b.iter(|| {
            let config = FspAnalysisConfig::accuracy().with_commands(2);
            let result = run_analysis(&config);
            black_box(result.trojans.len())
        })
    });

    group.bench_function("a_posteriori_2cmd", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let config = FspAnalysisConfig::accuracy().with_commands(2);
            let client = extract_client_predicate(
                &mut pool,
                &mut solver,
                &config.commands,
                &config.client,
                &ExploreConfig::default(),
            );
            let server_msg = SymMessage::fresh(&mut pool, &achilles_fsp::layout(), "msg");
            let prepared = prepare_client(
                &mut pool,
                &mut solver,
                client,
                server_msg,
                FieldMask::none(),
                Optimizations::none(),
            );
            let mut sc = FspServerConfig::default();
            sc.commands.truncate(2);
            let result = a_posteriori_diff(
                &mut pool,
                &mut solver,
                &FspServer::new(sc),
                &prepared,
                &ExploreConfig::default(),
            );
            black_box(result.trojans.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
