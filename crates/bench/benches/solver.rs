//! Criterion micro-benchmarks of the SMT-lite solver: satisfiability,
//! model generation, negation-style disjunction splitting.

use achilles_solver::{solve, SolverConfig, TermId, TermPool, Width};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Interval chain: 10 constraints over one 32-bit variable.
fn interval_chain(pool: &mut TermPool) -> Vec<TermId> {
    let x = pool.fresh("x", Width::W32);
    let mut asserts = Vec::new();
    for i in 0..10u64 {
        let lo = pool.constant(i * 10, Width::W32);
        let hi = pool.constant(1_000_000 - i, Width::W32);
        asserts.push(pool.ult(lo, x));
        asserts.push(pool.ult(x, hi));
    }
    asserts
}

/// A negate-style query: conjunction of disjunctions over message fields.
fn negation_query(pool: &mut TermPool) -> Vec<TermId> {
    let fields: Vec<TermId> = (0..8)
        .map(|i| pool.fresh(&format!("msg.f{i}"), Width::W8))
        .collect();
    let mut asserts = Vec::new();
    // Path constraints pin half the fields.
    for (i, &f) in fields.iter().take(4).enumerate() {
        let c = pool.constant(i as u64 + 1, Width::W8);
        asserts.push(pool.eq(f, c));
    }
    // Three negated client paths: disjunctions of disequalities.
    for j in 0..3u64 {
        let mut clauses = Vec::new();
        for (i, &f) in fields.iter().enumerate() {
            let c = pool.constant((i as u64 + j) % 7, Width::W8);
            clauses.push(pool.ne(f, c));
        }
        let disj = pool.or_all(clauses);
        asserts.push(disj);
    }
    asserts
}

fn bench_solver(c: &mut Criterion) {
    c.bench_function("solver/interval_chain_sat", |b| {
        b.iter_batched(
            || {
                let mut pool = TermPool::new();
                let asserts = interval_chain(&mut pool);
                (pool, asserts)
            },
            |(mut pool, asserts)| {
                let (r, _) = solve(&mut pool, &asserts, &SolverConfig::default());
                black_box(r.is_sat())
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("solver/negation_disjunctions", |b| {
        b.iter_batched(
            || {
                let mut pool = TermPool::new();
                let asserts = negation_query(&mut pool);
                (pool, asserts)
            },
            |(mut pool, asserts)| {
                let (r, _) = solve(&mut pool, &asserts, &SolverConfig::default());
                black_box(r.is_sat())
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("solver/opaque_fun_enumeration", |b| {
        b.iter_batched(
            || {
                let mut pool = TermPool::new();
                let parity = pool.register_fun("parity", Width::W8, |a| a[0] % 2);
                let x = pool.fresh("x", Width::W8);
                let app = pool.apply(parity, vec![x]);
                let one = pool.constant(1, Width::W8);
                let odd = pool.eq(app, one);
                let c200 = pool.constant(200, Width::W8);
                let big = pool.ult(c200, x);
                (pool, vec![odd, big])
            },
            |(mut pool, asserts)| {
                let (r, _) = solve(&mut pool, &asserts, &SolverConfig::default());
                black_box(r.is_sat())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
