//! Criterion bench of the Figure 11 instrumentation: sampling matching
//! client predicates along server paths (glob-mode client, one utility).

use achilles_fsp::{run_analysis, FspAnalysisConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("matching_samples_glob_1cmd", |b| {
        b.iter(|| {
            let config = FspAnalysisConfig::wildcard().with_commands(1);
            let result = run_analysis(&config);
            assert!(!result.samples.is_empty());
            black_box(result.samples.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
