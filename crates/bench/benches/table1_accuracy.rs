//! Criterion bench of the Table 1 workload (scaled to two FSP utilities so
//! a `cargo bench` run stays in seconds; the `table1_accuracy` *binary*
//! regenerates the full eight-utility table).

use achilles::{classic_symex, FieldMask};
use achilles_fsp::{
    expected_length_mismatch_trojans, run_analysis, FspAnalysisConfig, FspServer, FspServerConfig,
};
use achilles_solver::{Solver, TermPool};
use achilles_symvm::{ExploreConfig, SymMessage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    group.bench_function("achilles_2cmd", |b| {
        b.iter(|| {
            let config = FspAnalysisConfig::accuracy().with_commands(2);
            let result = run_analysis(&config);
            assert_eq!(result.trojans.len(), expected_length_mismatch_trojans(2));
            black_box(result.trojans.len())
        })
    });

    group.bench_function("classic_symex_2cmd", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let server_msg = SymMessage::fresh(&mut pool, &achilles_fsp::layout(), "msg");
            let mut sc = FspServerConfig::default();
            sc.commands.truncate(2);
            let result = classic_symex(
                &mut pool,
                &mut solver,
                &FspServer::new(sc),
                &server_msg,
                &ExploreConfig::default(),
                &FieldMask::none(),
                10,
            );
            black_box(result.candidates.len())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
