//! Criterion benchmarks of the symbolic executor: path enumeration
//! throughput on branching programs.

use achilles_solver::{Solver, TermPool, Width};
use achilles_symvm::{Executor, ExploreConfig, PathResult, SymEnv};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_executor(c: &mut Criterion) {
    c.bench_function("executor/branch_tree_depth6", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
                for i in 0..6 {
                    let b = env.sym(&format!("b{i}"), Width::BOOL);
                    let _ = env.branch(b)?;
                }
                env.mark_accept();
                Ok(())
            });
            black_box(result.paths.len())
        })
    });

    c.bench_function("executor/validation_chain", |b| {
        b.iter(|| {
            let mut pool = TermPool::new();
            let mut solver = Solver::new();
            let mut exec = Executor::new(&mut pool, &mut solver, ExploreConfig::default());
            let result = exec.explore(&|env: &mut SymEnv<'_>| -> PathResult<()> {
                let x = env.sym("x", Width::W32);
                for i in 1..=8u64 {
                    let c = env.constant(i * 100, Width::W32);
                    if !env.if_ult(x, c)? {
                        return Ok(());
                    }
                }
                env.mark_accept();
                Ok(())
            });
            black_box(result.paths.len())
        })
    });
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
