pub fn anchor() {}
