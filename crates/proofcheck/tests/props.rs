//! Property-based tests tying the solver's certificates to the checker.
//!
//! Three properties over randomly generated constraint sets:
//!
//! 1. Every `Unsat` verdict's certificate validates under the independent
//!    checker, and its unsat core — re-solved *alone* — is itself `Unsat`.
//! 2. Tampering with a certificate (redirecting a proof step's ref,
//!    replacing a node with `Admitted`) makes the checker reject it.
//! 3. Dropping any core member from the query makes the checker reject the
//!    certificate against the reduced assertion set.

use std::collections::HashMap;

use achilles_solver::{
    solve, Certificate, ProofNode, ProofStep, SatResult, SolverConfig, TermId, TermPool, Width,
};
use proptest::prelude::*;

const W: Width = Width::W8;

/// A tiny constraint AST lowered to terms (mirrors the solver's own
/// property-test fragment; biased toward unsatisfiable combinations so the
/// certificate path is exercised often).
#[derive(Clone, Debug)]
enum C {
    EqConst(usize, u8),
    NeConst(usize, u8),
    LtConst(usize, u8),
    GtConst(usize, u8),
    EqVar(usize, usize),
    AddEq(usize, u8, u8),
    Or(Box<C>, Box<C>),
    And(Box<C>, Box<C>),
}

fn lower(pool: &mut TermPool, vars: &[TermId], c: &C) -> TermId {
    match *c {
        C::EqConst(v, k) => {
            let kc = pool.constant(u64::from(k), W);
            pool.eq(vars[v], kc)
        }
        C::NeConst(v, k) => {
            let kc = pool.constant(u64::from(k), W);
            pool.ne(vars[v], kc)
        }
        C::LtConst(v, k) => {
            let kc = pool.constant(u64::from(k), W);
            pool.ult(vars[v], kc)
        }
        C::GtConst(v, k) => {
            let kc = pool.constant(u64::from(k), W);
            pool.ult(kc, vars[v])
        }
        C::EqVar(a, b) => pool.eq(vars[a], vars[b]),
        C::AddEq(v, a, b) => {
            let ac = pool.constant(u64::from(a), W);
            let bc = pool.constant(u64::from(b), W);
            let sum = pool.add(vars[v], ac);
            pool.eq(sum, bc)
        }
        C::Or(ref l, ref r) => {
            let lt = lower(pool, vars, l);
            let rt = lower(pool, vars, r);
            pool.or(lt, rt)
        }
        C::And(ref l, ref r) => {
            let lt = lower(pool, vars, l);
            let rt = lower(pool, vars, r);
            pool.and(lt, rt)
        }
    }
}

fn leaf(num_vars: usize) -> impl Strategy<Value = C> {
    let v = 0..num_vars;
    // Small constant range makes conflicting constraints likely.
    let k = 0u8..8;
    prop_oneof![
        (v.clone(), k.clone()).prop_map(|(v, k)| C::EqConst(v, k)),
        (v.clone(), k.clone()).prop_map(|(v, k)| C::NeConst(v, k)),
        (v.clone(), k.clone()).prop_map(|(v, k)| C::LtConst(v, k)),
        (v.clone(), k.clone()).prop_map(|(v, k)| C::GtConst(v, k)),
        (v.clone(), v.clone()).prop_map(|(a, b)| C::EqVar(a, b)),
        (v, k.clone(), k).prop_map(|(v, a, b)| C::AddEq(v, a, b)),
    ]
}

fn constraint(num_vars: usize) -> impl Strategy<Value = C> {
    leaf(num_vars).prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| C::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| C::And(Box::new(a), Box::new(b))),
        ]
    })
}

/// Redirects the first ref encountered in the proof to `u32::MAX`, which no
/// context can contain. Returns `None` if the tree holds no refs to tamper.
fn redirect_first_ref(node: &ProofNode) -> Option<ProofNode> {
    match node {
        ProofNode::Derive { steps, then } => {
            if let Some(first) = steps.first() {
                let mut steps = steps.clone();
                steps[0] = match first {
                    ProofStep::Restrict { var, .. } => ProofStep::Restrict {
                        just: u32::MAX,
                        var: *var,
                    },
                    ProofStep::Merge { .. } => ProofStep::Merge { just: u32::MAX },
                };
                Some(ProofNode::Derive {
                    steps,
                    then: then.clone(),
                })
            } else {
                redirect_first_ref(then).map(|t| ProofNode::Derive {
                    steps: steps.clone(),
                    then: Box::new(t),
                })
            }
        }
        ProofNode::SplitOr { or, cases } => redirect_first_ref(cases.first()?).map(|t| {
            let mut cases = cases.clone();
            cases[0] = t;
            ProofNode::SplitOr { or: *or, cases }
        }),
        ProofNode::SplitVal { var, cases } => redirect_first_ref(cases.first()?).map(|t| {
            let mut cases = cases.clone();
            cases[0] = t;
            ProofNode::SplitVal { var: *var, cases }
        }),
        ProofNode::Falsified { .. } => Some(ProofNode::Falsified { just: u32::MAX }),
        ProofNode::EmptyRestrict { var, .. } => Some(ProofNode::EmptyRestrict {
            just: u32::MAX,
            var: *var,
        }),
        ProofNode::EmptyMerge { .. } => Some(ProofNode::EmptyMerge { just: u32::MAX }),
        ProofNode::FalseCore { .. } => Some(ProofNode::FalseCore { core: u32::MAX }),
        ProofNode::Admitted => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn unsat_cores_revalidate_and_resolve_unsat(
        cs in prop::collection::vec(constraint(2), 2..6),
    ) {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", W);
        let y = pool.fresh("y", W);
        let vars = [x, y];
        let assertions: Vec<TermId> =
            cs.iter().map(|c| lower(&mut pool, &vars, c)).collect();
        let config = SolverConfig::default();
        let (result, _) = solve(&mut pool, &assertions, &config);
        let SatResult::Unsat(cert) = result else {
            return Ok(()); // only unsat verdicts carry certificates
        };

        // Property 1a: the certificate validates against the full query.
        achilles_proofcheck::check(&mut pool, &assertions, &cert)
            .map_err(|e| TestCaseError::fail(format!("valid certificate rejected: {e}")))?;

        // Property 1b: the core alone is already unsatisfiable, and its
        // fresh certificate validates too.
        let by_fp: HashMap<u128, TermId> =
            assertions.iter().map(|&t| (pool.term_fp(t), t)).collect();
        let core_terms: Vec<TermId> = cert
            .core
            .iter()
            .map(|fp| *by_fp.get(fp).expect("core fps come from the query"))
            .collect();
        prop_assert!(!core_terms.is_empty(), "unsat certificate with empty core");
        let (core_result, _) = solve(&mut pool, &core_terms, &config);
        let SatResult::Unsat(core_cert) = core_result else {
            return Err(TestCaseError::fail("unsat core is not unsat on its own"));
        };
        achilles_proofcheck::check(&mut pool, &core_terms, &core_cert)
            .map_err(|e| TestCaseError::fail(format!("core certificate rejected: {e}")))?;

        // Property 2a: replacing the proof with an admitted claim rejects.
        let admitted = Certificate {
            core: cert.core.clone(),
            proof: ProofNode::Admitted,
            steps: cert.steps,
        };
        prop_assert!(
            achilles_proofcheck::check(&mut pool, &assertions, &admitted).is_err(),
            "admitted certificate accepted"
        );

        // Property 2b: redirecting any justification ref out of the context
        // rejects.
        if let Some(tampered_proof) = redirect_first_ref(&cert.proof) {
            let tampered = Certificate {
                core: cert.core.clone(),
                proof: tampered_proof,
                steps: cert.steps,
            };
            prop_assert!(
                achilles_proofcheck::check(&mut pool, &assertions, &tampered).is_err(),
                "certificate with redirected ref accepted"
            );
        }

        // Property 3: dropping any single core member from the query
        // rejects (the core no longer resolves).
        for drop_fp in cert.core.iter() {
            let reduced: Vec<TermId> = assertions
                .iter()
                .copied()
                .filter(|&t| pool.term_fp(t) != *drop_fp)
                .collect();
            prop_assert!(
                achilles_proofcheck::check(&mut pool, &reduced, &cert).is_err(),
                "certificate accepted without one of its core assertions"
            );
        }
    }
}
