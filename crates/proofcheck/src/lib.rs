//! Independent checker for unsat certificates emitted by `achilles-solver`.
//!
//! The solver's `Sat` verdicts are verified end-to-end (models are
//! re-evaluated and witnesses replayed); its `Unsat` verdicts carry a
//! [`Certificate`] — a refutation trace plus the unsat core — and *this*
//! crate is what makes those trustworthy. It shares only the term and width
//! definitions (`TermPool`, `TermId`, `Op`, `Width`) with the solver: the
//! negation-normal-form conversion, the interval sets, the affine views and
//! the propagation dispatch are all re-implemented here, so a bug in the
//! search cannot validate its own mistake.
//!
//! # What checking means
//!
//! A certificate never records claimed truth sets: every
//! [`ProofStep`](achilles_solver::ProofStep) only *points* at an assertion
//! (by context ref) and a variable (by fingerprint). The checker re-derives
//! the restriction from the pointed-at term itself and replays it on its own
//! domain state, which therefore always over-approximates the solution set
//! of the assertions in force. Whenever that state becomes infeasible (a
//! domain empties, or an asserted literal evaluates to the wrong polarity
//! under the pinned values), the branch is genuinely refuted and the node is
//! accepted regardless of what the rest of the certificate claims — the
//! over-approximation makes that sound. Conversely, any *mismatch* between
//! what a node claims and what the checker derives (a restrict that changes
//! nothing, a split with the wrong number of cases, a ref pointing at the
//! wrong kind of entry) is a rejection.
//!
//! # The ref protocol
//!
//! Converting each core assertion to negation normal form yields a tree of
//! `And` / `Or` / literal nodes. The checker's *context* is the sequence of
//! literal and `Or` entries met while walking the core assertions in order
//! (`And` children in place; an `Or` contributes one entry and its children
//! are not walked until a `SplitOr` case assumes one of them, pushing that
//! disjunct's entries at the end of the context for the duration of the
//! case). Refs in the certificate are indices into this context; the
//! recorder in `achilles-solver` maintains the same counter, so a faithful
//! certificate's refs line up exactly.
//!
//! Because the proof's refs are expressed against the context built from
//! the **core assertions alone**, the same certificate validates against any
//! assertion set that contains the core — which is what lets the solver's
//! shared cache answer superset queries by subsumption and still pass the
//! audit.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use achilles_solver::{
    set_proof_audit, Certificate, Op, ProofNode, ProofStep, TermId, TermPool, VarId, Width,
};

mod iset;
use iset::ISet;

/// Hard cap on the number of values a `SplitVal` node may enumerate. The
/// solver's own exhaustive-enumeration limit is far below this; a
/// certificate exceeding it is rejected rather than replayed.
const MAX_ENUM: u64 = 65_536;

/// Environment variable that makes [`install_audit_from_env`] install the
/// audit hook (set to `1` or `true`).
pub const CHECK_PROOFS_ENV: &str = "ACHILLES_CHECK_PROOFS";

// ---------------------------------------------------------------------------
// NNF mirror
// ---------------------------------------------------------------------------

/// A literal: a boolean term asserted with a polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CLit {
    term: TermId,
    positive: bool,
}

/// Negation-normal-form formula, re-derived independently of the solver.
#[derive(Clone, Debug, PartialEq, Eq)]
enum CF {
    True,
    False,
    Lit(CLit),
    And(Vec<CF>),
    Or(Vec<CF>),
}

fn cmk_and(parts: Vec<CF>) -> CF {
    let mut out = Vec::with_capacity(parts.len());
    for p in parts {
        match p {
            CF::True => {}
            CF::False => return CF::False,
            CF::And(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => CF::True,
        1 => out.pop().expect("len checked"),
        _ => CF::And(out),
    }
}

fn cmk_or(parts: Vec<CF>) -> CF {
    let mut out = Vec::with_capacity(parts.len());
    for p in parts {
        match p {
            CF::False => {}
            CF::True => return CF::True,
            CF::Or(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => CF::False,
        1 => out.pop().expect("len checked"),
        _ => CF::Or(out),
    }
}

/// Negation normal form of `t` (of its negation when `positive == false`):
/// negation pushed to the leaves, `not <u` / `not <=u` rewritten to the dual
/// comparison, boolean `ite` expanded.
fn cnnf(pool: &mut TermPool, t: TermId, positive: bool) -> CF {
    let node = pool.node(t).clone();
    match node.op {
        Op::Const(v) => {
            if (v != 0) == positive {
                CF::True
            } else {
                CF::False
            }
        }
        Op::Not => cnnf(pool, node.args[0], !positive),
        Op::And => {
            let parts: Vec<CF> = node.args.iter().map(|&a| cnnf(pool, a, positive)).collect();
            if positive {
                cmk_and(parts)
            } else {
                cmk_or(parts)
            }
        }
        Op::Or => {
            let parts: Vec<CF> = node.args.iter().map(|&a| cnnf(pool, a, positive)).collect();
            if positive {
                cmk_or(parts)
            } else {
                cmk_and(parts)
            }
        }
        Op::Ult => {
            if positive {
                CF::Lit(CLit { term: t, positive })
            } else {
                let dual = pool.ule(node.args[1], node.args[0]);
                cnnf(pool, dual, true)
            }
        }
        Op::Ule => {
            if positive {
                CF::Lit(CLit { term: t, positive })
            } else {
                let dual = pool.ult(node.args[1], node.args[0]);
                cnnf(pool, dual, true)
            }
        }
        Op::Ite if node.width == Width::BOOL => {
            let (c, a, b) = (node.args[0], node.args[1], node.args[2]);
            let ca = {
                let fc = cnnf(pool, c, true);
                let fa = cnnf(pool, a, positive);
                cmk_and(vec![fc, fa])
            };
            let cb = {
                let fc = cnnf(pool, c, false);
                let fb = cnnf(pool, b, positive);
                cmk_and(vec![fc, fb])
            };
            cmk_or(vec![ca, cb])
        }
        _ => CF::Lit(CLit { term: t, positive }),
    }
}

// ---------------------------------------------------------------------------
// Affine mirror
// ---------------------------------------------------------------------------

/// A `(zext(var) + offset) mod 2^term_width`-shaped term.
#[derive(Clone, Copy, Debug)]
struct CAffine {
    var: VarId,
    var_width: Width,
    term_width: Width,
    offset: u64,
}

impl CAffine {
    fn inverse_image(&self, term_values: &ISet) -> ISet {
        let shifted = term_values.sub_const(self.offset);
        let mut out = ISet::empty(self.var_width);
        let max = self.var_width.max_unsigned();
        for &(lo, hi) in shifted.intervals() {
            if lo > max {
                continue;
            }
            out.union(&ISet::range(self.var_width, lo, hi.min(max)));
        }
        out
    }
}

fn caffine(pool: &TermPool, t: TermId, lookup: &dyn Fn(VarId) -> Option<u64>) -> Option<CAffine> {
    let node = pool.node(t);
    let w = node.width;
    let side_const = |s: TermId| pool.eval_with(s, lookup);
    match node.op {
        Op::Var(v) if lookup(v).is_none() => Some(CAffine {
            var: v,
            var_width: w,
            term_width: w,
            offset: 0,
        }),
        Op::Add => {
            let (a, b) = (node.args[0], node.args[1]);
            if let Some(c) = side_const(b) {
                let base = caffine(pool, a, lookup)?;
                Some(CAffine {
                    offset: w.truncate(base.offset.wrapping_add(c)),
                    ..base
                })
            } else if let Some(c) = side_const(a) {
                let base = caffine(pool, b, lookup)?;
                Some(CAffine {
                    offset: w.truncate(base.offset.wrapping_add(c)),
                    ..base
                })
            } else {
                None
            }
        }
        Op::Sub => {
            let (a, b) = (node.args[0], node.args[1]);
            let c = side_const(b)?;
            let base = caffine(pool, a, lookup)?;
            Some(CAffine {
                offset: w.truncate(base.offset.wrapping_sub(c)),
                ..base
            })
        }
        Op::BitXor => {
            let (a, b) = (node.args[0], node.args[1]);
            let (inner, c) = if let Some(c) = side_const(b) {
                (a, c)
            } else if let Some(c) = side_const(a) {
                (b, c)
            } else {
                return None;
            };
            if c != w.sign_bit() {
                return None;
            }
            let base = caffine(pool, inner, lookup)?;
            Some(CAffine {
                offset: w.truncate(base.offset.wrapping_add(c)),
                ..base
            })
        }
        Op::ZExt => {
            let inner = node.args[0];
            let v = pool.as_var(inner)?;
            if lookup(v).is_some() {
                return None;
            }
            Some(CAffine {
                var: v,
                var_width: pool.width(inner),
                term_width: w,
                offset: 0,
            })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Domain state
// ---------------------------------------------------------------------------

/// Union-find over variable indices plus per-class interval domains. Always
/// an over-approximation of the solution set of the assertions replayed so
/// far, which is what makes early-accept-on-conflict sound.
#[derive(Clone, Debug, Default)]
struct CState {
    parent: HashMap<u32, u32>,
    dom: HashMap<u32, ISet>,
    /// Width per variable index (the checker cannot construct `VarId`s for
    /// class roots, so it records widths as variables are first seen).
    width: HashMap<u32, Width>,
}

/// Result of applying a derived refinement.
enum AppliedOut {
    Changed,
    Unchanged,
    /// The state became infeasible: the branch is refuted.
    Infeasible,
}

impl CState {
    fn ensure(&mut self, pool: &TermPool, v: VarId) {
        let idx = v.index() as u32;
        self.parent.entry(idx).or_insert(idx);
        self.width.entry(idx).or_insert(pool.var_info(v).width);
    }

    fn find(&self, idx: u32) -> u32 {
        let mut i = idx;
        while let Some(&p) = self.parent.get(&i) {
            if p == i {
                break;
            }
            i = p;
        }
        i
    }

    fn value_of(&self, v: VarId) -> Option<u64> {
        let root = self.find(v.index() as u32);
        self.dom.get(&root).and_then(ISet::as_singleton)
    }

    fn domain_of(&mut self, pool: &TermPool, v: VarId) -> ISet {
        self.ensure(pool, v);
        let root = self.find(v.index() as u32);
        match self.dom.get(&root) {
            Some(d) => d.clone(),
            None => ISet::full(self.width[&root]),
        }
    }

    fn restrict(&mut self, pool: &TermPool, v: VarId, set: &ISet) -> Result<AppliedOut, String> {
        self.ensure(pool, v);
        let root = self.find(v.index() as u32);
        let width = self.width[&root];
        if set.width() != width {
            return Err(format!(
                "restrict width mismatch: class {width:?} vs set {:?}",
                set.width()
            ));
        }
        let mut d = match self.dom.get(&root) {
            Some(d) => d.clone(),
            None => ISet::full(width),
        };
        let before = d.clone();
        d.intersect(set);
        if d.is_empty() {
            return Ok(AppliedOut::Infeasible);
        }
        let changed = d != before;
        self.dom.insert(root, d);
        Ok(if changed {
            AppliedOut::Changed
        } else {
            AppliedOut::Unchanged
        })
    }

    fn merge(&mut self, pool: &TermPool, a: VarId, b: VarId) -> AppliedOut {
        self.ensure(pool, a);
        self.ensure(pool, b);
        let ra = self.find(a.index() as u32);
        let rb = self.find(b.index() as u32);
        if ra == rb {
            return AppliedOut::Unchanged;
        }
        let (wa, wb) = (self.width[&ra], self.width[&rb]);
        if wa != wb {
            // An equality over mismatched widths has no solutions.
            return AppliedOut::Infeasible;
        }
        let da = self.dom.remove(&ra).unwrap_or_else(|| ISet::full(wa));
        let db = self.dom.remove(&rb).unwrap_or_else(|| ISet::full(wb));
        let mut d = da;
        d.intersect(&db);
        if d.is_empty() {
            return AppliedOut::Infeasible;
        }
        self.parent.insert(rb, ra);
        self.dom.insert(ra, d);
        AppliedOut::Changed
    }
}

// ---------------------------------------------------------------------------
// Dispatch mirror
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum CmpKind {
    Eq,
    Ult,
    Ule,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SidePos {
    Left,
    Right,
}

/// What asserting a literal derives in the current state, mirroring the
/// solver's propagation dispatch decision-for-decision.
enum Outcome {
    /// Fully evaluable and already holds.
    True,
    /// Fully evaluable with the wrong polarity: the state is infeasible.
    False,
    /// Would intersect the class of `var` with the set.
    Restrict(VarId, ISet),
    /// Immediately contradictory (empty inverse image): infeasible,
    /// attributed to `var`.
    Conflict(VarId),
    /// Would merge the two classes.
    Merge(VarId, VarId),
    /// Not derivable by interval reasoning in this state.
    Deferred,
}

fn dispatch(pool: &TermPool, state: &CState, lit: CLit) -> Outcome {
    if let Some(v) = pool.eval_with(lit.term, &|v| state.value_of(v)) {
        return if (v != 0) == lit.positive {
            Outcome::True
        } else {
            Outcome::False
        };
    }
    let node = pool.node(lit.term).clone();
    match node.op {
        Op::Var(v) if node.width == Width::BOOL => {
            let want = u64::from(lit.positive);
            Outcome::Restrict(v, ISet::singleton(Width::BOOL, want))
        }
        Op::Eq => dispatch_cmp(pool, state, lit, CmpKind::Eq, node.args[0], node.args[1]),
        Op::Ult => dispatch_cmp(pool, state, lit, CmpKind::Ult, node.args[0], node.args[1]),
        Op::Ule => dispatch_cmp(pool, state, lit, CmpKind::Ule, node.args[0], node.args[1]),
        _ => Outcome::Deferred,
    }
}

fn dispatch_cmp(
    pool: &TermPool,
    state: &CState,
    lit: CLit,
    kind: CmpKind,
    a: TermId,
    b: TermId,
) -> Outcome {
    let lookup = |v: VarId| state.value_of(v);
    let ca = pool.eval_with(a, &lookup);
    let cb = pool.eval_with(b, &lookup);
    let va = caffine(pool, a, &lookup);
    let vb = caffine(pool, b, &lookup);
    let width = pool.width(a);

    match (ca, cb, va, vb) {
        (_, Some(c), Some(av), _) => {
            restrict_affine(av, kind, SidePos::Left, c, width, lit.positive)
        }
        (Some(c), _, _, Some(bv)) => {
            restrict_affine(bv, kind, SidePos::Right, c, width, lit.positive)
        }
        (None, None, Some(av), Some(bv))
            if kind == CmpKind::Eq
                && lit.positive
                && av.offset == bv.offset
                && av.var_width == bv.var_width
                && av.var_width == av.term_width
                && bv.var_width == bv.term_width =>
        {
            Outcome::Merge(av.var, bv.var)
        }
        (_, Some(c), None, _) => try_extract(pool, a, kind, SidePos::Left, c, lit.positive),
        (Some(c), _, _, None) => try_extract(pool, b, kind, SidePos::Right, c, lit.positive),
        _ => Outcome::Deferred,
    }
}

fn restrict_affine(
    av: CAffine,
    kind: CmpKind,
    side: SidePos,
    c: u64,
    width: Width,
    positive: bool,
) -> Outcome {
    let term_values = match (kind, side, positive) {
        (CmpKind::Eq, _, true) => ISet::singleton(width, c),
        (CmpKind::Eq, _, false) => {
            let mut s = ISet::full(width);
            s.remove_value(c);
            s
        }
        (CmpKind::Ult, SidePos::Left, _) => {
            if c == 0 {
                return Outcome::Conflict(av.var);
            }
            ISet::range(width, 0, c - 1)
        }
        (CmpKind::Ult, SidePos::Right, _) => {
            if c == width.max_unsigned() {
                return Outcome::Conflict(av.var);
            }
            ISet::range(width, c + 1, width.max_unsigned())
        }
        (CmpKind::Ule, SidePos::Left, _) => ISet::range(width, 0, c),
        (CmpKind::Ule, SidePos::Right, _) => ISet::range(width, c, width.max_unsigned()),
    };
    let var_values = av.inverse_image(&term_values);
    if var_values.is_empty() {
        return Outcome::Conflict(av.var);
    }
    Outcome::Restrict(av.var, var_values)
}

fn try_extract(
    pool: &TermPool,
    term: TermId,
    kind: CmpKind,
    side: SidePos,
    c: u64,
    positive: bool,
) -> Outcome {
    let node = pool.node(term).clone();
    let Op::Extract { lo } = node.op else {
        return Outcome::Deferred;
    };
    let Some(var) = pool.as_var(node.args[0]) else {
        return Outcome::Deferred;
    };
    let ew = node.width;
    let vw = pool.width(node.args[0]);
    let high_bits = vw.bits() - u32::from(lo) - ew.bits();

    let slice_values = match (kind, side, positive) {
        (CmpKind::Eq, _, true) => ISet::singleton(ew, c),
        (CmpKind::Eq, _, false) => {
            let mut s = ISet::full(ew);
            s.remove_value(c);
            s
        }
        (CmpKind::Ult, SidePos::Left, _) => {
            if c == 0 {
                return Outcome::Conflict(var);
            }
            ISet::range(ew, 0, c - 1)
        }
        (CmpKind::Ult, SidePos::Right, _) => {
            if c >= ew.max_unsigned() {
                return Outcome::Conflict(var);
            }
            ISet::range(ew, c + 1, ew.max_unsigned())
        }
        (CmpKind::Ule, SidePos::Left, _) => ISet::range(ew, 0, c),
        (CmpKind::Ule, SidePos::Right, _) => ISet::range(ew, c, ew.max_unsigned()),
    };
    const MAX_STRIPES: u64 = 4096;
    let high_count = if high_bits >= 63 {
        return Outcome::Deferred;
    } else {
        1u64 << high_bits
    };
    let stripe_count = match high_count.checked_mul(slice_values.intervals().len() as u64) {
        Some(n) => n,
        None => return Outcome::Deferred,
    };
    if stripe_count > MAX_STRIPES {
        return Outcome::Deferred;
    }

    let mut allowed = ISet::empty(vw);
    let slice_shift = u32::from(lo);
    let low_mask = (1u64 << slice_shift).wrapping_sub(1);
    for h in 0..high_count {
        let high = h << (slice_shift + ew.bits());
        for &(ivlo, ivhi) in slice_values.intervals() {
            let lo_bound = high | (ivlo << slice_shift);
            let hi_bound = high | (ivhi << slice_shift) | low_mask;
            allowed.union(&ISet::range(vw, lo_bound, hi_bound));
        }
    }
    if allowed.is_empty() {
        return Outcome::Conflict(var);
    }
    Outcome::Restrict(var, allowed)
}

// ---------------------------------------------------------------------------
// The checker
// ---------------------------------------------------------------------------

/// One context entry: an asserted literal or an open disjunction.
#[derive(Clone, Debug)]
enum CEntry {
    Lit(CLit),
    Or(Vec<CF>),
}

struct Checker<'p> {
    pool: &'p mut TermPool,
    ctx: Vec<CEntry>,
    core: Vec<TermId>,
}

/// Outcome of checking one proof node in one state.
type NodeResult = Result<(), String>;

impl Checker<'_> {
    /// Appends a formula's entries to the context, in structural order.
    fn push_formula(&mut self, f: &CF) {
        match f {
            CF::True | CF::False => {}
            CF::Lit(l) => self.ctx.push(CEntry::Lit(*l)),
            CF::And(parts) => {
                for p in parts {
                    self.push_formula(p);
                }
            }
            CF::Or(parts) => self.ctx.push(CEntry::Or(parts.clone())),
        }
    }

    fn lit_at(&self, just: u32) -> Result<CLit, String> {
        match self.ctx.get(just as usize) {
            Some(CEntry::Lit(l)) => Ok(*l),
            Some(CEntry::Or(_)) => Err(format!("ref {just} is a disjunction, literal expected")),
            None => Err(format!(
                "ref {just} out of context (len {})",
                self.ctx.len()
            )),
        }
    }

    /// Replays one derivation step. `Ok(true)` means the state became
    /// infeasible (the branch is refuted, enclosing node accepted early).
    fn apply_proof_step(&mut self, state: &mut CState, step: &ProofStep) -> Result<bool, String> {
        match step {
            ProofStep::Restrict { just, var } => {
                let lit = self.lit_at(*just)?;
                match dispatch(self.pool, state, lit) {
                    Outcome::True => Err(format!(
                        "step at ref {just} claims a restriction, literal already holds"
                    )),
                    Outcome::False => Ok(true),
                    Outcome::Conflict(_) => Ok(true),
                    Outcome::Restrict(v, set) => {
                        if self.pool.var_fp(v) != *var {
                            return Err(format!(
                                "step at ref {just} restricts a different variable"
                            ));
                        }
                        match state.restrict(self.pool, v, &set)? {
                            AppliedOut::Infeasible => Ok(true),
                            AppliedOut::Changed => Ok(false),
                            AppliedOut::Unchanged => Err(format!(
                                "step at ref {just} claims a restriction that changes nothing"
                            )),
                        }
                    }
                    Outcome::Merge(..) => Err(format!(
                        "step at ref {just} claims a restriction, derived a merge"
                    )),
                    Outcome::Deferred => Err(format!(
                        "step at ref {just} is not derivable by interval reasoning"
                    )),
                }
            }
            ProofStep::Merge { just } => {
                let lit = self.lit_at(*just)?;
                match dispatch(self.pool, state, lit) {
                    Outcome::Merge(a, b) => match state.merge(self.pool, a, b) {
                        AppliedOut::Infeasible => Ok(true),
                        AppliedOut::Changed => Ok(false),
                        AppliedOut::Unchanged => {
                            Err(format!("merge at ref {just} joins an already-merged class"))
                        }
                    },
                    Outcome::False => Ok(true),
                    Outcome::Conflict(_) => Ok(true),
                    _ => Err(format!("ref {just} does not derive a class merge")),
                }
            }
        }
    }

    fn check_node(&mut self, state: &mut CState, node: &ProofNode) -> NodeResult {
        match node {
            ProofNode::Derive { steps, then } => {
                for step in steps {
                    if self.apply_proof_step(state, step)? {
                        // Infeasible already: refuted, rest of the node moot.
                        return Ok(());
                    }
                }
                self.check_node(state, then)
            }
            ProofNode::SplitOr { or, cases } => {
                let parts = match self.ctx.get(*or as usize) {
                    Some(CEntry::Or(parts)) => parts.clone(),
                    Some(CEntry::Lit(_)) => {
                        return Err(format!("ref {or} is a literal, disjunction expected"))
                    }
                    None => {
                        return Err(format!("ref {or} out of context (len {})", self.ctx.len()))
                    }
                };
                if parts.len() != cases.len() {
                    return Err(format!(
                        "split at ref {or} covers {} of {} disjuncts",
                        cases.len(),
                        parts.len()
                    ));
                }
                for (part, case) in parts.iter().zip(cases) {
                    let save = self.ctx.len();
                    self.push_formula(part);
                    let mut branch = state.clone();
                    let r = self.check_node(&mut branch, case);
                    self.ctx.truncate(save);
                    r?;
                }
                Ok(())
            }
            ProofNode::SplitVal { var, cases } => {
                let v = self
                    .pool
                    .var_by_fp(*var)
                    .ok_or_else(|| "enumerated variable unknown to the pool".to_string())?;
                let domain = state.domain_of(self.pool, v);
                if domain.len() > MAX_ENUM {
                    return Err(format!(
                        "enumeration of {} values exceeds the checker cap",
                        domain.len()
                    ));
                }
                let values: Vec<u64> = domain.values().collect();
                if values.len() != cases.len() {
                    return Err(format!(
                        "enumeration covers {} of {} domain values",
                        cases.len(),
                        values.len()
                    ));
                }
                let width = domain.width();
                for (&value, case) in values.iter().zip(cases) {
                    let mut branch = state.clone();
                    let single = ISet::singleton(width, value);
                    match branch.restrict(self.pool, v, &single)? {
                        AppliedOut::Infeasible => continue, // value impossible: vacuous case
                        AppliedOut::Changed | AppliedOut::Unchanged => {}
                    }
                    self.check_node(&mut branch, case)?;
                }
                Ok(())
            }
            ProofNode::Falsified { just } => {
                let lit = self.lit_at(*just)?;
                match dispatch(self.pool, state, lit) {
                    Outcome::False => Ok(()),
                    Outcome::Conflict(_) => Ok(()),
                    _ => Err(format!(
                        "literal at ref {just} is not falsified by the pinned values"
                    )),
                }
            }
            ProofNode::EmptyRestrict { just, var } => {
                let lit = self.lit_at(*just)?;
                match dispatch(self.pool, state, lit) {
                    Outcome::False => Ok(()),
                    Outcome::Conflict(v) | Outcome::Restrict(v, _)
                        if self.pool.var_fp(v) != *var =>
                    {
                        Err(format!("conflict at ref {just} names a different variable"))
                    }
                    Outcome::Conflict(_) => Ok(()),
                    Outcome::Restrict(v, set) => match state.restrict(self.pool, v, &set)? {
                        AppliedOut::Infeasible => Ok(()),
                        _ => Err(format!(
                            "restriction at ref {just} does not empty the domain"
                        )),
                    },
                    _ => Err(format!("ref {just} does not derive a conflict")),
                }
            }
            ProofNode::EmptyMerge { just } => {
                let lit = self.lit_at(*just)?;
                match dispatch(self.pool, state, lit) {
                    Outcome::Merge(a, b) => match state.merge(self.pool, a, b) {
                        AppliedOut::Infeasible => Ok(()),
                        _ => Err(format!(
                            "merge at ref {just} does not empty the intersection"
                        )),
                    },
                    Outcome::False => Ok(()),
                    Outcome::Conflict(_) => Ok(()),
                    _ => Err(format!("ref {just} does not derive a class merge")),
                }
            }
            ProofNode::FalseCore { core } => {
                let Some(&t) = self.core.get(*core as usize) else {
                    return Err(format!("core index {core} out of range"));
                };
                match cnnf(self.pool, t, true) {
                    CF::False => Ok(()),
                    _ => Err(format!("core assertion {core} does not normalize to false")),
                }
            }
            ProofNode::Admitted => {
                Err("certificate contains an admitted (unjustified) claim".into())
            }
        }
    }
}

/// Validates `cert` as a refutation of (a subset of) `assertions`.
///
/// Every fingerprint in the certificate's core must resolve to one of
/// `assertions` — that is the entire containment check, and it is what makes
/// the same certificate valid for any superset of its core. The proof tree
/// is then replayed on the checker's own negation-normal form, interval
/// domains, and propagation dispatch; any mismatch is an `Err` describing
/// the first rejected node.
///
/// # Examples
///
/// ```
/// use achilles_solver::{Solver, TermPool, Width};
///
/// let mut pool = TermPool::new();
/// let mut solver = Solver::new();
/// let x = pool.fresh("x", Width::W8);
/// let c5 = pool.constant(5, Width::W8);
/// let lt = pool.ult(x, c5);
/// let gt = pool.ult(c5, x);
/// let result = solver.check(&mut pool, &[lt, gt]);
/// let cert = result.certificate().expect("x<5 ∧ 5<x is unsat");
/// achilles_proofcheck::check(&mut pool, &[lt, gt], cert).expect("certificate valid");
/// ```
pub fn check(pool: &mut TermPool, assertions: &[TermId], cert: &Certificate) -> Result<(), String> {
    // Resolve the core against the asserted set: a fingerprint not present
    // means this certificate does not refute THIS query.
    let by_fp: HashMap<u128, TermId> = assertions.iter().map(|&t| (pool.term_fp(t), t)).collect();
    let mut core = Vec::with_capacity(cert.core.len());
    for (k, fp) in cert.core.iter().enumerate() {
        match by_fp.get(fp) {
            Some(&t) => core.push(t),
            None => {
                return Err(format!(
                    "core assertion {k} is not among the query assertions"
                ))
            }
        }
    }

    let mut checker = Checker {
        pool,
        ctx: Vec::new(),
        core: core.clone(),
    };
    let mut pending_lits: Vec<CF> = Vec::with_capacity(core.len());
    for &t in &core {
        let f = cnnf(checker.pool, t, true);
        if matches!(f, CF::False) {
            // A core assertion that normalizes to `false` refutes the
            // conjunction on its own; nothing further to validate.
            return Ok(());
        }
        pending_lits.push(f);
    }
    for f in &pending_lits {
        checker.push_formula(f);
    }
    let mut state = CState::default();
    checker.check_node(&mut state, &cert.proof)
}

/// Installs this crate's [`check`] as the solver's process-wide proof-audit
/// hook: every freshly computed or subsumption-derived `Unsat` verdict is
/// validated on the spot (a rejection makes the solver panic).
pub fn install_audit() {
    set_proof_audit(Some(Arc::new(
        |pool: &mut TermPool, assertions: &[TermId], cert: &Certificate| {
            check(pool, assertions, cert)
        },
    )));
}

/// Installs the audit hook iff [`CHECK_PROOFS_ENV`] is set to `1` or `true`
/// (checked once per process). Returns whether the hook is installed.
pub fn install_audit_from_env() -> bool {
    static DONE: OnceLock<bool> = OnceLock::new();
    *DONE.get_or_init(|| {
        let on = std::env::var(CHECK_PROOFS_ENV)
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false);
        if on {
            install_audit();
        }
        on
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use achilles_solver::{SatResult, Solver, Width};

    fn certified_unsat(pool: &mut TermPool, assertions: &[TermId]) -> Arc<Certificate> {
        let mut solver = Solver::new();
        match solver.check(pool, assertions) {
            SatResult::Unsat(c) => c,
            other => panic!("expected unsat, got {other:?}"),
        }
    }

    #[test]
    fn validates_interval_conflict() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let c5 = pool.constant(5, Width::W8);
        let lt = pool.ult(x, c5);
        let gt = pool.ult(c5, x);
        let cert = certified_unsat(&mut pool, &[lt, gt]);
        check(&mut pool, &[lt, gt], &cert).expect("valid certificate");
    }

    #[test]
    fn validates_against_superset_of_core() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let y = pool.fresh("y", Width::W8);
        let c5 = pool.constant(5, Width::W8);
        let lt = pool.ult(x, c5);
        let gt = pool.ult(c5, x);
        let cert = certified_unsat(&mut pool, &[lt, gt]);
        // The same certificate refutes any superset of its core.
        let extra = pool.ult(y, c5);
        check(&mut pool, &[extra, lt, gt], &cert).expect("superset still refuted");
    }

    #[test]
    fn rejects_core_not_in_query() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let c5 = pool.constant(5, Width::W8);
        let lt = pool.ult(x, c5);
        let gt = pool.ult(c5, x);
        let cert = certified_unsat(&mut pool, &[lt, gt]);
        // Dropping a core member from the query must reject.
        assert!(check(&mut pool, &[lt], &cert).is_err());
    }

    #[test]
    fn rejects_admitted_claims() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let c5 = pool.constant(5, Width::W8);
        let lt = pool.ult(x, c5);
        let gt = pool.ult(c5, x);
        let cert = certified_unsat(&mut pool, &[lt, gt]);
        let tampered = Certificate {
            core: cert.core.clone(),
            proof: ProofNode::Admitted,
            steps: 1,
        };
        assert!(check(&mut pool, &[lt, gt], &tampered).is_err());
    }

    #[test]
    fn validates_clause_split_refutation() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let c3 = pool.constant(3, Width::W8);
        let c7 = pool.constant(7, Width::W8);
        let e3 = pool.eq(x, c3);
        let e7 = pool.eq(x, c7);
        let either = pool.or(e3, e7);
        let c10 = pool.constant(10, Width::W8);
        let gt10 = pool.ult(c10, x);
        let cert = certified_unsat(&mut pool, &[either, gt10]);
        check(&mut pool, &[either, gt10], &cert).expect("split certificate valid");
    }

    #[test]
    fn validates_enumeration_refutation() {
        let mut pool = TermPool::new();
        // An opaque parity function keeps the atom deferred, forcing value
        // enumeration over a small domain.
        let parity = pool.register_fun("parity", Width::W8, |args: &[u64]| args[0] & 1);
        let x = pool.fresh("x", Width::W8);
        let c4 = pool.constant(4, Width::W8);
        let small = pool.ult(x, c4); // x in 0..=3
        let px = pool.apply(parity, vec![x]);
        let c2 = pool.constant(2, Width::W8);
        let impossible = pool.eq(px, c2); // parity is 0 or 1, never 2
        let cert = certified_unsat(&mut pool, &[small, impossible]);
        check(&mut pool, &[small, impossible], &cert).expect("enumeration certificate valid");
    }

    #[test]
    fn rejects_truncated_enumeration() {
        let mut pool = TermPool::new();
        let parity = pool.register_fun("parity", Width::W8, |args: &[u64]| args[0] & 1);
        let x = pool.fresh("x", Width::W8);
        let c4 = pool.constant(4, Width::W8);
        let small = pool.ult(x, c4);
        let px = pool.apply(parity, vec![x]);
        let c2 = pool.constant(2, Width::W8);
        let impossible = pool.eq(px, c2);
        let cert = certified_unsat(&mut pool, &[small, impossible]);
        // Drop one enumeration case somewhere in the tree: must reject.
        fn truncate_split(node: &ProofNode) -> Option<ProofNode> {
            match node {
                ProofNode::SplitVal { var, cases } if cases.len() > 1 => {
                    Some(ProofNode::SplitVal {
                        var: *var,
                        cases: cases[..cases.len() - 1].to_vec(),
                    })
                }
                ProofNode::Derive { steps, then } => {
                    truncate_split(then).map(|t| ProofNode::Derive {
                        steps: steps.clone(),
                        then: Box::new(t),
                    })
                }
                ProofNode::SplitOr { or, cases } => {
                    for (i, c) in cases.iter().enumerate() {
                        if let Some(t) = truncate_split(c) {
                            let mut cases = cases.clone();
                            cases[i] = t;
                            return Some(ProofNode::SplitOr { or: *or, cases });
                        }
                    }
                    None
                }
                _ => None,
            }
        }
        let tampered = Certificate {
            core: cert.core.clone(),
            proof: truncate_split(&cert.proof).expect("certificate contains an enumeration"),
            steps: cert.steps,
        };
        assert!(check(&mut pool, &[small, impossible], &tampered).is_err());
    }

    #[test]
    fn validates_false_core() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let ltx = pool.ult(x, x); // folds to false
        let cert = certified_unsat(&mut pool, &[ltx]);
        check(&mut pool, &[ltx], &cert).expect("false-core certificate valid");
    }

    #[test]
    fn validates_merge_refutation() {
        let mut pool = TermPool::new();
        let x = pool.fresh("x", Width::W8);
        let y = pool.fresh("y", Width::W8);
        let eq = pool.eq(x, y);
        let c5 = pool.constant(5, Width::W8);
        let c9 = pool.constant(9, Width::W8);
        let x5 = pool.eq(x, c5);
        let y9 = pool.eq(y, c9);
        let cert = certified_unsat(&mut pool, &[eq, x5, y9]);
        check(&mut pool, &[eq, x5, y9], &cert).expect("merge certificate valid");
    }

    #[test]
    fn env_install_is_sticky_per_process() {
        // Not set in the test environment: must not install.
        assert!(!install_audit_from_env() || std::env::var(CHECK_PROOFS_ENV).is_ok());
    }
}
