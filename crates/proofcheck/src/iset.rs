//! Interval sets over fixed-width unsigned domains, re-implemented from the
//! semantics (sorted, disjoint, non-adjacent closed intervals) rather than
//! shared with the solver — the checker must not validate the solver's
//! interval arithmetic with the solver's interval arithmetic.

use achilles_solver::Width;

/// A set of `Width`-wide unsigned values as sorted, disjoint, non-adjacent
/// closed intervals `(lo, hi)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct ISet {
    width: Width,
    ivs: Vec<(u64, u64)>,
}

impl ISet {
    pub(crate) fn empty(width: Width) -> ISet {
        ISet {
            width,
            ivs: Vec::new(),
        }
    }

    pub(crate) fn full(width: Width) -> ISet {
        ISet {
            width,
            ivs: vec![(0, width.max_unsigned())],
        }
    }

    pub(crate) fn singleton(width: Width, v: u64) -> ISet {
        let v = width.truncate(v);
        ISet {
            width,
            ivs: vec![(v, v)],
        }
    }

    /// `[lo, hi]`, both ends truncated to the width. Empty if `lo > hi`
    /// after truncation.
    pub(crate) fn range(width: Width, lo: u64, hi: u64) -> ISet {
        let lo = width.truncate(lo);
        let hi = width.truncate(hi);
        if lo > hi {
            return ISet::empty(width);
        }
        ISet {
            width,
            ivs: vec![(lo, hi)],
        }
    }

    pub(crate) fn width(&self) -> Width {
        self.width
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    pub(crate) fn len(&self) -> u64 {
        self.ivs
            .iter()
            .fold(0u64, |acc, &(lo, hi)| acc.saturating_add(hi - lo + 1))
    }

    pub(crate) fn as_singleton(&self) -> Option<u64> {
        match self.ivs.as_slice() {
            [(lo, hi)] if lo == hi => Some(*lo),
            _ => None,
        }
    }

    pub(crate) fn intervals(&self) -> &[(u64, u64)] {
        &self.ivs
    }

    /// Restores the invariant from an arbitrary interval list: sorts by
    /// lower bound and merges overlapping or adjacent intervals.
    fn normalize(&mut self) {
        self.ivs.sort_unstable_by_key(|&(lo, _)| lo);
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(self.ivs.len());
        for &(lo, hi) in &self.ivs {
            match out.last_mut() {
                Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
                _ => out.push((lo, hi)),
            }
        }
        self.ivs = out;
    }

    /// In-place intersection (two-pointer sweep over sorted intervals).
    pub(crate) fn intersect(&mut self, other: &ISet) {
        debug_assert_eq!(self.width, other.width);
        let mut out = Vec::new();
        let (a, b) = (&self.ivs, &other.ivs);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let lo = a[i].0.max(b[j].0);
            let hi = a[i].1.min(b[j].1);
            if lo <= hi {
                out.push((lo, hi));
            }
            if a[i].1 < b[j].1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        self.ivs = out;
    }

    /// In-place union.
    pub(crate) fn union(&mut self, other: &ISet) {
        debug_assert_eq!(self.width, other.width);
        self.ivs.extend_from_slice(&other.ivs);
        self.normalize();
    }

    /// Removes one value, splitting the containing interval if needed.
    pub(crate) fn remove_value(&mut self, v: u64) {
        let v = self.width.truncate(v);
        let Some(pos) = self.ivs.iter().position(|&(lo, hi)| lo <= v && v <= hi) else {
            return;
        };
        let (lo, hi) = self.ivs[pos];
        let mut repl = Vec::with_capacity(2);
        if lo < v {
            repl.push((lo, v - 1));
        }
        if v < hi {
            repl.push((v + 1, hi));
        }
        self.ivs.splice(pos..=pos, repl);
    }

    /// The set `{ (x - c) mod 2^w : x in self }`, i.e. the preimage of this
    /// set under adding `c`. Wrapping intervals split at the domain boundary.
    pub(crate) fn sub_const(&self, c: u64) -> ISet {
        let c = self.width.truncate(c);
        if c == 0 {
            return self.clone();
        }
        let max = self.width.max_unsigned();
        let mut out = ISet::empty(self.width);
        for &(lo, hi) in &self.ivs {
            let nlo = self.width.truncate(lo.wrapping_sub(c));
            let nhi = self.width.truncate(hi.wrapping_sub(c));
            if nlo <= nhi {
                out.ivs.push((nlo, nhi));
            } else {
                // Wrapped around: split into the two straddling pieces.
                out.ivs.push((nlo, max));
                out.ivs.push((0, nhi));
            }
        }
        out.normalize();
        out
    }

    /// All values, ascending.
    pub(crate) fn values(&self) -> impl Iterator<Item = u64> + '_ {
        self.ivs.iter().flat_map(|&(lo, hi)| lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_and_union_roundtrip() {
        let mut a = ISet::range(Width::W8, 0, 100);
        let b = ISet::range(Width::W8, 50, 200);
        a.intersect(&b);
        assert_eq!(a.intervals(), &[(50, 100)]);
        a.union(&ISet::range(Width::W8, 101, 120));
        assert_eq!(a.intervals(), &[(50, 120)]);
    }

    #[test]
    fn remove_value_splits() {
        let mut s = ISet::range(Width::W8, 10, 20);
        s.remove_value(15);
        assert_eq!(s.intervals(), &[(10, 14), (16, 20)]);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn sub_const_wraps() {
        let s = ISet::range(Width::W8, 0, 4);
        let shifted = s.sub_const(2);
        // {0..4} - 2 = {254, 255, 0, 1, 2}
        assert_eq!(shifted.intervals(), &[(0, 2), (254, 255)]);
        assert_eq!(shifted.len(), 5);
    }

    #[test]
    fn singleton_and_values() {
        let s = ISet::singleton(Width::W8, 300); // truncates to 44
        assert_eq!(s.as_singleton(), Some(44));
        let r = ISet::range(Width::W8, 3, 5);
        assert_eq!(r.values().collect::<Vec<_>>(), vec![3, 4, 5]);
    }
}
