//! Span tracing with thread-local buffers and Chrome-trace export.
//!
//! Hot-path contract: when tracing is disabled (the default), [`span`] and
//! [`instant`] cost one relaxed atomic load and allocate nothing. When
//! enabled, events are pushed onto a thread-local `Vec` (no locks, no
//! syscalls) and drained to the process-wide sink when the buffer fills, at
//! explicit merge points ([`drain_thread`]), or when the thread exits.
//! Nothing in the pipeline ever reads these buffers back, which is what
//! makes tracing observation-only.

use std::borrow::Cow;
use std::cell::RefCell;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Flush a thread buffer to the sink once it holds this many events.
const FLUSH_AT: usize = 8192;

/// Turn tracing on or off process-wide. The trace epoch (t=0 of the
/// exported timeline) is pinned the first time tracing is enabled.
pub fn set_tracing(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Release);
}

pub fn tracing_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    // Saturates to zero for instants captured before the epoch was pinned.
    Instant::now().duration_since(epoch).as_nanos() as u64
}

/// One recorded event. `dur_ns == 0` with `complete == false` is an instant
/// marker; otherwise a complete (`ph: "X"`) span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub name: Cow<'static, str>,
    pub cat: &'static str,
    pub ts_ns: u64,
    pub dur_ns: u64,
    pub tid: u32,
    pub complete: bool,
}

struct ThreadBuf {
    tid: u32,
    events: Vec<TraceEvent>,
}

impl ThreadBuf {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut sink = SINK.lock().unwrap();
        sink.append(&mut self.events);
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

fn push(event: impl FnOnce(u32) -> TraceEvent) {
    // Thread-buffer access can race with thread teardown; fall back to the
    // sink directly if the thread-local is gone.
    let _ = BUF.try_with(|buf| {
        let mut buf = buf.borrow_mut();
        let tid = buf.tid;
        buf.events.push(event(tid));
        if buf.events.len() >= FLUSH_AT {
            buf.flush();
        }
    });
}

/// A scoped span: records a complete event covering its lifetime when
/// tracing is enabled, and is a no-op (one relaxed load, no allocation)
/// when it is not. Spans on one thread nest LIFO by Rust drop order, so the
/// exported trace is well-nested per tid by construction.
pub struct Span(Option<LiveSpan>);

struct LiveSpan {
    name: Cow<'static, str>,
    cat: &'static str,
    start_ns: u64,
}

/// Open a span with a static name. `cat` groups spans in trace viewers
/// (e.g. `"pipeline"`, `"symvm"`, `"fork"`, `"sweep"`, `"fleetd"`).
pub fn span(name: &'static str, cat: &'static str) -> Span {
    if !tracing_enabled() {
        return Span(None);
    }
    Span(Some(LiveSpan {
        name: Cow::Borrowed(name),
        cat,
        start_ns: now_ns(),
    }))
}

/// Open a span with a computed name. Callers should build the `String`
/// only when [`tracing_enabled`] to keep the disabled path allocation-free.
pub fn span_owned(name: String, cat: &'static str) -> Span {
    if !tracing_enabled() {
        return Span(None);
    }
    Span(Some(LiveSpan {
        name: Cow::Owned(name),
        cat,
        start_ns: now_ns(),
    }))
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(live) = self.0.take() {
            let end = now_ns();
            push(|tid| TraceEvent {
                name: live.name,
                cat: live.cat,
                ts_ns: live.start_ns,
                dur_ns: end.saturating_sub(live.start_ns),
                tid,
                complete: true,
            });
        }
    }
}

/// Record a zero-duration instant marker (e.g. a work steal).
pub fn instant(name: &'static str, cat: &'static str) {
    if !tracing_enabled() {
        return;
    }
    let ts = now_ns();
    push(|tid| TraceEvent {
        name: Cow::Borrowed(name),
        cat,
        ts_ns: ts,
        dur_ns: 0,
        tid,
        complete: false,
    });
}

/// A span that always measures wall time (two `Instant` reads) and hands
/// the duration back on [`finish`](TimedSpan::finish), recording a trace
/// event only when tracing is enabled. This is what coarse phase timing
/// (`PhaseTimes`) is derived from, so the timing view and the trace view
/// come from the same measurement.
pub struct TimedSpan {
    name: Cow<'static, str>,
    cat: &'static str,
    start: Instant,
}

/// Open a [`TimedSpan`]. Use only at coarse granularity (pipeline phases,
/// service requests) — per-item hot paths should use [`span`].
pub fn timed(name: &'static str, cat: &'static str) -> TimedSpan {
    TimedSpan {
        name: Cow::Borrowed(name),
        cat,
        start: Instant::now(),
    }
}

impl TimedSpan {
    /// Close the span and return its wall duration.
    pub fn finish(self) -> Duration {
        let elapsed = self.start.elapsed();
        if tracing_enabled() {
            let epoch = *EPOCH.get_or_init(Instant::now);
            let ts_ns = self.start.duration_since(epoch).as_nanos() as u64;
            let dur_ns = elapsed.as_nanos() as u64;
            push(|tid| TraceEvent {
                name: self.name,
                cat: self.cat,
                ts_ns,
                dur_ns,
                tid,
                complete: true,
            });
        }
        elapsed
    }
}

/// Drain the current thread's buffer into the process sink. Workers call
/// this at merge points so their events survive scoped-thread teardown and
/// the exporter sees a complete timeline.
pub fn drain_thread() {
    let _ = BUF.try_with(|buf| buf.borrow_mut().flush());
}

/// Discard all recorded events (current thread buffer + sink).
pub fn clear_trace() {
    let _ = BUF.try_with(|buf| buf.borrow_mut().events.clear());
    SINK.lock().unwrap().clear();
}

fn escape(s: &str) -> String {
    if !s.contains(['"', '\\']) {
        return s.to_string();
    }
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render everything recorded so far as Chrome-trace / Perfetto JSON
/// (`{"traceEvents": [...]}`, timestamps in microseconds with nanosecond
/// precision preserved in the fraction).
pub fn chrome_trace_json() -> String {
    drain_thread();
    let sink = SINK.lock().unwrap();
    let mut out = String::with_capacity(64 + sink.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, ev) in sink.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = ev.ts_ns as f64 / 1000.0;
        if ev.complete {
            let dur_us = ev.dur_ns as f64 / 1000.0;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\
                 \"dur\":{dur_us:.3},\"pid\":1,\"tid\":{}}}",
                escape(&ev.name),
                escape(ev.cat),
                ev.tid
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us:.3},\
                 \"pid\":1,\"tid\":{}}}",
                escape(&ev.name),
                escape(ev.cat),
                ev.tid
            ));
        }
    }
    out.push_str("]}");
    out
}

/// Write the Chrome-trace JSON to `path`.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    let json = chrome_trace_json();
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global, so exercise everything in one test
    // to avoid cross-test interference under the parallel test runner.
    #[test]
    fn spans_record_only_when_enabled_and_nest_per_tid() {
        clear_trace();
        assert!(!tracing_enabled());
        {
            let _off = span("invisible", "test");
            instant("also-invisible", "test");
        }
        drain_thread();
        assert!(!chrome_trace_json().contains("invisible"));

        set_tracing(true);
        {
            let _outer = span("outer", "test");
            std::thread::sleep(Duration::from_micros(50));
            {
                let _inner = span_owned("inner".to_string(), "test");
                std::thread::sleep(Duration::from_micros(50));
                instant("steal", "test");
            }
        }
        let t = timed("timed-phase", "test");
        std::thread::sleep(Duration::from_micros(50));
        let dur = t.finish();
        assert!(dur >= Duration::from_micros(50));
        set_tracing(false);

        let json = chrome_trace_json();
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"name\":\"inner\""));
        assert!(json.contains("\"name\":\"timed-phase\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(!json.contains("invisible"));

        // The inner span must be strictly contained in the outer one.
        drain_thread();
        let sink = SINK.lock().unwrap();
        let outer = sink.iter().find(|e| e.name == "outer").unwrap();
        let inner = sink.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.tid, inner.tid);
        assert!(inner.ts_ns >= outer.ts_ns);
        assert!(inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns);
        drop(sink);
        clear_trace();
        assert_eq!(
            chrome_trace_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );

        // With tracing off a Span carries no state at all.
        let s = span("nothing", "test");
        assert!(s.0.is_none());
    }
}
