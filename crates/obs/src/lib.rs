//! `achilles-obs` — the one telemetry layer for the whole pipeline.
//!
//! Two independent facilities share this crate:
//!
//! * **Metrics** ([`MetricsRegistry`]): named counter / gauge / histogram
//!   series with Prometheus-style text rendering. Every series is classified
//!   at the recording site as [`Class::Deterministic`] (bit-identical across
//!   worker counts, fork vs cold boot, tracing on vs off — schedule- and
//!   clock-independent by construction) or [`Class::Wall`] (anything touched
//!   by wall clocks, thread scheduling, or batch affinity). `render()` keeps
//!   the two strictly segregated so determinism gates can diff the
//!   deterministic section byte-for-byte while the wall section varies
//!   freely.
//!
//! * **Tracing** ([`span`], [`TraceSink`]): scoped spans recorded into
//!   thread-local buffers (no locks on the hot path) and drained to a
//!   process-wide sink at worker merge points, exported as Chrome-trace /
//!   Perfetto JSON. Tracing is **off by default** and observation-only:
//!   when disabled a span is one relaxed atomic load; when enabled it
//!   writes only to obs-owned buffers that no pipeline decision ever reads
//!   back, so enabling it cannot move a single discovery, classification,
//!   or witness (pinned by the observer-effect guard in
//!   `tests/parallel_determinism.rs`).
//!
//! The existing per-subsystem stats structs (`ExploreStats`, `SolverStats`,
//! `ForkStats`, ...) remain the canonical deterministic accumulators; the
//! instrumented crates mirror them into the registry at their natural merge
//! points, so the registry is a live *view* over the same counters rather
//! than a second source of truth.

mod metrics;
mod trace;

pub use metrics::{render_sections, Class, HistogramSnapshot, MetricsRegistry};
pub use trace::{
    chrome_trace_json, clear_trace, drain_thread, instant, set_tracing, span, span_owned, timed,
    tracing_enabled, write_chrome_trace, Span, TimedSpan, TraceEvent,
};

/// The process-wide registry: discovery / solver / fork / sweep subsystems
/// record here. Services that need isolation (fleetd runs several instances
/// per test process) own their own [`MetricsRegistry`] and merge this one in
/// when rendering.
pub fn global() -> &'static MetricsRegistry {
    metrics::global()
}
