//! Metrics registry: named series with strict deterministic / wall
//! segregation and Prometheus-style text rendering.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Determinism class of a series, fixed at the recording site.
///
/// `Deterministic` series must be bit-identical across worker counts,
/// fork-server vs cold-boot replay, subsumption on/off, and tracing on/off
/// for the same logical workload. Everything else — wall clocks, queue
/// peaks, batch affinity, latency — is `Wall`. The renderer never mixes the
/// two sections, so a determinism gate can diff `# deterministic` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Class {
    Deterministic,
    Wall,
}

/// Log2-bucketed nanosecond histogram: bucket `i` holds observations in
/// `[2^(i-1), 2^i)` ns. 64 buckets cover every representable duration.
#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum_ns: u64,
    buckets: [u64; 64],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum_ns: 0,
            buckets: [0; 64],
        }
    }

    fn observe(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.buckets[bucket_index(ns)] += 1;
    }
}

fn bucket_index(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(63)
}

/// Upper bound (exclusive) of a bucket, used as its quantile representative:
/// a pessimistic estimate that is exact to within a factor of two.
fn bucket_bound_ns(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << index.min(62)
    }
}

/// Point-in-time copy of one histogram series.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    count: u64,
    sum_ns: u64,
    buckets: [u64; 64],
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Quantile estimate in nanoseconds (`q` in `[0, 1]`), resolved to the
    /// upper bound of the log2 bucket holding the q-th observation.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound_ns(i);
            }
        }
        bucket_bound_ns(63)
    }
}

#[derive(Debug, Clone)]
enum Value {
    Counter(u64),
    Gauge(u64),
    Histogram(Box<Histogram>),
}

#[derive(Debug, Clone)]
struct Series {
    class: Class,
    value: Value,
}

/// A set of named metric series. One process-wide instance lives behind
/// [`global()`]; services that need isolation own their own.
///
/// Series keys are fully-qualified Prometheus-style identifiers rendered as
/// `name{label="value",...} value`. Histograms render their p50/p95/p99
/// quantiles plus `_count` and `_sum_ns` companion lines and are always
/// classed [`Class::Wall`].
#[derive(Debug)]
pub struct MetricsRegistry {
    series: Mutex<BTreeMap<String, Series>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub const fn new() -> Self {
        MetricsRegistry {
            series: Mutex::new(BTreeMap::new()),
        }
    }

    /// Increment a counter series by `delta`.
    pub fn add(&self, class: Class, name: &str, labels: &[(&str, &str)], delta: u64) {
        if delta == 0 {
            // Still materialize the series so renders enumerate it: a zero
            // counter is information (e.g. no errors yet), and determinism
            // diffs need the same line set on both sides.
            self.touch(class, name, labels);
            return;
        }
        let key = series_key(name, labels);
        let mut map = self.series.lock().unwrap();
        let entry = map.entry(key).or_insert(Series {
            class,
            value: Value::Counter(0),
        });
        if let Value::Counter(ref mut v) = entry.value {
            *v += delta;
        }
    }

    /// Create a counter series at its current value (possibly zero) without
    /// incrementing it.
    pub fn touch(&self, class: Class, name: &str, labels: &[(&str, &str)]) {
        let key = series_key(name, labels);
        let mut map = self.series.lock().unwrap();
        map.entry(key).or_insert(Series {
            class,
            value: Value::Counter(0),
        });
    }

    /// Set a gauge series to an absolute value.
    pub fn set(&self, class: Class, name: &str, labels: &[(&str, &str)], value: u64) {
        let key = series_key(name, labels);
        let mut map = self.series.lock().unwrap();
        let entry = map.entry(key).or_insert(Series {
            class,
            value: Value::Gauge(value),
        });
        entry.value = Value::Gauge(value);
        entry.class = class;
    }

    /// Record one observation (in nanoseconds) into a histogram series.
    /// Histograms measure wall time, so they are always [`Class::Wall`].
    pub fn observe_ns(&self, name: &str, labels: &[(&str, &str)], ns: u64) {
        let key = series_key(name, labels);
        let mut map = self.series.lock().unwrap();
        let entry = map.entry(key).or_insert(Series {
            class: Class::Wall,
            value: Value::Histogram(Box::new(Histogram::new())),
        });
        if let Value::Histogram(ref mut h) = entry.value {
            h.observe(ns);
        }
    }

    /// Snapshot a histogram series, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        let key = series_key(name, labels);
        let map = self.series.lock().unwrap();
        match map.get(&key) {
            Some(Series {
                value: Value::Histogram(h),
                ..
            }) => Some(HistogramSnapshot {
                count: h.count,
                sum_ns: h.sum_ns,
                buckets: h.buckets,
            }),
            _ => None,
        }
    }

    /// Current value of a counter or gauge series, if it exists.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = series_key(name, labels);
        let map = self.series.lock().unwrap();
        match map.get(&key) {
            Some(Series {
                value: Value::Counter(v),
                ..
            })
            | Some(Series {
                value: Value::Gauge(v),
                ..
            }) => Some(*v),
            _ => None,
        }
    }

    /// Number of distinct series currently registered.
    pub fn series_count(&self) -> usize {
        self.series.lock().unwrap().len()
    }

    /// Rendered lines (sorted by key) for one determinism class, without a
    /// section header. Histograms always land in the [`Class::Wall`] class.
    pub fn render_class(&self, class: Class) -> Vec<String> {
        let map = self.series.lock().unwrap();
        let mut lines = Vec::new();
        for (key, series) in map.iter() {
            if series.class != class {
                continue;
            }
            match &series.value {
                Value::Counter(v) | Value::Gauge(v) => lines.push(format!("{key} {v}")),
                Value::Histogram(h) => {
                    let snap = HistogramSnapshot {
                        count: h.count,
                        sum_ns: h.sum_ns,
                        buckets: h.buckets,
                    };
                    let (base, labels) = split_key(key);
                    for (q, tag) in [(0.50, "p50"), (0.95, "p95"), (0.99, "p99")] {
                        lines.push(format!(
                            "{} {}",
                            rekey(base, labels, &[("quantile", tag)]),
                            snap.quantile_ns(q)
                        ));
                    }
                    lines.push(format!(
                        "{} {}",
                        rekey(&format!("{base}_count"), labels, &[]),
                        h.count
                    ));
                    lines.push(format!(
                        "{} {}",
                        rekey(&format!("{base}_sum_ns"), labels, &[]),
                        h.sum_ns
                    ));
                }
            }
        }
        lines
    }

    /// Full snapshot: a `# deterministic` section then a `# wall` section,
    /// each sorted by series key. The deterministic section is byte-stable
    /// across worker counts and tracing on/off for the same workload.
    pub fn render(&self) -> String {
        render_sections(&[self])
    }

    /// Remove every series. Test-only hygiene for process-global registries.
    pub fn reset(&self) {
        self.series.lock().unwrap().clear();
    }
}

/// Render several registries into one snapshot (used by fleetd to merge the
/// process-global registry with its own service-local one). Lines from all
/// registries are merged and sorted per section.
pub fn render_sections(registries: &[&MetricsRegistry]) -> String {
    let mut out = String::from("# deterministic\n");
    let mut det: Vec<String> = registries
        .iter()
        .flat_map(|r| r.render_class(Class::Deterministic))
        .collect();
    det.sort();
    for line in &det {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("# wall\n");
    let mut wall: Vec<String> = registries
        .iter()
        .flat_map(|r| r.render_class(Class::Wall))
        .collect();
    wall.sort();
    for line in &wall {
        out.push_str(line);
        out.push('\n');
    }
    out
}

fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        key.push_str(v);
        key.push('"');
    }
    key.push('}');
    key
}

/// Split a rendered key back into `(name, label-body)` where `label-body`
/// is the text between the braces (empty when there are none).
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(open) => (&key[..open], &key[open + 1..key.len() - 1]),
        None => (key, ""),
    }
}

fn rekey(name: &str, label_body: &str, extra: &[(&str, &str)]) -> String {
    let mut key = String::from(name);
    if label_body.is_empty() && extra.is_empty() {
        return key;
    }
    key.push('{');
    key.push_str(label_body);
    for (k, v) in extra {
        if !key.ends_with('{') {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        key.push_str(v);
        key.push('"');
    }
    key.push('}');
    key
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

pub(crate) fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let reg = MetricsRegistry::new();
        reg.add(Class::Deterministic, "b_total", &[], 2);
        reg.add(Class::Deterministic, "a_total", &[("k", "v")], 1);
        reg.add(Class::Deterministic, "b_total", &[], 3);
        reg.set(Class::Wall, "depth", &[("shard", "0")], 7);
        let text = reg.render();
        let det_idx = text.find("# deterministic").unwrap();
        let wall_idx = text.find("# wall").unwrap();
        assert!(det_idx < wall_idx);
        let det = &text[det_idx..wall_idx];
        assert!(det.contains("a_total{k=\"v\"} 1"));
        assert!(det.contains("b_total 5"));
        assert!(!det.contains("depth"));
        assert!(text[wall_idx..].contains("depth{shard=\"0\"} 7"));
        let a = text.find("a_total").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b, "lines must be sorted");
    }

    #[test]
    fn zero_add_materializes_the_series() {
        let reg = MetricsRegistry::new();
        reg.add(
            Class::Deterministic,
            "errors_total",
            &[("class", "arity")],
            0,
        );
        assert_eq!(reg.value("errors_total", &[("class", "arity")]), Some(0));
        assert!(reg.render().contains("errors_total{class=\"arity\"} 0"));
    }

    #[test]
    fn histogram_quantiles_are_log2_pessimistic() {
        let reg = MetricsRegistry::new();
        for ns in [100u64, 200, 300, 400, 50_000] {
            reg.observe_ns("lat_ns", &[("verb", "INGEST")], ns);
        }
        let h = reg.histogram("lat_ns", &[("verb", "INGEST")]).unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 51_000);
        let p50 = h.quantile_ns(0.50);
        assert!((128..=512).contains(&p50), "p50 was {p50}");
        let p99 = h.quantile_ns(0.99);
        assert!(p99 >= 50_000, "p99 was {p99}");
        assert!(p50 <= h.quantile_ns(0.95));
        assert!(h.quantile_ns(0.95) <= p99);
        let text = reg.render();
        assert!(text.contains("lat_ns{verb=\"INGEST\",quantile=\"p50\"}"));
        assert!(text.contains("lat_ns_count{verb=\"INGEST\"} 5"));
        assert!(text.contains("lat_ns_sum_ns{verb=\"INGEST\"} 51000"));
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            buckets: [0; 64],
        };
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.mean_ns(), 0);
    }

    #[test]
    fn merged_render_interleaves_sorted() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.add(Class::Deterministic, "a_total", &[], 1);
        b.add(Class::Deterministic, "b_total", &[], 2);
        a.add(Class::Deterministic, "c_total", &[], 3);
        let text = render_sections(&[&a, &b]);
        let ia = text.find("a_total").unwrap();
        let ib = text.find("b_total").unwrap();
        let ic = text.find("c_total").unwrap();
        assert!(ia < ib && ib < ic);
    }
}
