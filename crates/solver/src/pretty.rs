//! Human-readable rendering of terms.
//!
//! Trojan-message reports show symbolic expressions to developers, so the
//! renderer favours protocol-level readability: variables print with their
//! registered names (`msg.address`), opaque functions with their registered
//! names (`crc16(...)`), and the signed-bias lowering of `slt`/`sle` is
//! re-sugared into `<s` / `<=s` where it is recognizable.

use std::fmt::Write as _;

use crate::term::{Op, TermId, TermPool};

/// Renders `t` as a readable expression string.
///
/// # Examples
///
/// ```
/// use achilles_solver::{render, TermPool, Width};
///
/// let mut pool = TermPool::new();
/// let x = pool.fresh("msg.address", Width::W32);
/// let c = pool.constant(100, Width::W32);
/// let cmp = pool.ult(x, c);
/// assert_eq!(render(&pool, cmp), "(msg.address <u 100)");
/// ```
pub fn render(pool: &TermPool, t: TermId) -> String {
    let mut s = String::new();
    write_term(pool, t, &mut s);
    s
}

/// Renders a conjunction of terms joined by `∧` across lines.
pub fn render_conjunction(pool: &TermPool, terms: &[TermId]) -> String {
    let mut out = String::new();
    for (i, &t) in terms.iter().enumerate() {
        if i > 0 {
            out.push_str(" ∧\n");
        }
        write_term(pool, t, &mut out);
    }
    out
}

fn write_term(pool: &TermPool, t: TermId, out: &mut String) {
    let node = pool.node(t).clone();
    match node.op {
        Op::Const(v) => {
            // Small constants in decimal, larger ones in hex for legibility.
            if v < 1024 {
                let _ = write!(out, "{v}");
            } else {
                let _ = write!(out, "{v:#x}");
            }
        }
        Op::Var(v) => {
            let _ = write!(out, "{}", pool.var_info(v).name);
        }
        Op::Add => {
            // Re-sugar the sign-bias pattern is handled at the comparison
            // level; plain additions render infix.
            write_bin(pool, "+", &node.args, out);
        }
        Op::Sub => write_bin(pool, "-", &node.args, out),
        Op::Mul => write_bin(pool, "*", &node.args, out),
        Op::Neg => write_un(pool, "-", node.args[0], out),
        Op::BitAnd => write_bin(pool, "&", &node.args, out),
        Op::BitOr => write_bin(pool, "|", &node.args, out),
        Op::BitXor => write_bin(pool, "^", &node.args, out),
        Op::BitNot => write_un(pool, "~", node.args[0], out),
        Op::Shl => write_bin(pool, "<<", &node.args, out),
        Op::Lshr => write_bin(pool, ">>", &node.args, out),
        Op::ZExt => {
            let _ = write!(out, "zext{}(", node.width);
            write_term(pool, node.args[0], out);
            out.push(')');
        }
        Op::SExt => {
            let _ = write!(out, "sext{}(", node.width);
            write_term(pool, node.args[0], out);
            out.push(')');
        }
        Op::Extract { lo } => {
            write_term(pool, node.args[0], out);
            let hi = u32::from(lo) + node.width.bits() - 1;
            let _ = write!(out, "[{hi}:{lo}]");
        }
        Op::Concat => write_bin(pool, "++", &node.args, out),
        Op::Eq => write_bin(pool, "==", &node.args, out),
        Op::Ult | Op::Ule => {
            let sym = if node.op == Op::Ult { "<u" } else { "<=u" };
            if let Some((a, b)) = unbias_signed(pool, node.args[0], node.args[1]) {
                let ssym = if node.op == Op::Ult { "<s" } else { "<=s" };
                out.push('(');
                write_term(pool, a, out);
                let _ = write!(out, " {ssym} ");
                write_term(pool, b, out);
                out.push(')');
            } else {
                write_bin(pool, sym, &node.args, out);
            }
        }
        Op::Not => {
            out.push('!');
            write_term(pool, node.args[0], out);
        }
        Op::And => write_bin(pool, "&&", &node.args, out),
        Op::Or => write_bin(pool, "||", &node.args, out),
        Op::Ite => {
            out.push_str("ite(");
            write_term(pool, node.args[0], out);
            out.push_str(", ");
            write_term(pool, node.args[1], out);
            out.push_str(", ");
            write_term(pool, node.args[2], out);
            out.push(')');
        }
        Op::Fun(f) => {
            let _ = write!(out, "{}(", pool.fun_info(f).name);
            for (i, &a) in node.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_term(pool, a, out);
            }
            out.push(')');
        }
    }
}

/// Recognizes `(a + signbit) ⋈ (b + signbit)` and returns the unbiased pair.
fn unbias_signed(pool: &TermPool, a: TermId, b: TermId) -> Option<(TermId, TermId)> {
    let strip = |t: TermId| -> Option<TermId> {
        let node = pool.node(t);
        if node.op != Op::Add {
            return None;
        }
        let (x, c) = (node.args[0], node.args[1]);
        let cv = pool.as_const(c)?;
        if cv == node.width.sign_bit() {
            Some(x)
        } else {
            None
        }
    };
    match (strip(a), strip(b)) {
        (Some(x), Some(y)) => Some((x, y)),
        // One side may have folded into a constant: re-bias it.
        (Some(x), None) => pool.as_const(b).map(|_| (x, b)).and(None),
        _ => None,
    }
}

fn write_bin(pool: &TermPool, sym: &str, args: &[TermId], out: &mut String) {
    out.push('(');
    write_term(pool, args[0], out);
    let _ = write!(out, " {sym} ");
    write_term(pool, args[1], out);
    out.push(')');
}

fn write_un(pool: &TermPool, sym: &str, arg: TermId, out: &mut String) {
    out.push_str(sym);
    write_term(pool, arg, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::width::Width;

    #[test]
    fn renders_named_vars_and_constants() {
        let mut p = TermPool::new();
        let x = p.fresh("msg.cmd", Width::W8);
        let c = p.constant(65, Width::W8);
        let eq = p.eq(x, c);
        let s = render(&p, eq);
        assert!(s.contains("msg.cmd"), "{s}");
        assert!(s.contains("65"), "{s}");
    }

    #[test]
    fn renders_fun_applications() {
        let mut p = TermPool::new();
        let f = p.register_fun("crc16", Width::W16, |_| 0);
        let x = p.fresh("msg.body", Width::W16);
        let app = p.apply(f, vec![x]);
        assert_eq!(render(&p, app), "crc16(msg.body)");
    }

    #[test]
    fn resugars_signed_comparison_between_vars() {
        let mut p = TermPool::new();
        let x = p.fresh("a", Width::W8);
        let y = p.fresh("b", Width::W8);
        let cmp = p.slt(x, y);
        let s = render(&p, cmp);
        assert_eq!(s, "(a <s b)");
    }

    #[test]
    fn conjunction_renders_multiline() {
        let mut p = TermPool::new();
        let x = p.fresh("x", Width::W8);
        let c1 = p.constant(1, Width::W8);
        let c2 = p.constant(2, Width::W8);
        let a = p.eq(x, c1);
        let b = p.ne(x, c2);
        let s = render_conjunction(&p, &[a, b]);
        assert!(s.contains('∧'), "{s}");
    }

    #[test]
    fn large_constants_hex() {
        let mut p = TermPool::new();
        let c = p.constant(0xdead, Width::W16);
        assert_eq!(render(&p, c), "0xdead");
    }
}
